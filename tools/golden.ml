(* Print golden cycle counts for Registry.small on both default configs,
   in cycle and event mode, base and clustered variants. *)
open Memclust_ir
open Memclust_codegen
open Memclust_sim
open Memclust_workloads
open Memclust_harness

let () =
  List.iter
    (fun (w : Workload.t) ->
      let nprocs = max 1 w.Workload.mp_procs in
      List.iter
        (fun (cname, cfg) ->
          List.iter
            (fun (vname, program) ->
              let data = Data.create program in
              w.Workload.init data;
              let lowered = Lower.build ~nprocs program data in
              let home = Data.home_of_addr data ~nprocs in
              let cy = Machine.run cfg ~mode:Machine.Cycle ~home lowered in
              let ev = Machine.run cfg ~mode:Machine.Event ~home lowered in
              if cy.Machine.cycles <> ev.Machine.cycles then
                failwith (w.Workload.name ^ ": cycle <> event");
              Printf.printf "    (%S, %S, %S, %d);\n%!" w.Workload.name cname
                vname cy.Machine.cycles)
            [
              ("base", Program.renumber w.Workload.program);
              ("clustered", fst (Experiment.transform cfg w));
            ])
        [ ("base-500MHz", Config.base); ("exemplar-like", Config.exemplar_like) ])
    (Registry.small ())
