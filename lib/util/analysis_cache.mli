(** Bounded, mutex-guarded memo tables for expensive deterministic
    analyses (miss-rate profiles, clusterings, lowered traces, simulation
    results).

    Every cache is string-keyed — callers key on structural digests
    ([Digest.string (Marshal.to_string v [])]) or explicit parameter
    strings. Lookups and insertions are serialized by a per-cache mutex;
    {!find_or_compute} runs the computation {e outside} the lock, so two
    domains racing on one key may duplicate (deterministic) work but never
    corrupt the table.

    Caches are bounded: once [cap] entries are present, inserting a new
    key evicts the oldest-inserted entries (FIFO), so long benchmark
    sweeps cannot grow memory without bound. Every cache registers itself
    in a process-wide registry so {!clear_all} can drop all memoized
    state at once. *)

type 'a t

val create : ?cap:int -> name:string -> unit -> 'a t
(** A fresh cache holding at most [cap] entries (default 512). [name]
    identifies the cache in {!registered} listings. *)

val name : _ t -> string
val cap : _ t -> int

val length : _ t -> int
(** Current number of entries. *)

val find_opt : 'a t -> string -> 'a option

val set : 'a t -> string -> 'a -> unit
(** Insert (or overwrite) a binding, evicting the oldest entries first
    when the cache is full. *)

val find_or_compute : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_compute t key f] returns the cached value for [key], or runs
    [f ()] (outside the cache lock) and caches its result. *)

val clear : _ t -> unit
(** Drop every entry (the cache stays registered and usable). *)

val clear_all : unit -> unit
(** Clear every cache created so far, process-wide. *)

val registered : unit -> (string * int) list
(** [(name, length)] of every live cache, in creation order. *)
