(** Small statistics toolkit used by the harness and benches. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val geomean : float array -> float
(** Geometric mean of positive values; 0 for an empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100], linear interpolation.
    Raises [Invalid_argument] on an empty array. *)

val minimum : float array -> float
val maximum : float array -> float

val mean_ci : float array -> float * float
(** [mean_ci xs] is [(mean, half_width)] of a two-sided 95% confidence
    interval for the population mean, treating the elements as independent
    samples: half-width = t · s/√n with the Student-t critical value for
    n-1 degrees of freedom (exact table up to df 30, 1.96 beyond). The
    half-width is 0 for fewer than two samples. *)

(** Streaming accumulator for counts, sums and extremes, O(1) memory. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val min : t -> float
  val max : t -> float
end

(** Integer-bucket histogram over a fixed range 0..n-1, used for MSHR
    occupancy distributions (Figure 4). *)
module Histogram : sig
  type t

  val create : int -> t
  (** [create n] has buckets for values 0..n-1; larger values clamp to n-1. *)

  val add : t -> int -> unit
  (** Record one observation with weight 1. *)

  val add_weighted : t -> int -> float -> unit

  val total : t -> float

  val fraction_at_least : t -> int -> float
  (** [fraction_at_least h k] is the fraction of total weight in buckets
      >= k — exactly the Y axis of the paper's Figure 4. *)

  val bucket : t -> int -> float
end
