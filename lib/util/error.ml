type t =
  | Config_invalid of { config : string; reason : string }
  | Pass_failed of { pass : string; reason : string }
  | Legality_violation of { pass : string; detail : string }
  | Sim_deadlock of {
      cycle : int;
      mode : string;
      reason : string;
      state_dump : string;
    }
  | Sim_divergence of { subject : string; detail : string }
  | Worker_crashed of { task : string; attempts : int; reason : string }

exception Error of t

let kind = function
  | Config_invalid _ -> "config-invalid"
  | Pass_failed _ -> "pass-failed"
  | Legality_violation _ -> "legality-violation"
  | Sim_deadlock _ -> "sim-deadlock"
  | Sim_divergence _ -> "sim-divergence"
  | Worker_crashed _ -> "worker-crashed"

let pp ppf = function
  | Config_invalid { config; reason } ->
      Format.fprintf ppf "invalid config %S: %s" config reason
  | Pass_failed { pass; reason } ->
      Format.fprintf ppf "pass %S failed: %s" pass reason
  | Legality_violation { pass; detail } ->
      Format.fprintf ppf "pass %S produced an illegal program: %s" pass detail
  | Sim_deadlock { cycle; mode; reason; state_dump } ->
      Format.fprintf ppf "simulator deadlock at cycle %d (%s mode): %s" cycle
        mode reason;
      if state_dump <> "" then Format.fprintf ppf "@\n%s" state_dump
  | Sim_divergence { subject; detail } ->
      Format.fprintf ppf "simulation divergence on %s: %s" subject detail
  | Worker_crashed { task; attempts; reason } ->
      Format.fprintf ppf "worker crashed on task %S after %d attempt%s: %s"
        task attempts
        (if attempts = 1 then "" else "s")
        reason

let to_string e = Format.asprintf "%a" pp e

let raise_err e = raise (Error e)

let of_exn ~task ?(attempts = 1) = function
  | Error e -> e
  | exn -> Worker_crashed { task; attempts; reason = Printexc.to_string exn }

let guard ~task f =
  match f () with
  | v -> Ok v
  | exception Error e -> Result.Error e
  | exception exn -> Result.Error (of_exn ~task exn)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Memclust_error: " ^ to_string e)
    | _ -> None)
