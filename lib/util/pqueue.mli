(** Mutable binary min-heap keyed by integer priority. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> int -> 'a -> unit
(** [push q prio v] inserts [v] with priority [prio]; smallest pops first.
    Ties pop in insertion order. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum element, or [None] when empty. *)

val peek : 'a t -> (int * 'a) option

(** {2 Non-allocating accessors}

    [peek]/[pop] box their result; the simulator polls its heaps every
    executed cycle, so the hot paths use these instead. *)

val min_prio : 'a t -> int
(** Priority of the minimum element, or [max_int] when empty. *)

val min_value : 'a t -> 'a
(** Value of the minimum element. Raises [Invalid_argument] when empty. *)

val drop_min : 'a t -> unit
(** Remove the minimum element; no-op when empty. *)

val clear : 'a t -> unit
(** Remove every element, keeping the backing storage. The FIFO tie-break
    counter is not reset, so entries pushed after a [clear] still pop
    after earlier same-priority entries would have. *)
