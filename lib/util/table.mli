(** ASCII table rendering for experiment reports. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the rows out in columns sized to the widest
    cell, with a rule under the header. [aligns] defaults to left for the
    first column and right for the rest. Every row (and [aligns], when
    given) must have exactly as many entries as [header]; a mismatch
    raises [Invalid_argument] rather than rendering a silently padded
    table. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting, default 2 decimals. *)

val fmt_pct : ?decimals:int -> float -> string
(** [fmt_pct 0.21] is ["21.0%"] with default 1 decimal. *)
