(** Structured errors for the whole pipeline ("Memclust_error").

    Every recoverable failure that crosses an API boundary — invalid
    configuration, a clustering pass that misbehaves, a wedged simulator,
    a crashed worker domain — is described by one of these constructors,
    each carrying enough context to produce an actionable report without
    re-running anything. Internal invariants (things that can only fail
    on a programming error) stay as [assert]; these errors are for
    conditions the surrounding system is expected to survive. *)

type t =
  | Config_invalid of { config : string; reason : string }
      (** A [Config.t] failed validation; [config] is its name. *)
  | Pass_failed of { pass : string; reason : string }
      (** A clustering pass raised or timed out; [reason] is the
          rendered exception or diagnostic. *)
  | Legality_violation of { pass : string; detail : string }
      (** A pass produced an IR that fails [Program.validate] or whose
          observable semantics diverge from the source program. *)
  | Sim_deadlock of {
      cycle : int;
      mode : string;
      reason : string;
      state_dump : string;
    }
      (** The simulator stopped making forward progress. [state_dump] is
          a multi-line snapshot: per-proc PCs, per-level MSHR occupancy,
          pending-event summary. *)
  | Sim_divergence of { subject : string; detail : string }
      (** Two simulation modes (or a sampled estimate and its reference)
          disagree where they must agree. *)
  | Worker_crashed of { task : string; attempts : int; reason : string }
      (** A domain-pool task died even after retry; only that task is
          lost. *)

exception Error of t
(** Carrier for the rare places that must throw across an interface that
    cannot return a [result] (e.g. deep inside the simulator step
    function). Registered with [Printexc] so uncaught copies still print
    readably. *)

val kind : t -> string
(** Stable lowercase tag ("sim-deadlock", ...) for logs and JSON. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val raise_err : t -> 'a
(** [raise_err e] is [raise (Error e)]. *)

val of_exn : task:string -> ?attempts:int -> exn -> t
(** Coerce an arbitrary exception to a structured error: [Error e]
    unwraps to [e], anything else becomes [Worker_crashed] for [task]. *)

val guard : task:string -> (unit -> 'a) -> ('a, t) result
(** Run a thunk, catching any exception into a structured error. *)
