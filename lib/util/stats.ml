let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let log_sum = Array.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int n)
  end

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let var = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (var /. float_of_int n)
  end

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let minimum xs = Array.fold_left min infinity xs
let maximum xs = Array.fold_left max neg_infinity xs

(* Two-sided 95% Student-t critical values for df = 1..30; beyond that the
   normal approximation (1.96) is within 1%. *)
let t95 =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let mean_ci xs =
  let n = Array.length xs in
  let m = mean xs in
  if n < 2 then (m, 0.0)
  else begin
    (* sample (n-1) variance: each xs element is one independent sample *)
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int (n - 1)
    in
    let stderr = sqrt (var /. float_of_int n) in
    let df = n - 1 in
    let t = if df <= 30 then t95.(df - 1) else 1.96 in
    (m, t *. stderr)
  end

module Acc = struct
  type t = {
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () = { count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x

  let count t = t.count
  let sum t = t.sum
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
  let min t = t.min_v
  let max t = t.max_v
end

module Histogram = struct
  type t = { buckets : float array; mutable total : float }

  let create n =
    assert (n > 0);
    { buckets = Array.make n 0.0; total = 0.0 }

  let add_weighted t v w =
    let n = Array.length t.buckets in
    let i = if v < 0 then 0 else if v >= n then n - 1 else v in
    t.buckets.(i) <- t.buckets.(i) +. w;
    t.total <- t.total +. w

  let add t v = add_weighted t v 1.0

  let total t = t.total

  let fraction_at_least t k =
    if t.total = 0.0 then 0.0
    else begin
      let acc = ref 0.0 in
      let n = Array.length t.buckets in
      for i = max 0 k to n - 1 do
        acc := !acc +. t.buckets.(i)
      done;
      !acc /. t.total
    end

  let bucket t i = t.buckets.(i)
end
