type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = int64 t in
  { state = s }

let int t bound =
  if bound <= 0 then
    invalid_arg (Printf.sprintf "Rng.int: bound must be > 0, got %d" bound);
  (* mask to OCaml's 63-bit positive range before reducing *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 1) land max_int in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  (* 53 significant bits, matching an IEEE double mantissa *)
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
