type align = Left | Right

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else begin
    let fill = String.make (width - len) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?aligns ~header rows =
  (* Column counts must agree exactly: a short row or alignment list would
     previously be padded silently ([List.nth_opt ... -> Right/""]), which
     let malformed figure tables render plausibly instead of failing. *)
  let ncols = List.length header in
  let check what n =
    if n <> ncols then
      invalid_arg
        (Printf.sprintf "Table.render: %s has %d columns, header has %d" what n
           ncols)
  in
  List.iteri (fun i r -> check (Printf.sprintf "row %d" i) (List.length r)) rows;
  (match aligns with
  | Some l -> check "the alignment list" (List.length l)
  | None -> ());
  let get l i = List.nth l i in
  let widths =
    Array.init ncols (fun i ->
        List.fold_left
          (fun acc r -> max acc (String.length (get r i)))
          (String.length (get header i))
          rows)
  in
  let align_of i =
    match aligns with
    | Some l -> List.nth l i
    | None -> if i = 0 then Left else Right
  in
  let line cells =
    let parts = List.init ncols (fun i -> pad (align_of i) widths.(i) (get cells i)) in
    String.concat "  " parts
  in
  let rule =
    String.concat "  " (List.init ncols (fun i -> String.make widths.(i) '-'))
  in
  let body = List.map line rows in
  String.concat "\n" (line header :: rule :: body)

let print ?aligns ~header rows =
  print_endline (render ?aligns ~header rows)

let fmt_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let fmt_pct ?(decimals = 1) v = Printf.sprintf "%.*f%%" decimals (v *. 100.0)
