type 'a t = {
  name : string;
  cap : int;
  tbl : (string, 'a) Hashtbl.t;
  order : string Queue.t;  (* insertion order, for FIFO eviction *)
  lock : Mutex.t;
}

(* Process-wide registry: name plus closures over each cache's heterogeneous
   payload type, so [clear_all]/[registered] work across caches of any 'a. *)
let registry : (string * (unit -> unit) * (unit -> int)) list ref = ref []
let registry_lock = Mutex.create ()

let locked lock f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let clear t =
  locked t.lock (fun () ->
      Hashtbl.reset t.tbl;
      Queue.clear t.order)

let length t = locked t.lock (fun () -> Hashtbl.length t.tbl)

let create ?(cap = 512) ~name () =
  if cap <= 0 then invalid_arg "Analysis_cache.create: cap must be positive";
  let t =
    {
      name;
      cap;
      tbl = Hashtbl.create (min cap 64);
      order = Queue.create ();
      lock = Mutex.create ();
    }
  in
  locked registry_lock (fun () ->
      registry := !registry @ [ (name, (fun () -> clear t), fun () -> length t) ]);
  t

let name t = t.name
let cap t = t.cap

let find_opt t key = locked t.lock (fun () -> Hashtbl.find_opt t.tbl key)

let set t key v =
  locked t.lock (fun () ->
      if not (Hashtbl.mem t.tbl key) then begin
        while Queue.length t.order >= t.cap do
          Hashtbl.remove t.tbl (Queue.pop t.order)
        done;
        Queue.push key t.order
      end;
      Hashtbl.replace t.tbl key v)

let find_or_compute t key f =
  match find_opt t key with
  | Some v -> v
  | None ->
      let v = f () in
      set t key v;
      v

let clear_all () =
  let entries = locked registry_lock (fun () -> !registry) in
  List.iter (fun (_, clr, _) -> clr ()) entries

let registered () =
  let entries = locked registry_lock (fun () -> !registry) in
  List.map (fun (name, _, len) -> (name, len ())) entries
