type t = {
  m : Mutex.t;
  task_ready : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

(* Tasks submitted from inside a worker run inline (see [map]), so a
   recursive [map] can never wait for a worker that is itself waiting. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

let rec worker_loop t =
  Mutex.lock t.m;
  let rec get () =
    if t.stop then None
    else if Queue.is_empty t.tasks then begin
      Condition.wait t.task_ready t.m;
      get ()
    end
    else Some (Queue.pop t.tasks)
  in
  match get () with
  | None -> Mutex.unlock t.m
  | Some task ->
      Mutex.unlock t.m;
      (* tasks are wrapped by the batch runner and never raise *)
      task ();
      worker_loop t

let create ?domains () =
  let n =
    match domains with
    | Some d -> max 0 d
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      m = Mutex.create ();
      task_ready = Condition.create ();
      tasks = Queue.create ();
      stop = false;
      workers = [||];
    }
  in
  t.workers <-
    Array.init n (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set in_worker true;
            worker_loop t));
  t

let size t = Array.length t.workers

(* Schedule [run 0 .. run (n-1)] on the pool and wait for all of them.
   [run] must not raise. The caller works through the queue too; when it
   empties (tasks may still be running in workers) it waits for the batch
   to settle. *)
let run_batch t n run =
  let remaining = ref n in
  let batch_done = Condition.create () in
  let wrapped i =
    run i;
    Mutex.lock t.m;
    decr remaining;
    if !remaining = 0 then Condition.broadcast batch_done;
    Mutex.unlock t.m
  in
  Mutex.lock t.m;
  for i = 0 to n - 1 do
    Queue.push (fun () -> wrapped i) t.tasks
  done;
  Condition.broadcast t.task_ready;
  let rec help () =
    if !remaining > 0 then
      if not (Queue.is_empty t.tasks) then begin
        let task = Queue.pop t.tasks in
        Mutex.unlock t.m;
        task ();
        Mutex.lock t.m;
        help ()
      end
      else begin
        Condition.wait batch_done t.m;
        help ()
      end
  in
  help ();
  Mutex.unlock t.m

let inline_only t = Array.length t.workers = 0 || Domain.DLS.get in_worker

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when inline_only t -> List.map f xs
  | _ ->
      let args = Array.of_list xs in
      let n = Array.length args in
      let results = Array.make n None in
      let first_exn = ref None in
      run_batch t n (fun i ->
          match f args.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
              Mutex.lock t.m;
              if !first_exn = None then first_exn := Some e;
              Mutex.unlock t.m);
      (match !first_exn with Some e -> raise e | None -> ());
      Array.to_list
        (Array.mapi
           (fun i r ->
             match r with
             | Some v -> v
             | None ->
                 (* no exception was recorded yet this slot is empty: a
                    worker died without settling its task. Fail as a
                    structured per-task error, not a blind assert. *)
                 Error.raise_err
                   (Error.Worker_crashed
                      {
                        task = Printf.sprintf "task-%d" i;
                        attempts = 1;
                        reason = "worker finished without recording a result";
                      }))
           results)

let attempt ~attempts ~task f x =
  let rec go k =
    match f x with
    | v -> Ok v
    | exception e ->
        if k < attempts then go (k + 1)
        else Result.Error (Error.of_exn ~task ~attempts e)
  in
  go 1

let map_result ?(attempts = 2) ?task_name t f xs =
  let attempts = max 1 attempts in
  let name i x =
    match task_name with
    | Some g -> g x
    | None -> Printf.sprintf "task-%d" i
  in
  match xs with
  | [] -> []
  | _ when inline_only t ->
      List.mapi (fun i x -> attempt ~attempts ~task:(name i x) f x) xs
  | _ ->
      let args = Array.of_list xs in
      let n = Array.length args in
      let results = Array.make n None in
      run_batch t n (fun i ->
          results.(i) <-
            Some (attempt ~attempts ~task:(name i args.(i)) f args.(i)));
      Array.to_list
        (Array.mapi
           (fun i r ->
             match r with
             | Some r -> r
             | None ->
                 Result.Error
                   (Error.Worker_crashed
                      {
                        task = name i args.(i);
                        attempts;
                        reason = "worker finished without recording a result";
                      }))
           results)

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.task_ready;
  Mutex.unlock t.m;
  let ws = t.workers in
  t.workers <- [||];
  Array.iter Domain.join ws

(* ------------------------------------------------------------------ *)

let default_pool = ref None
let default_m = Mutex.create ()

let default () =
  Mutex.lock default_m;
  let t =
    match !default_pool with
    | Some t -> t
    | None ->
        let t =
          match
            Option.bind (Sys.getenv_opt "MEMCLUST_DOMAINS") int_of_string_opt
          with
          | Some d -> create ~domains:d ()
          | None -> create ()
        in
        at_exit (fun () -> shutdown t);
        default_pool := Some t;
        t
  in
  Mutex.unlock default_m;
  t
