(** Deterministic pseudo-random number generator (SplitMix64).

    All stochastic parts of the repository (workload data, synthetic pointer
    chains, particle positions) draw from this generator so that every
    experiment is reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent
    generator, for giving substreams to sub-components. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument]
    naming the offending value when [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of 0..n-1. *)
