type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0
let length t = t.size

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let fresh = Array.make ncap t.data.(0) in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end

let push t prio value =
  let e = { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.data = 0 then t.data <- Array.make 16 e;
  grow t;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t.data.(!i) t.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.data.(parent) in
    t.data.(parent) <- t.data.(!i);
    t.data.(!i) <- tmp;
    i := parent
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
    if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = t.data.(!smallest) in
      t.data.(!smallest) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := !smallest
    end
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t
    end;
    Some (top.prio, top.value)
  end

let peek t = if t.size = 0 then None else Some (t.data.(0).prio, t.data.(0).value)

let min_prio t = if t.size = 0 then max_int else t.data.(0).prio

let min_value t =
  if t.size = 0 then invalid_arg "Pqueue.min_value: empty";
  t.data.(0).value

let drop_min t =
  if t.size > 0 then begin
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t
    end
  end

let clear t = t.size <- 0
