(** A fixed-size pool of OCaml 5 domains for running independent tasks —
    one experiment spec per task — in parallel.

    Workers are spawned once and reused across calls, so the (multi-ms)
    domain spawn cost is paid once per pool, not once per task. All
    scheduling state is protected by a single mutex; tasks themselves run
    outside it. Tasks must only share state through their own
    synchronization (the experiment memo tables are mutex-guarded). *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [max 0 domains] worker domains (default:
    [recommended_domain_count () - 1], so workers plus the submitting
    domain match the hardware). With zero workers every [map] runs inline
    in the caller — correct, just sequential. *)

val size : t -> int
(** Number of worker domains (0 means [map] runs inline). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs], using the
    worker domains, and returns the results in order. The calling domain
    also executes tasks while it waits, so a pool of [n] workers uses
    [n + 1] cores. If any [f x] raises, the first exception observed is
    re-raised in the caller after all scheduled tasks have settled.

    Recursive use ([f] itself calling [map] on the same pool) is safe:
    tasks submitted from inside a worker run inline rather than deadlock
    waiting for a free worker. *)

val map_result :
  ?attempts:int ->
  ?task_name:('a -> string) ->
  t ->
  ('a -> 'b) ->
  'a list ->
  ('b, Error.t) result list
(** Crash-contained [map]: never raises. Each task gets up to [attempts]
    tries (default 2, i.e. one retry — transient failures such as an
    OOM-killed allocation often succeed on retry); a task that still
    fails yields [Error] in its slot — [Error.t] as-is if it raised
    [Error.Error], otherwise [Worker_crashed] naming the task (via
    [task_name], default ["task-<i>"]) — while every other task's result
    is preserved. Scheduling behaviour is identical to [map]. *)

val shutdown : t -> unit
(** Stop and join the workers. Subsequent [map] calls run inline.
    Idempotent. *)

val default : unit -> t
(** A lazily-created shared pool sized by [MEMCLUST_DOMAINS] (an integer
    count of worker domains; [0] forces sequential) or
    [recommended_domain_count () - 1]. Shut down automatically at exit. *)
