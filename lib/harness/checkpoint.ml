(* On-disk checkpointing of completed experiment artifacts, so an
   interrupted repro run resumes instead of recomputing. One file per
   artifact id; writes go through a temp file + rename so a crash
   mid-write never leaves a truncated artifact behind. *)

type t = { dir : string }

let id_ok id =
  String.length id > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_')
       id

let check_id id =
  if not (id_ok id) then
    Memclust_util.Error.raise_err
      (Memclust_util.Error.Config_invalid
         {
           config = id;
           reason = "checkpoint ids must be alphanumeric (plus - and _)";
         })

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end
  else if not (Sys.is_directory dir) then
    Memclust_util.Error.raise_err
      (Memclust_util.Error.Config_invalid
         { config = dir; reason = "checkpoint path exists but is not a directory" })

let create dir =
  mkdir_p dir;
  { dir }

let path t id = Filename.concat t.dir (id ^ ".txt")

let mem t id =
  check_id id;
  Sys.file_exists (path t id)

let load t id =
  check_id id;
  let p = path t id in
  if Sys.file_exists p then
    Some (In_channel.with_open_bin p In_channel.input_all)
  else None

let save t id text =
  check_id id;
  let final = path t id in
  let tmp = final ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc text);
  Sys.rename tmp final

let saved t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:".txt" f)
  |> List.sort String.compare
