open Memclust_util
open Memclust_sim
open Memclust_workloads

let buf_print f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let spec ~config ~nprocs ~version w =
  { Experiment.workload = w; config; nprocs; version }

let run ~config ~nprocs ~version w =
  Experiment.execute_cached (spec ~config ~nprocs ~version w)

(* Each figure's experiment points are independent (workload, config,
   nprocs, version) simulations: evaluate them across the shared domain
   pool first, then assemble the tables from the (now warm) memo cache.
   The fan-out is crash-contained: a point that deadlocks or crashes is
   logged and dropped here, and only the figure that later reads it
   (inline, under run_safe's guard) degrades — the others still come
   from the warm cache. *)
let prewarm specs =
  let seen = Hashtbl.create 16 in
  let unique =
    List.filter
      (fun s ->
        let k = Experiment.spec_key s in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      specs
  in
  let results =
    Domain_pool.map_result ~task_name:Experiment.spec_key
      (Domain_pool.default ())
      Experiment.execute_cached unique
  in
  List.iter2
    (fun s r ->
      match r with
      | Ok _ -> ()
      | Error e ->
          Printf.eprintf "[degraded] %s: %s\n%!" (Experiment.spec_key s)
            (Memclust_util.Error.to_string e))
    unique results

let base_and_clustered ~config ~nprocs w =
  [
    spec ~config ~nprocs ~version:Experiment.Base w;
    spec ~config ~nprocs ~version:Experiment.Clustered w;
  ]

let reduction_pct base clust =
  100.0 *. (1.0 -. (float_of_int clust /. float_of_int base))

(* ------------------------------------------------------------------ *)

let table1 () =
  buf_print (fun ppf ->
      Format.fprintf ppf
        "Table 1: base simulated configuration (paper Table 1)@.@.%a@.@.\
         1 GHz variant:@.%a@.@.Exemplar-like system (Section 4.1):@.%a@."
        Config.pp Config.base Config.pp (Config.ghz Config.base) Config.pp
        Config.exemplar_like)

let paper_sizes =
  [
    ("Latbench", "6.4M data", "1");
    ("Em3d", "32K nodes, deg. 20, 20% rem.", "1,16");
    ("Erlebacher", "64x64x64 cube, block 8", "1,16");
    ("FFT", "65536 points", "1,16");
    ("LU", "256x256 matrix, block 16", "1,8");
    ("Mp3d", "100K particles", "1,8");
    ("MST", "1024 nodes", "1");
    ("Ocean", "258x258 grid", "1,8");
  ]

let table2 () =
  let ws = Registry.latbench () :: Registry.applications () in
  let rows =
    List.map
      (fun w ->
        let paper_size, paper_procs =
          match List.assoc_opt w.Workload.name
                  (List.map (fun (n, s, p) -> (n, (s, p))) paper_sizes)
          with
          | Some (s, p) -> (s, p)
          | None -> ("-", "-")
        in
        [
          w.Workload.name;
          w.Workload.description;
          (if w.Workload.mp_procs > 1 then
             Printf.sprintf "1,%d" w.Workload.mp_procs
           else "1");
          Printf.sprintf "%dKB" (w.Workload.l2_bytes / 1024);
          paper_size;
          paper_procs;
        ])
      ws
  in
  "Table 2: workload sizes and processors (ours, scaled per Woo et al. | paper's)\n\n"
  ^ Table.render
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Left; Table.Right ]
      ~header:
        [ "Workload"; "our input"; "procs"; "L2"; "paper input"; "paper procs" ]
      rows

(* ------------------------------------------------------------------ *)

let latbench_on config label paper_base paper_clust =
  let w = Registry.latbench () in
  prewarm (base_and_clustered ~config ~nprocs:1 w);
  let b = run ~config ~nprocs:1 ~version:Experiment.Base w in
  let c = run ~config ~nprocs:1 ~version:Experiment.Clustered w in
  let ns = Machine.ns_per_cycle config in
  let stall_ns o =
    let r = o.Experiment.result in
    ns *. r.Machine.breakdown.Breakdown.data_stall
    /. float_of_int (max 1 r.Machine.read_misses)
  in
  let lat_ns o =
    ns *. o.Experiment.result.Machine.avg_read_miss_latency
  in
  let sb = stall_ns b and sc = stall_ns c in
  [
    [ label ^ " base"; Table.fmt_float sb; Table.fmt_float (lat_ns b); "1.00";
      paper_base ];
    [ label ^ " clustered"; Table.fmt_float sc; Table.fmt_float (lat_ns c);
      Table.fmt_float (sb /. sc) ^ "x"; paper_clust ];
    [ label ^ " bus/bank util";
      Table.fmt_pct b.Experiment.result.Machine.bus_utilization;
      Table.fmt_pct c.Experiment.result.Machine.bus_utilization;
      Table.fmt_pct c.Experiment.result.Machine.bank_utilization; "-" ];
  ]

let latbench () =
  let rows =
    latbench_on Config.base "simulated" "171 ns" "32 ns (5.34x)"
    @ latbench_on Config.exemplar_like "exemplar-like" "502 ns" "87 ns (5.77x)"
  in
  "Section 5.1: Latbench read-miss stall time (paper: 171->32 ns simulated,\n\
   502->87 ns Exemplar; speedups 5.34x / 5.77x, limited by bus+memory\n\
   bandwidth rather than the 10 MSHRs)\n\n"
  ^ Table.render
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~header:[ "system"; "stall/miss"; "avg latency"; "speedup"; "paper" ]
      rows

(* ------------------------------------------------------------------ *)

let breakdown_row name version base_cycles (o : Experiment.outcome) =
  let r = o.Experiment.result in
  let bd = r.Machine.breakdown in
  let pct v = 100.0 *. v /. float_of_int base_cycles in
  let cpu = Breakdown.cpu bd in
  (* sampled runs carry a confidence interval on the cycle count: surface
     it as an error bar on the normalized total *)
  let total =
    let t = Table.fmt_float ~decimals:1 (pct (Breakdown.total bd)) in
    match o.Experiment.estimate with
    | Some est ->
        t ^ " ±"
        ^ Table.fmt_float ~decimals:1
            (pct est.Sampling.cycles_ci.Sampling.half)
    | None -> t
  in
  [
    name;
    version;
    total;
    Table.fmt_float ~decimals:1 (pct bd.Breakdown.sync_stall);
    Table.fmt_float ~decimals:1 (pct cpu);
    Table.fmt_float ~decimals:1 (pct bd.Breakdown.data_stall);
    Plot.stacked_bar ~width:30
      ~segments:
        [
          ('S', pct bd.Breakdown.sync_stall /. 100.0);
          ('C', pct cpu /. 100.0);
          ('D', pct bd.Breakdown.data_stall /. 100.0);
        ];
  ]

let fig3 ~mp () =
  let apps =
    List.filter
      (fun w -> (not mp) || w.Workload.mp_procs > 1)
      (Registry.applications ())
  in
  prewarm
    (List.concat_map
       (fun w ->
         let nprocs = if mp then w.Workload.mp_procs else 1 in
         base_and_clustered ~config:Config.base ~nprocs w)
       apps);
  let rows =
    List.concat_map
      (fun w ->
        let nprocs = if mp then w.Workload.mp_procs else 1 in
        let b = run ~config:Config.base ~nprocs ~version:Experiment.Base w in
        let c = run ~config:Config.base ~nprocs ~version:Experiment.Clustered w in
        let bc = Experiment.exec_cycles b in
        [
          breakdown_row w.Workload.name "base" bc b;
          breakdown_row "" "clust" bc c;
        ])
      apps
  in
  Table.render
    ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
    ~header:[ "app"; "version"; "total"; "sync"; "CPU"; "data"; "S=sync C=cpu D=data" ]
    rows

let fig3a () =
  "Figure 3(a): multiprocessor execution time, normalized to base = 100\n\
   (paper: clustered totals Em3d 86.6, Erlebacher 69.8, FFT 78.3, LU 60.7,\n\
   Mp3d 90.6, Ocean 95.4 -> 5-39% reductions, average 20%)\n\n"
  ^ fig3 ~mp:true ()

let fig3b () =
  "Figure 3(b): uniprocessor execution time, normalized to base = 100\n\
   (paper: clustered totals Em3d 88.6, Erlebacher 55.5, FFT 73.7, LU 85.9,\n\
   Mp3d 81.5, MST 51.1, Ocean 51.6 -> 11-49% reductions, average 30%)\n\n"
  ^ fig3 ~mp:false ()

(* ------------------------------------------------------------------ *)

let table3_paper =
  [
    ("Em3d", "9.2", "13.0");
    ("Erlebacher", "21.4", "34.3");
    ("FFT", "16.6", "28.9");
    ("LU", "22.7", "23.8");
    ("Mp3d", "N/A", "21.7");
    ("MST", "N/A", "38.1");
    ("Ocean", "-2.9", "21.6");
  ]

let table3_mp_ok w =
  (* the paper runs Mp3d and MST only as uniprocessor codes on the real
     machine *)
  w.Workload.mp_procs > 1 && not (String.equal w.Workload.name "Mp3d")

let table3 () =
  let cfg = Config.exemplar_like in
  prewarm
    (List.concat_map
       (fun w ->
         base_and_clustered ~config:cfg ~nprocs:1 w
         @
         if table3_mp_ok w then
           base_and_clustered ~config:cfg ~nprocs:w.Workload.mp_procs w
         else [])
       (Registry.applications ()));
  let rows =
    List.map
      (fun w ->
        let name = w.Workload.name in
        let mp_ok = table3_mp_ok w in
        let mp =
          if mp_ok then begin
            let b = run ~config:cfg ~nprocs:w.Workload.mp_procs ~version:Experiment.Base w in
            let c = run ~config:cfg ~nprocs:w.Workload.mp_procs ~version:Experiment.Clustered w in
            Table.fmt_float ~decimals:1
              (reduction_pct (Experiment.exec_cycles b) (Experiment.exec_cycles c))
          end
          else "N/A"
        in
        let b = run ~config:cfg ~nprocs:1 ~version:Experiment.Base w in
        let c = run ~config:cfg ~nprocs:1 ~version:Experiment.Clustered w in
        let up =
          Table.fmt_float ~decimals:1
            (reduction_pct (Experiment.exec_cycles b) (Experiment.exec_cycles c))
        in
        let pmp, pup =
          match
            List.assoc_opt name
              (List.map (fun (n, a, b) -> (n, (a, b))) table3_paper)
          with
          | Some (a, b) -> (a, b)
          | None -> ("-", "-")
        in
        [ name; mp; up; pmp; pup ])
      (Registry.applications ())
  in
  "Table 3: % execution time reduced on the Exemplar-like system\n\
   (paper: 9-38% for 6 of 7 applications; multiprocessor Ocean degrades)\n\n"
  ^ Table.render
      ~header:[ "app"; "MP %"; "UP %"; "paper MP"; "paper UP" ]
      rows

(* ------------------------------------------------------------------ *)

let mshr_curves ~read () =
  let lu = List.find (fun w -> w.Workload.name = "LU") (Registry.applications ()) in
  let ocean =
    List.find (fun w -> w.Workload.name = "Ocean") (Registry.applications ())
  in
  prewarm
    (List.concat_map
       (fun w ->
         base_and_clustered ~config:Config.base ~nprocs:w.Workload.mp_procs w)
       [ lu; ocean ]);
  let curve w version =
    let o =
      run ~config:Config.base ~nprocs:w.Workload.mp_procs ~version w
    in
    let h =
      if read then o.Experiment.result.Machine.read_mshr_hist
      else o.Experiment.result.Machine.total_mshr_hist
    in
    Array.init 11 (fun n -> Stats.Histogram.fraction_at_least h n)
  in
  let series =
    [
      ("Ocean", curve ocean Experiment.Base);
      ("Ocean(clust)", curve ocean Experiment.Clustered);
      ("LU", curve lu Experiment.Base);
      ("LU(clust)", curve lu Experiment.Clustered);
    ]
  in
  let rows =
    List.map
      (fun (name, ys) ->
        name
        :: List.init 11 (fun n -> Table.fmt_float ~decimals:3 ys.(n)))
      series
  in
  let table =
    Table.render
      ~header:("series" :: List.init 11 (fun n -> Printf.sprintf ">=%d" n))
      rows
  in
  let plot =
    Plot.series
      ~labels:(List.map fst series)
      (List.map snd series)
  in
  table ^ "\n\n" ^ plot

let fig4a () =
  "Figure 4(a): read miss parallelism — fraction of time at least N L2\n\
   MSHRs hold read misses (multiprocessor runs).\n\
   (paper: clustering turns LU from <=1 outstanding read miss into up to 9;\n\
   Ocean changes only slightly since its base already clusters)\n\n"
  ^ mshr_curves ~read:true ()

let fig4b () =
  "Figure 4(b): contention — fraction of time at least N L2 MSHRs are\n\
   occupied by reads or writes (multiprocessor runs).\n\
   (paper: writes add contention in Ocean but not LU; clustering leaves\n\
   write contention unchanged)\n\n"
  ^ mshr_curves ~read:false ()

(* ------------------------------------------------------------------ *)

let ghz () =
  let cfg = Config.ghz Config.base in
  prewarm
    (List.concat_map
       (fun w ->
         base_and_clustered ~config:cfg ~nprocs:1 w
         @
         if w.Workload.mp_procs > 1 then
           base_and_clustered ~config:cfg ~nprocs:w.Workload.mp_procs w
         else [])
       (Registry.applications ()));
  let line w =
    let red nprocs =
      let b = run ~config:cfg ~nprocs ~version:Experiment.Base w in
      let c = run ~config:cfg ~nprocs ~version:Experiment.Clustered w in
      reduction_pct (Experiment.exec_cycles b) (Experiment.exec_cycles c)
    in
    let mp =
      if w.Workload.mp_procs > 1 then
        Table.fmt_float ~decimals:1 (red w.Workload.mp_procs)
      else "N/A"
    in
    [ w.Workload.name; mp; Table.fmt_float ~decimals:1 (red 1) ]
  in
  let rows = List.map line (Registry.applications ()) in
  "Section 5.2: 1 GHz processors, memory system unchanged in ns\n\
   (paper: 5-36% multiprocessor reductions averaging 21%; 12-50%\n\
   uniprocessor averaging 33%; memory parallelism matters more)\n\n"
  ^ Table.render ~header:[ "app"; "MP %"; "UP %" ] rows

(* ------------------------------------------------------------------ *)
(* Extensions beyond the paper's artifacts                              *)
(* ------------------------------------------------------------------ *)

(* clustering x software prefetching (paper section 6 / reference [8]) *)
let prefetch () =
  prewarm
    (List.concat_map
       (fun w ->
         List.map
           (fun version -> spec ~config:Config.base ~nprocs:1 ~version w)
           [
             Experiment.Base;
             Experiment.Prefetched;
             Experiment.Clustered;
             Experiment.Clustered_prefetched;
           ])
       (Registry.applications ()));
  let rows =
    List.concat_map
      (fun w ->
        let go version = run ~config:Config.base ~nprocs:1 ~version w in
        let b = go Experiment.Base in
        let bc = Experiment.exec_cycles b in
        let line label (o : Experiment.outcome) =
          let r = o.Experiment.result in
          [
            (if String.equal label "base" then w.Workload.name else "");
            label;
            Table.fmt_float ~decimals:1 (reduction_pct bc (Experiment.exec_cycles o));
            string_of_int r.Machine.prefetches;
            string_of_int r.Machine.prefetch_misses;
            string_of_int r.Machine.late_prefetches;
            Table.fmt_float ~decimals:1
              r.Machine.breakdown.Breakdown.data_stall;
          ]
        in
        [
          line "base" b;
          line "prefetch" (go Experiment.Prefetched);
          line "cluster" (go Experiment.Clustered);
          line "cluster+pf" (go Experiment.Clustered_prefetched);
        ])
      (Registry.applications ())
  in
  "Extension: software prefetching vs and with clustering (uniprocessor).
   The paper (section 1/6, ref [8]) argues prefetching on ILP processors
   suffers late prefetches and MSHR contention, and that clustering
   composes with it. 'late' counts demand loads that caught a prefetch
   still in flight.

"
  ^ Table.render
      ~header:
        [ "app"; "version"; "reduction %"; "pf issued"; "pf misses"; "late"; "data stall" ]
      rows

(* which driver stage buys what (DESIGN.md ablation) *)
let ablation () =
  let open Memclust_cluster in
  let stage_options =
    [
      ("full", Driver.default_options);
      ("no scalar-replace", { Driver.default_options with do_scalar_replace = false });
      ("no scheduling", { Driver.default_options with do_schedule = false });
      ( "balanced sched.",
        { Driver.default_options with scheduler = Driver.Balanced } );
      ("no unroll-and-jam", { Driver.default_options with do_unroll_jam = false });
      ("no window stage", { Driver.default_options with do_window = false });
      ( "analysis only",
        {
          Driver.default_options with
          do_unroll_jam = false;
          do_window = false;
          do_scalar_replace = false;
          do_schedule = false;
        } );
    ]
  in
  let apps = [ "Em3d"; "LU"; "Mp3d"; "Ocean" ] in
  let simulate w prog =
    let cfg = Config.with_l2 w.Workload.l2_bytes Config.base in
    Experiment.simulate_cached w cfg ~nprocs:1 prog
  in
  let workloads = List.filter_map Registry.by_name apps in
  (* fan the independent (workload x pipeline-variant) points — plus the
     untransformed baselines — out over the domain pool. Crash-contained:
     a variant that dies shows a degraded cell, a baseline that dies
     degrades only that workload's rows. *)
  let pool = Domain_pool.default () in
  let bases =
    List.map2
      (fun w r -> (w.Workload.name, r))
      workloads
      (Domain_pool.map_result
         ~task_name:(fun w -> "ablation-base " ^ w.Workload.name)
         pool
         (fun w ->
           simulate w (Memclust_ir.Program.renumber w.Workload.program))
         workloads)
  in
  let variant_points =
    List.concat_map
      (fun w -> List.map (fun so -> (w, so)) stage_options)
      workloads
  in
  let variants =
    List.map2
      (fun (w, (label, _)) r -> (w.Workload.name, label, r))
      variant_points
      (Domain_pool.map_result
         ~task_name:(fun (w, (label, _)) ->
           Printf.sprintf "ablation %s %s" w.Workload.name label)
         pool
         (fun (w, (label, options)) ->
           Printf.eprintf "[run] ablation %s %s...\n%!" w.Workload.name label;
           let p, _ =
             Driver.run ~options ~init:w.Workload.init w.Workload.program
           in
           simulate w p)
         variant_points)
  in
  let rows =
    List.concat_map
      (fun w ->
        let name = w.Workload.name in
        let base = List.assoc name bases in
        List.mapi
          (fun i (label, _) ->
            let r =
              List.find_map
                (fun (n, l, r) ->
                  if String.equal n name && String.equal l label then Some r
                  else None)
                variants
              |> Option.get
            in
            let cell =
              match (base, r) with
              | Ok base, Ok r ->
                  Table.fmt_float ~decimals:1
                    (reduction_pct base.Machine.cycles r.Machine.cycles)
              | Error e, _ | _, Error e ->
                  "degraded: " ^ Memclust_util.Error.kind e
            in
            [ (if i = 0 then name else ""); label; cell ])
          stage_options)
      workloads
  in
  "Extension: per-stage ablation of the clustering driver (uniprocessor,
   % execution time reduced vs untransformed base).

"
  ^ Table.render ~header:[ "app"; "pipeline"; "reduction %" ] rows

(* how much miss parallelism the hardware must offer before clustering
   pays off: sweep the MSHR count, re-deriving the transformation for
   each lp (the framework picks a degree matched to the resources) *)
let mshr_sweep () =
  let points = [ 1; 2; 4; 6; 8; 10; 12; 16 ] in
  let apps =
    [ Registry.latbench ();
      List.find (fun w -> w.Workload.name = "LU") (Registry.applications ());
    ]
  in
  let sweep_config mshrs =
    { (Config.with_mshrs mshrs Config.base) with
      Config.name = Printf.sprintf "base-mshr%d" mshrs }
  in
  prewarm
    (List.concat_map
       (fun w ->
         List.concat_map
           (fun mshrs ->
             base_and_clustered ~config:(sweep_config mshrs) ~nprocs:1 w)
           points)
       apps);
  let rows =
    List.concat_map
      (fun w ->
        List.mapi
          (fun i mshrs ->
            let config = sweep_config mshrs in
            let b = run ~config ~nprocs:1 ~version:Experiment.Base w in
            let c = run ~config ~nprocs:1 ~version:Experiment.Clustered w in
            let factor =
              match c.Experiment.cluster_report with
              | Some r ->
                  List.fold_left
                    (fun acc n ->
                      List.fold_left
                        (fun acc a ->
                          match a with
                          | Memclust_cluster.Driver.Unroll_jam { factor; _ } ->
                              max acc factor
                          | _ -> acc)
                        acc n.Memclust_cluster.Driver.actions)
                    0 r.Memclust_cluster.Driver.nests
              | None -> 0
            in
            [
              (if i = 0 then w.Workload.name else "");
              string_of_int mshrs;
              string_of_int factor;
              Table.fmt_float
                (float_of_int (Experiment.exec_cycles b)
                /. float_of_int (Experiment.exec_cycles c))
              ^ "x";
            ])
          points)
      apps
  in
  "Extension: clustering speedup vs available MSHRs (uniprocessor). The
   driver re-derives the unroll degree for each lp; with one MSHR there
   is nothing to overlap, and past the bandwidth limit extra MSHRs stop
   helping (the paper's section 5.1 observation).

"
  ^ Table.render ~header:[ "app"; "MSHRs"; "chosen degree"; "speedup" ] rows

(* ------------------------------------------------------------------ *)

let paper_ids =
  [ "table1"; "table2"; "latbench"; "fig3a"; "fig3b"; "table3"; "fig4a"; "fig4b"; "ghz" ]

let extension_ids = [ "prefetch"; "ablation"; "mshrsweep" ]

let all_ids = paper_ids @ extension_ids

let by_id = function
  | "table1" -> Some table1
  | "table2" -> Some table2
  | "latbench" -> Some latbench
  | "fig3a" -> Some fig3a
  | "fig3b" -> Some fig3b
  | "table3" -> Some table3
  | "fig4a" -> Some fig4a
  | "fig4b" -> Some fig4b
  | "ghz" -> Some ghz
  | "prefetch" -> Some prefetch
  | "ablation" -> Some ablation
  | "mshrsweep" -> Some mshr_sweep
  | _ -> None

(* one wedged or crashing artifact degrades to an error report instead of
   taking down the sibling artifacts of the same invocation *)
let run_safe id =
  match by_id id with
  | None ->
      Error
        (Memclust_util.Error.Config_invalid
           { config = id; reason = "unknown experiment id" })
  | Some f -> Memclust_util.Error.guard ~task:("experiment " ^ id) f
