(** Reproduction of every table and figure in the paper's evaluation
    (§4–§5). Each function runs the experiments it needs (memoized) and
    renders the same rows/series the paper reports. *)

val table1 : unit -> string
(** Table 1: the base simulated configuration. *)

val table2 : unit -> string
(** Table 2: workload input sizes and processor counts (our scaled
    versions, with the paper's originals alongside). *)

val latbench : unit -> string
(** §5.1: Latbench average read-miss stall time, base vs clustered, on the
    base simulated system and the Exemplar-like system, with the paper's
    numbers for comparison. *)

val fig3a : unit -> string
(** Figure 3(a): multiprocessor execution-time breakdown, base vs
    clustered, normalized to base = 100. *)

val fig3b : unit -> string
(** Figure 3(b): uniprocessor execution-time breakdown. *)

val table3 : unit -> string
(** Table 3: percent execution-time reduction on the Exemplar-like
    configuration (multiprocessor and uniprocessor). *)

val fig4a : unit -> string
(** Figure 4(a): read-MSHR occupancy curves for multiprocessor LU and
    Ocean — fraction of time at least N MSHRs hold read misses. *)

val fig4b : unit -> string
(** Figure 4(b): total (read + write) MSHR occupancy curves. *)

val ghz : unit -> string
(** §5.2: the 1 GHz sensitivity experiment — same memory system in ns,
    double the clock. *)

val prefetch : unit -> string
(** Extension (paper §6 / ref [8]): software prefetching alone, clustering
    alone, and both, with late-prefetch and contention statistics. *)

val ablation : unit -> string
(** Extension: per-stage ablation of the driver (unroll-and-jam, window
    resolution, scalar replacement, scheduling). *)

val mshr_sweep : unit -> string
(** Extension: clustering speedup and chosen unroll degree as the MSHR
    count (lp) varies. *)

val paper_ids : string list
(** The nine artifacts of the paper's evaluation. *)

val extension_ids : string list

val all_ids : string list
(** [paper_ids @ extension_ids]. *)

val by_id : string -> (unit -> string) option

val run_safe : string -> (string, Memclust_util.Error.t) result
(** Render one artifact with every failure — watchdog deadlock, pipeline
    error, worker crash — caught into a structured error, so a batch of
    artifacts degrades per-artifact instead of aborting wholesale.
    Unknown ids yield [Config_invalid]. *)
