(** Running one (workload, machine, processor-count, version) point of the
    evaluation: apply (or skip) the clustering transformations, lower,
    simulate, and collect the simulator's statistics. *)

open Memclust_ir
open Memclust_cluster
open Memclust_sim
open Memclust_workloads

type version =
  | Base
  | Clustered
  | Prefetched  (** software prefetching only (extension) *)
  | Clustered_prefetched  (** clustering then prefetching (extension) *)

type spec = {
  workload : Workload.t;
  config : Config.t;
  nprocs : int;
  version : version;
}

type outcome = {
  spec : spec;
  result : Machine.result;
  estimate : Sampling.estimate option;
      (** confidence intervals when the resolved simulation mode is
          sampled; [None] for the exact modes *)
  cluster_report : Driver.report option;  (** None for unclustered versions *)
  trace : Pass.Pipeline.trace option;
      (** the clustering pipeline's per-pass instrumentation (None for
          unclustered versions) *)
  program : Ast.program;  (** the program actually simulated *)
}

val machine_of_config : Config.t -> Machine_model.t
(** The analysis-side machine parameters implied by a simulator config. *)

val transform : Config.t -> Workload.t -> Ast.program * Driver.report
(** Cluster the workload for the given machine (memoized per
    workload-name/config-name pair — transformation is deterministic). *)

val simulate_cached :
  Workload.t -> Config.t -> nprocs:int -> Ast.program -> Machine.result
(** Lower (memoized on a structural program digest — one lowering serves
    every config simulating the same program) and simulate (memoized on
    workload, nprocs, config contents, program digest and resolved
    simulation mode). The returned result is shared: treat it as
    read-only. *)

val simulate_estimated :
  Workload.t ->
  Config.t ->
  nprocs:int ->
  Ast.program ->
  Machine.result * Sampling.estimate option
(** {!simulate_cached} plus the sampling estimate when the config resolves
    to sampled mode. *)

val execute : spec -> outcome
(** The workload's scaled L2 size is applied to the config when the config
    has a two-level hierarchy; single-level configs (Exemplar) are used
    unchanged. *)

val spec_key : spec -> string
(** The memo key: ["workload|config|nprocs|version"]. Useful for
    deduplicating spec lists before fanning out over a domain pool. *)

val execute_cached : spec -> outcome
(** Like {!execute}, memoized on (workload, config, nprocs, version); logs
    progress to stderr. Safe to call from multiple domains concurrently
    (the memo tables are mutex-guarded; racing domains may duplicate
    deterministic work, never corrupt state). *)

val execute_result : spec -> (outcome, Memclust_util.Error.t) result
(** {!execute_cached} with every failure — simulator deadlock, pass
    pipeline error, crash — caught into a structured error naming the
    spec, so one wedged point cannot poison a whole figure. *)

val clear_caches : unit -> unit
(** Drop every memoized clustering, lowering, simulation and outcome
    (process-wide — clears all registered {!Memclust_util.Analysis_cache}
    tables, including the driver's profile cache). The caches are also
    entry-capped, so calling this is optional even for long sweeps. *)

val exec_cycles : outcome -> int
val data_stall : outcome -> float
