(** On-disk checkpointing of completed experiment artifacts.

    A checkpoint directory holds one text file per completed artifact
    (table/figure) id. [repro experiment --checkpoint DIR] consults it
    before running each artifact and records each one on completion, so
    a run killed partway (crash, OOM, watchdog) resumes from the last
    completed artifact instead of starting over.

    Writes are atomic (temp file + [Sys.rename] in the same directory),
    so a crash mid-save never leaves a truncated artifact that a resume
    would mistake for a completed one. *)

type t

val create : string -> t
(** Open (creating as needed, like [mkdir -p]) a checkpoint directory.
    Raises [Memclust_util.Error.Error (Config_invalid _)] if the path
    exists and is not a directory. *)

val mem : t -> string -> bool

val load : t -> string -> string option
(** The saved artifact text, or [None] if not yet completed. *)

val save : t -> string -> string -> unit
(** [save t id text] atomically records [id] as completed. *)

val saved : t -> string list
(** Ids of all completed artifacts, sorted. *)
