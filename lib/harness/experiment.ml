open Memclust_ir
open Memclust_cluster
open Memclust_codegen
open Memclust_sim
open Memclust_workloads
module Analysis_cache = Memclust_util.Analysis_cache

type version = Base | Clustered | Prefetched | Clustered_prefetched

type spec = {
  workload : Workload.t;
  config : Config.t;
  nprocs : int;
  version : version;
}

type outcome = {
  spec : spec;
  result : Machine.result;
  estimate : Sampling.estimate option;
  cluster_report : Driver.report option;
  trace : Pass.Pipeline.trace option;
  program : Ast.program;
}

let machine_of_config (cfg : Config.t) =
  {
    Machine_model.window = cfg.Config.window;
    (* the effective outstanding-miss bound: the smallest MSHR file in
       the hierarchy stack *)
    mshrs = Config.lp cfg;
    line_size = Config.line cfg;
    max_unroll = 16;
    max_procs = 16;
  }

(* Clustering is deterministic: memoize per (workload, config) so the
   multiprocessor and uniprocessor runs share one transformation.

   All memo tables are [Analysis_cache]s: mutex-guarded (shared across the
   domains of the experiment pool) and bounded, so long bench sweeps can't
   grow memory without bound. Computation runs outside the lock: two
   domains racing on the same key may duplicate (deterministic) work, but
   Figures deduplicates its spec lists so this stays rare. *)
let cluster_cache : (Ast.program * Driver.report) Analysis_cache.t =
  Analysis_cache.create ~cap:128 ~name:"harness-cluster" ()

let transform (cfg : Config.t) (w : Workload.t) =
  let machine =
    { (machine_of_config cfg) with
      Machine_model.max_procs = max 1 w.Workload.mp_procs
    }
  in
  (* key on the analysis-side machine projection, not the config name:
     configs that differ only in latencies/clock (e.g. the 1 GHz point)
     share one clustering *)
  let key =
    Printf.sprintf "%s@w%d.m%d.l%d.p%d" w.Workload.name
      machine.Machine_model.window machine.Machine_model.mshrs
      machine.Machine_model.line_size machine.Machine_model.max_procs
  in
  Analysis_cache.find_or_compute cluster_cache key (fun () ->
      let options = { Driver.default_options with machine } in
      Driver.run ~options ~init:w.Workload.init w.Workload.program)

let scaled_config (cfg : Config.t) (w : Workload.t) =
  (* single-level hierarchies (Exemplar) keep their cache; multi-level
     stacks scale the memory-side level per the workload class *)
  if Config.depth cfg >= 2 then Config.with_l2 w.Workload.l2_bytes cfg else cfg

(* Lowered traces depend only on (program, workload init, nprocs) — not on
   the simulated machine — so one lowering serves every config that
   simulates the same program. Keyed by a structural digest of the
   program: distinct clusterings hash apart, identical ones (e.g. the
   same workload clustered for two MSHR counts that lead to the same
   transformation) hash together. The trace and the home map are
   immutable once built, so sharing across runs is safe. Lowered traces
   are the largest values we memoize, so this cache has the smallest
   cap. *)
let lower_cache : (Lower.t * (int -> int)) Analysis_cache.t =
  Analysis_cache.create ~cap:32 ~name:"harness-lower" ()

let program_digest program =
  Digest.to_hex (Digest.string (Marshal.to_string program []))

let lowered_for (w : Workload.t) ~nprocs program =
  let key =
    Printf.sprintf "%s|%d|%s" w.Workload.name nprocs (program_digest program)
  in
  Analysis_cache.find_or_compute lower_cache key (fun () ->
      let data = Data.create program in
      w.Workload.init data;
      let lowered = Lower.build ~nprocs program data in
      let home = Data.home_of_addr data ~nprocs in
      (lowered, home))

(* One more memo on top of [lowered_for]: the simulation result itself,
   keyed by (workload, nprocs, full config contents, program digest).
   Different figures frequently simulate the same program point — e.g.
   the ablation's "full pipeline" variant is exactly the Clustered
   version of the main tables — and [Machine.result] is only ever read
   by the reporting code. *)
let sim_cache : (Machine.result * Sampling.estimate option) Analysis_cache.t =
  Analysis_cache.create ~cap:512 ~name:"harness-sim" ()

(* the resolved mode is part of the key because it can come from outside
   the config (the MEMCLUST_SIM_MODE environment variable) *)
let simulate_estimated (w : Workload.t) (cfg : Config.t) ~nprocs program =
  let key =
    Printf.sprintf "%s|%d|%s|%s|%s" w.Workload.name nprocs
      (Digest.to_hex (Digest.string (Marshal.to_string cfg [])))
      (program_digest program)
      (Machine.mode_to_string (Machine.resolve_mode cfg))
  in
  Analysis_cache.find_or_compute sim_cache key (fun () ->
      let lowered, home = lowered_for w ~nprocs program in
      Machine.run_estimated cfg ~home lowered)

let simulate_cached w cfg ~nprocs program =
  fst (simulate_estimated w cfg ~nprocs program)

let execute spec =
  let cfg = scaled_config spec.config spec.workload in
  let program, cluster_report =
    match spec.version with
    | Base -> (Program.renumber spec.workload.Workload.program, None)
    | Clustered ->
        let p, r = transform cfg spec.workload in
        (p, Some r)
    | Prefetched ->
        let p, _ =
          Memclust_transform.Prefetch_pass.insert
            ~latency:cfg.Config.mem_lat ~issue_width:cfg.Config.issue_width
            ~line_size:(Config.line cfg)
            (Program.renumber spec.workload.Workload.program)
        in
        (p, None)
    | Clustered_prefetched ->
        let p, r = transform cfg spec.workload in
        let p, _ =
          Memclust_transform.Prefetch_pass.insert
            ~latency:cfg.Config.mem_lat ~issue_width:cfg.Config.issue_width
            ~line_size:(Config.line cfg) p
        in
        (p, Some r)
  in
  let result, estimate =
    simulate_estimated spec.workload cfg ~nprocs:spec.nprocs program
  in
  let trace = Option.map (fun (r : Driver.report) -> r.Driver.trace) cluster_report in
  { spec; result; estimate; cluster_report; trace; program }

let outcome_cache : outcome Analysis_cache.t =
  Analysis_cache.create ~cap:512 ~name:"harness-outcome" ()

let spec_key spec =
  Printf.sprintf "%s|%s|%d|%s|%s" spec.workload.Workload.name
    spec.config.Config.name spec.nprocs
    (match spec.version with
    | Base -> "base"
    | Clustered -> "clust"
    | Prefetched -> "pf"
    | Clustered_prefetched -> "clust+pf")
    (Machine.mode_to_string (Machine.resolve_mode spec.config))

let execute_cached spec =
  let key = spec_key spec in
  match Analysis_cache.find_opt outcome_cache key with
  | Some o -> o
  | None ->
      Printf.eprintf "[run] %s...\n%!" key;
      let o = execute spec in
      Analysis_cache.set outcome_cache key o;
      o

let execute_result spec =
  Memclust_util.Error.guard ~task:(spec_key spec) (fun () ->
      execute_cached spec)

let clear_caches () = Analysis_cache.clear_all ()

let exec_cycles o = o.result.Machine.cycles

let data_stall o = o.result.Machine.breakdown.Breakdown.data_stall
