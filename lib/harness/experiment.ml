open Memclust_ir
open Memclust_cluster
open Memclust_codegen
open Memclust_sim
open Memclust_workloads

type version = Base | Clustered | Prefetched | Clustered_prefetched

type spec = {
  workload : Workload.t;
  config : Config.t;
  nprocs : int;
  version : version;
}

type outcome = {
  spec : spec;
  result : Machine.result;
  cluster_report : Driver.report option;
  program : Ast.program;
}

let machine_of_config (cfg : Config.t) =
  {
    Machine_model.window = cfg.Config.window;
    mshrs = cfg.Config.mshrs;
    line_size = cfg.Config.line;
    max_unroll = 16;
    max_procs = 16;
  }

(* Clustering is deterministic: memoize per (workload, config) so the
   multiprocessor and uniprocessor runs share one transformation.

   The memo tables are shared across the domains of the experiment pool,
   so every access is mutex-guarded. Computation runs outside the lock:
   two domains racing on the same key may duplicate (deterministic) work,
   but Figures deduplicates its spec lists so this stays rare. *)
let cache : (string, Ast.program * Driver.report) Hashtbl.t = Hashtbl.create 16
let cache_m = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
      Mutex.unlock m;
      v
  | exception e ->
      Mutex.unlock m;
      raise e

let transform (cfg : Config.t) (w : Workload.t) =
  let machine =
    { (machine_of_config cfg) with
      Machine_model.max_procs = max 1 w.Workload.mp_procs
    }
  in
  (* key on the analysis-side machine projection, not the config name:
     configs that differ only in latencies/clock (e.g. the 1 GHz point)
     share one clustering *)
  let key =
    Printf.sprintf "%s@w%d.m%d.l%d.p%d" w.Workload.name
      machine.Machine_model.window machine.Machine_model.mshrs
      machine.Machine_model.line_size machine.Machine_model.max_procs
  in
  match with_lock cache_m (fun () -> Hashtbl.find_opt cache key) with
  | Some r -> r
  | None ->
      let options = { Driver.default_options with machine } in
      let r = Driver.run ~options ~init:w.Workload.init w.Workload.program in
      with_lock cache_m (fun () -> Hashtbl.replace cache key r);
      r

let scaled_config (cfg : Config.t) (w : Workload.t) =
  match cfg.Config.l2_bytes with
  | None -> cfg
  | Some _ -> Config.with_l2 w.Workload.l2_bytes cfg

(* Lowered traces depend only on (program, workload init, nprocs) — not on
   the simulated machine — so one lowering serves every config that
   simulates the same program. Keyed by a structural digest of the
   program: distinct clusterings hash apart, identical ones (e.g. the
   same workload clustered for two MSHR counts that lead to the same
   transformation) hash together. The trace and the home map are
   immutable once built, so sharing across runs is safe. *)
let lower_cache : (string, Lower.t * (int -> int)) Hashtbl.t = Hashtbl.create 64
let lower_m = Mutex.create ()

let program_digest program =
  Digest.to_hex (Digest.string (Marshal.to_string program []))

let lowered_for (w : Workload.t) ~nprocs program =
  let key =
    Printf.sprintf "%s|%d|%s" w.Workload.name nprocs (program_digest program)
  in
  match with_lock lower_m (fun () -> Hashtbl.find_opt lower_cache key) with
  | Some r -> r
  | None ->
      let data = Data.create program in
      w.Workload.init data;
      let lowered = Lower.build ~nprocs program data in
      let home = Data.home_of_addr data ~nprocs in
      let r = (lowered, home) in
      with_lock lower_m (fun () -> Hashtbl.replace lower_cache key r);
      r

(* One more memo on top of [lowered_for]: the simulation result itself,
   keyed by (workload, nprocs, full config contents, program digest).
   Different figures frequently simulate the same program point — e.g.
   the ablation's "full pipeline" variant is exactly the Clustered
   version of the main tables — and [Machine.result] is only ever read
   by the reporting code. *)
let sim_cache : (string, Machine.result) Hashtbl.t = Hashtbl.create 64
let sim_m = Mutex.create ()

let simulate_cached (w : Workload.t) (cfg : Config.t) ~nprocs program =
  let key =
    Printf.sprintf "%s|%d|%s|%s" w.Workload.name nprocs
      (Digest.to_hex (Digest.string (Marshal.to_string cfg [])))
      (program_digest program)
  in
  match with_lock sim_m (fun () -> Hashtbl.find_opt sim_cache key) with
  | Some r -> r
  | None ->
      let lowered, home = lowered_for w ~nprocs program in
      let r = Machine.run cfg ~home lowered in
      with_lock sim_m (fun () -> Hashtbl.replace sim_cache key r);
      r

let execute spec =
  let cfg = scaled_config spec.config spec.workload in
  let program, cluster_report =
    match spec.version with
    | Base -> (Program.renumber spec.workload.Workload.program, None)
    | Clustered ->
        let p, r = transform cfg spec.workload in
        (p, Some r)
    | Prefetched ->
        let p, _ =
          Memclust_transform.Prefetch_pass.insert
            ~latency:cfg.Config.mem_lat ~issue_width:cfg.Config.issue_width
            ~line_size:cfg.Config.line
            (Program.renumber spec.workload.Workload.program)
        in
        (p, None)
    | Clustered_prefetched ->
        let p, r = transform cfg spec.workload in
        let p, _ =
          Memclust_transform.Prefetch_pass.insert
            ~latency:cfg.Config.mem_lat ~issue_width:cfg.Config.issue_width
            ~line_size:cfg.Config.line p
        in
        (p, Some r)
  in
  let result = simulate_cached spec.workload cfg ~nprocs:spec.nprocs program in
  { spec; result; cluster_report; program }

let outcome_cache : (string, outcome) Hashtbl.t = Hashtbl.create 64
let outcome_m = Mutex.create ()

let spec_key spec =
  Printf.sprintf "%s|%s|%d|%s" spec.workload.Workload.name
    spec.config.Config.name spec.nprocs
    (match spec.version with
    | Base -> "base"
    | Clustered -> "clust"
    | Prefetched -> "pf"
    | Clustered_prefetched -> "clust+pf")

let execute_cached spec =
  let key = spec_key spec in
  match with_lock outcome_m (fun () -> Hashtbl.find_opt outcome_cache key) with
  | Some o -> o
  | None ->
      Printf.eprintf "[run] %s...\n%!" key;
      let o = execute spec in
      with_lock outcome_m (fun () -> Hashtbl.replace outcome_cache key o);
      o

let exec_cycles o = o.result.Machine.cycles

let data_stall o = o.result.Machine.breakdown.Breakdown.data_stall
