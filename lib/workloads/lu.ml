open Memclust_ir
open Memclust_util

let make ?(n = 96) ?(block = 16) () =
  if block <= 0 || n mod block <> 0 then
    invalid_arg
      (Printf.sprintf "Lu.make: n (%d) must be a positive multiple of block (%d)"
         n block);
  let nn = n * n in
  let program =
    let open Builder in
    let at r c = (n *: r) +: c in
    (* A[i, kk] holds 1/pivot after factorization of column kk; we skip
       division by storing reciprocal-scaled updates (no pivoting). *)
    let factor_diag =
      (* for kk in kb..kb+B: for i in kk+1..kb+B: A[i,kk] *= rdiag;
         for j in kk+1..kb+B: A[i,j] -= A[i,kk]*A[kk,j] *)
      loop "kk" (ix "kb") (ix "kb" +: cst block)
        [
          loop "fi" (ix "kk" +: cst 1) (ix "kb" +: cst block)
            [
              store (aref "A" (at (ix "fi") (ix "kk")))
                (arr "A" (at (ix "fi") (ix "kk"))
                * arr "rdiag" (ix "kk"));
              loop "fj" (ix "kk" +: cst 1) (ix "kb" +: cst block)
                [
                  store (aref "A" (at (ix "fi") (ix "fj")))
                    (arr "A" (at (ix "fi") (ix "fj"))
                    - (arr "A" (at (ix "fi") (ix "kk"))
                      * arr "A" (at (ix "kk") (ix "fj"))));
                ];
            ];
        ]
    in
    (* row-panel update: blocks right of the pivot block *)
    let perimeter =
      loop ~parallel:true ~step:block "jb" (ix "kb" +: cst block) (cst n)
        [
          loop "kk" (cst 0) (cst block)
            [
              loop ~parallel:true "pi" (ix "kk" +: cst 1) (cst block)
                [
                  loop "pj" (cst 0) (cst block)
                    [
                      store
                        (aref "A" (at (ix "kb" +: ix "pi") (ix "jb" +: ix "pj")))
                        (arr "A" (at (ix "kb" +: ix "pi") (ix "jb" +: ix "pj"))
                        - (arr "A" (at (ix "kb" +: ix "pi") (ix "kb" +: ix "kk"))
                          * arr "A" (at (ix "kb" +: ix "kk") (ix "jb" +: ix "pj"))));
                    ];
                ];
            ];
        ]
    in
    (* column panel: blocks below the pivot block *)
    let column_panel =
      loop ~parallel:true ~step:block "ib" (ix "kb" +: cst block) (cst n)
        [
          loop "kk" (cst 0) (cst block)
            [
              loop ~parallel:true "ci" (cst 0) (cst block)
                [
                  store (aref "A" (at (ix "ib" +: ix "ci") (ix "kb" +: ix "kk")))
                    (arr "A" (at (ix "ib" +: ix "ci") (ix "kb" +: ix "kk"))
                    * arr "rdiag" (ix "kb" +: ix "kk"));
                  loop "cj" (ix "kk" +: cst 1) (cst block)
                    [
                      store
                        (aref "A" (at (ix "ib" +: ix "ci") (ix "kb" +: ix "cj")))
                        (arr "A" (at (ix "ib" +: ix "ci") (ix "kb" +: ix "cj"))
                        - (arr "A" (at (ix "ib" +: ix "ci") (ix "kb" +: ix "kk"))
                          * arr "A" (at (ix "kb" +: ix "kk") (ix "kb" +: ix "cj"))));
                    ];
                ];
            ];
        ]
    in
    (* interior update: the dominant daxpy nest *)
    let interior =
      loop ~parallel:true ~step:block "jb" (ix "kb" +: cst block) (cst n)
        [
          loop ~step:block "ib" (ix "kb" +: cst block) (cst n)
            [
              loop "kk" (cst 0) (cst block)
                [
                  (* marked parallel: interior rows are independent of the
                     pivot panels (the interval-based legality test cannot
                     see ib > kb); same assumption the paper makes for its
                     hand transformations *)
                  loop ~parallel:true "i" (cst 0) (cst block)
                    [
                      loop "j" (cst 0) (cst block)
                        [
                          store
                            (aref "A" (at (ix "ib" +: ix "i") (ix "jb" +: ix "j")))
                            (arr "A" (at (ix "ib" +: ix "i") (ix "jb" +: ix "j"))
                            - (arr "A" (at (ix "ib" +: ix "i") (ix "kb" +: ix "kk"))
                              * arr "A" (at (ix "kb" +: ix "kk") (ix "jb" +: ix "j"))));
                        ];
                    ];
                ];
            ];
        ]
    in
    program "lu"
      ~arrays:[ array_decl "A" nn; array_decl "rdiag" n ]
      [
        loop ~step:block "kb" (cst 0) (cst n)
          [ factor_diag; perimeter; column_panel; interior ];
      ]
  in
  let init data =
    let rng = Rng.create 0x10_fac7 in
    for i = 0 to nn - 1 do
      Data.set data "A" i (Ast.Vfloat (Rng.float rng 1.0))
    done;
    (* diagonally dominant, with reciprocals precomputed *)
    for i = 0 to n - 1 do
      Data.set data "A" ((i * n) + i) (Ast.Vfloat (float_of_int n));
      Data.set data "rdiag" i (Ast.Vfloat (1.0 /. float_of_int n))
    done
  in
  {
    Workload.name = "LU";
    program;
    init;
    l2_bytes = Workload.small_l2;
    mp_procs = 8;
    description = Printf.sprintf "%dx%d matrix, %dx%d blocks, no pivoting" n n block block;
  }
