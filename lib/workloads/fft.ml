open Memclust_ir
open Memclust_util

let log2 v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let make ?(m = 64) () =
  if m <= 0 || m land (m - 1) <> 0 then
    invalid_arg
      (Printf.sprintf "Fft.make: row size m must be a power of two, got %d" m);
  let n = m * m in
  let stages = log2 m in
  let program =
    let open Builder in
    (* one loop nest per butterfly stage of the per-row FFTs *)
    let stage_nest ~re ~im s =
      let half = 1 lsl s in
      let span = Stdlib.( * ) half 2 in
      let groups = Stdlib.( / ) m span in
      let twoff = Stdlib.( - ) half 1 in
      let i1 = (m *: ix "r") +: (span *: ix "g") +: ix "t" in
      let i2 = i1 +: cst half in
      let tw = cst twoff +: ix "t" in
      loop "g" (cst 0) (cst groups)
        [
          loop "t" (cst 0) (cst half)
            [
              assign "wr" (arr "twr" tw);
              assign "wi" (arr "twi" tw);
              assign "a" (arr re i2);
              assign "b" (arr im i2);
              assign "tr" ((sc "a" * sc "wr") - (sc "b" * sc "wi"));
              assign "ti" ((sc "a" * sc "wi") + (sc "b" * sc "wr"));
              assign "c" (arr re i1);
              assign "d" (arr im i1);
              store (aref re i2) (sc "c" - sc "tr");
              store (aref im i2) (sc "d" - sc "ti");
              store (aref re i1) (sc "c" + sc "tr");
              store (aref im i1) (sc "d" + sc "ti");
            ];
        ]
    in
    let fft_phase ~re ~im =
      loop ~parallel:true "r" (cst 0) (cst m)
        (List.init stages (stage_nest ~re ~im))
    in
    let transpose ~src_re ~src_im ~dst_re ~dst_im =
      loop ~parallel:true "i" (cst 0) (cst m)
        [
          loop "j" (cst 0) (cst m)
            [
              store (aref dst_re ((m *: ix "j") +: ix "i"))
                (arr src_re ((m *: ix "i") +: ix "j"));
              store (aref dst_im ((m *: ix "j") +: ix "i"))
                (arr src_im ((m *: ix "i") +: ix "j"));
            ];
        ]
    in
    program "fft"
      ~arrays:
        [
          array_decl "re" n;
          array_decl "im" n;
          array_decl "tre" n;
          array_decl "tim" n;
          array_decl "twr" m;
          array_decl "twi" m;
        ]
      [
        fft_phase ~re:"re" ~im:"im";
        transpose ~src_re:"re" ~src_im:"im" ~dst_re:"tre" ~dst_im:"tim";
        fft_phase ~re:"tre" ~im:"tim";
      ]
  in
  let init data =
    let rng = Rng.create 0xff7_0042 in
    for i = 0 to n - 1 do
      Data.set data "re" i (Ast.Vfloat (Rng.float rng 2.0 -. 1.0));
      Data.set data "im" i (Ast.Vfloat (Rng.float rng 2.0 -. 1.0))
    done;
    for i = 0 to m - 1 do
      let theta = -2.0 *. Float.pi *. float_of_int i /. float_of_int m in
      Data.set data "twr" i (Ast.Vfloat (cos theta));
      Data.set data "twi" i (Ast.Vfloat (sin theta))
    done
  in
  {
    Workload.name = "FFT";
    program;
    init;
    l2_bytes = Workload.small_l2;
    mp_procs = 16;
    description = Printf.sprintf "%d points as %dx%d rows, radix-2 + transpose" n m m;
  }
