let latbench () = Latbench.make ()

let applications () =
  [
    Em3d.make ();
    Erlebacher.make ();
    Fft.make ();
    Lu.make ();
    Mp3d.make ();
    Mst.make ();
    Ocean.make ();
  ]

let small () =
  [
    Latbench.make ~chains:4 ~derefs:32 ();
    Em3d.make ~nodes:64 ~degree:3 ();
    Erlebacher.make ~n:8 ();
    Fft.make ~m:8 ();
    Lu.make ~n:16 ~block:8 ();
    Mp3d.make ~particles:128 ~cells_per_side:4 ~steps:1 ();
    Mst.make ~vertices:32 ~buckets:8 ~nodes:128 ();
    Ocean.make ~n:18 ~iters:1 ();
  ]

let by_name name =
  let want = String.lowercase_ascii name in
  List.find_opt
    (fun w -> String.equal (String.lowercase_ascii w.Workload.name) want)
    (latbench () :: applications ())
