(** All evaluation workloads at their default (scaled) sizes, in the
    paper's Table 2 order. *)

val latbench : unit -> Workload.t

val applications : unit -> Workload.t list
(** Em3d, Erlebacher, FFT, LU, Mp3d, MST, Ocean. *)

val small : unit -> Workload.t list
(** Every workload (Latbench + applications) at deliberately tiny sizes —
    seconds, not minutes, to execute with {!Memclust_ir.Exec} — for
    differential tests that compare observable stores before and after
    each transformation pass. *)

val by_name : string -> Workload.t option
(** Case-insensitive lookup over Latbench and the applications. *)
