(** Conservative data-dependence legality tests for the loop
    transformations (classical GCD + Banerjee interval tests on affine
    subscripts, with loop bounds evaluated through interval arithmetic).

    The memory-parallelism framework itself is optimistic (it gauges
    performance potential); these tests are the conventional, conservative
    side that decides whether a rewrite is allowed (paper §3.1). Loops
    explicitly marked [parallel] are exempt — the paper makes the same
    assumption for the irregular codes (Em3d, Mp3d, MST). *)

open Memclust_ir
open Ast

type var_range = { r_lo : int; r_hi : int }  (** inclusive *)

val ranges_of_nest :
  params:(string * int) list -> loop list -> (string * var_range) list
(** Interval bounds of each loop variable in a nest (outermost first),
    propagating outer intervals into inner bounds. *)

val unroll_jam_legal :
  params:(string * int) list ->
  outer_ranges:(string * var_range) list ->
  target:loop ->
  factor:int ->
  bool
(** Is it legal to unroll-and-jam [target] by [factor]? True when [target]
    is marked parallel, or when no pair of references in its body can carry
    a dependence at distance 1..factor-1 on [target]'s variable. Any
    irregular (indirect/pointer) store in the body makes the test fail
    (unless parallel). *)

val fusion_legal :
  params:(string * int) list ->
  outer_ranges:(string * var_range) list ->
  var:string ->
  loop ->
  loop ->
  bool
(** May the two loops (same iteration space over variable [var]) be fused?
    Checks that no dependence points backwards across the fusion: an
    access in the second loop at iteration i conflicting with a store in
    the first loop at some iteration i+d, d >= 1 (bounded test, like
    {!interchange_legal}). Any irregular store in either body fails, as
    does an indirect read in one loop of an array the other loop stores
    (the dependence distance through the index array is unknowable). *)

val interchange_legal :
  params:(string * int) list ->
  outer_ranges:(string * var_range) list ->
  outer:loop ->
  inner:loop ->
  bool
(** May [outer] and [inner] (perfectly nested) be interchanged? Checks that
    no dependence has direction (<, >) across the two loops. *)
