open Memclust_ir
open Ast

type error =
  | Shape_mismatch of string
  | Illegal of string
  | Scalar_conflict of string

let pp_error ppf = function
  | Shape_mismatch m -> Format.fprintf ppf "shape mismatch: %s" m
  | Illegal m -> Format.fprintf ppf "illegal: %s" m
  | Scalar_conflict m -> Format.fprintf ppf "scalar conflict: %s" m

(* first access per scalar in a pre-order walk (see Unroll_jam) *)
let write_first stmts v =
  let first = ref None in
  let note kind = if !first = None then first := Some kind in
  let rec expr e =
    match e with
    | Const _ | Ivar _ -> ()
    | Scalar v' -> if String.equal v v' then note `Read
    | Load r -> ref_ r
    | Unop (_, a) -> expr a
    | Binop (_, a, b) ->
        expr a;
        expr b
  and ref_ r =
    match r.target with
    | Direct _ -> ()
    | Indirect { index; _ } -> expr index
    | Field { ptr; _ } -> expr ptr
  in
  let rec stmt s =
    match s with
    | Assign (Lscalar v', e) ->
        expr e;
        if String.equal v v' then note `Write
    | Assign (Lmem r, e) ->
        expr e;
        ref_ r
    | Use e -> expr e
    | Barrier -> ()
    | Prefetch r -> ref_ r
    | If (c, t, e) ->
        expr c;
        List.iter stmt t;
        List.iter stmt e
    | Loop l -> List.iter stmt l.body
    | Chase c ->
        expr c.init;
        if String.equal v c.cvar then note `Write;
        List.iter stmt c.cbody
  in
  List.iter stmt stmts;
  !first = Some `Write

(* unique rename stamp per invocation; see Unroll_jam *)
let stamp_counter = Atomic.make 0 (* domain-safe: experiments transform in parallel *)

let apply ?(params = []) ?(outer_ranges = []) (l1 : loop) (l2 : loop) =
  (* align the second loop onto the first's variable *)
  let l2 =
    if String.equal l1.var l2.var then l2
    else
      match Subst.rename_var l2.var l1.var (Loop l2) with
      | Loop l -> l
      | _ -> assert false
  in
  if not (Affine.equal l1.lo l2.lo && Affine.equal l1.hi l2.hi && l1.step = l2.step)
  then Error (Shape_mismatch "bounds or step differ")
  else begin
    (* shared written scalars: privatize the second loop's copy *)
    let w1 = Program.scalars_written l1.body in
    let w2 = Program.scalars_written l2.body in
    let shared = List.filter (fun v -> List.mem v w1) w2 in
    let conflict =
      List.find_opt
        (fun v -> not (write_first l2.body v && write_first l1.body v))
        shared
    in
    match conflict with
    | Some v -> Error (Scalar_conflict v)
    | None ->
        if
          not
            (Legality.fusion_legal ~params ~outer_ranges ~var:l1.var l1 l2)
        then Error (Illegal "a dependence points backwards across the fusion")
        else begin
          let stamp = Atomic.fetch_and_add stamp_counter 1 + 1 in
          let body2 =
            if shared = [] then l2.body
            else
              List.map
                (Subst.rename_scalars (fun v ->
                     if List.mem v shared then Printf.sprintf "%s$fused%d" v stamp
                     else v))
                l2.body
          in
          Ok
            (Loop
               {
                 l1 with
                 parallel = l1.parallel && l2.parallel;
                 body = l1.body @ body2;
               })
        end
  end

let fuse_adjacent ?(params = []) (p : program) =
  let count = ref 0 in
  let rec pass stmts =
    match stmts with
    | Loop l1 :: Loop l2 :: rest -> (
        match apply ~params l1 l2 with
        | Ok fused ->
            incr count;
            pass (fused :: rest)
        | Error _ -> (
            match pass (Loop l2 :: rest) with
            | [] -> [ Loop l1 ]
            | tail -> Loop l1 :: tail))
    | st :: rest -> st :: pass rest
    | [] -> []
  in
  (* bind before building the pair: tuple components evaluate right to
     left, which would read [count] before [pass] runs *)
  let body = pass p.body in
  (Program.renumber { p with body }, !count)
