open Memclust_ir
open Ast

(* Scalars whose first access in the body is a write are privatizable:
   renaming them per copy removes false dependences between copies so the
   miss-packing scheduler can interleave them. Loop-carried scalars (read
   before written) keep their shared name, preserving semantics. *)
let privatizable_scalars stmts =
  let first : (string, [ `Read | `Write ]) Hashtbl.t = Hashtbl.create 8 in
  let note v kind = if not (Hashtbl.mem first v) then Hashtbl.add first v kind in
  let rec expr e =
    match e with
    | Const _ | Ivar _ -> ()
    | Scalar v -> note v `Read
    | Load r -> ref_ r
    | Unop (_, a) -> expr a
    | Binop (_, a, b) ->
        expr a;
        expr b
  and ref_ r =
    match r.target with
    | Direct _ -> ()
    | Indirect { index; _ } -> expr index
    | Field { ptr; _ } -> expr ptr
  in
  let rec stmt s =
    match s with
    | Assign (Lscalar v, e) ->
        expr e;
        note v `Write
    | Assign (Lmem r, e) ->
        expr e;
        ref_ r
    | Use e -> expr e
    | Barrier -> ()
    | Prefetch r -> ref_ r
    | If (c, t, e) ->
        expr c;
        List.iter stmt t;
        List.iter stmt e
    | Loop l -> List.iter stmt l.body
    | Chase c ->
        expr c.init;
        note c.cvar `Write;
        List.iter stmt c.cbody
  in
  List.iter stmt stmts;
  List.filter
    (fun v -> Hashtbl.find_opt first v = Some `Write)
    (Program.scalars_written stmts)

let const_bounds ~params (l : loop) =
  let env v =
    match List.assoc_opt v params with Some k -> k | None -> raise Exit
  in
  match (Affine.eval env l.lo, Affine.eval env l.hi) with
  | lo, hi -> Some (lo, hi)
  | exception Exit -> None

(* unique rename stamp per invocation; see Unroll_jam *)
let stamp_counter = Atomic.make 0 (* domain-safe: experiments transform in parallel *)

let apply ?(params = []) ~factor (l : loop) =
  if factor <= 1 then Ok [ Loop l ]
  else begin
    match const_bounds ~params l with
    | None -> Error "loop bounds are not constant under the parameters"
    | Some (lo, hi) ->
        let s = l.step in
        let count = if hi > lo then (hi - lo + s - 1) / s else 0 in
        if count < factor then Error "fewer iterations than the unroll factor"
        else begin
          let to_rename = privatizable_scalars l.body in
          let stamp = Atomic.fetch_and_add stamp_counter 1 + 1 in
          let body =
            List.concat
              (List.init factor (fun k ->
                   let rename st =
                     if k = 0 then st
                     else
                       Subst.rename_scalars
                         (fun v ->
                           if List.mem v to_rename then
                             Printf.sprintf "%s__k%d_%d" v stamp k
                           else v)
                         st
                   in
                   List.map (fun st -> rename (Subst.shift_var l.var (k * s) st)) l.body))
          in
          let main =
            Loop
              {
                l with
                step = s * factor;
                hi = Affine.sub l.hi (Affine.const ((factor - 1) * s));
                body;
              }
          in
          let rem = count mod factor in
          let postlude =
            if rem = 0 then []
            else
              [ Loop { l with lo = Affine.const (lo + ((count - rem) * s)) } ]
          in
          Ok (main :: postlude)
        end
  end
