open Memclust_ir
open Ast

type var_range = { r_lo : int; r_hi : int }

let wide = { r_lo = -1_000_000_000; r_hi = 1_000_000_000 }

(* ---------------- interval arithmetic over affine forms -------------- *)

let range_of_affine ranges a =
  let lo = ref (Affine.constant a) and hi = ref (Affine.constant a) in
  List.iter
    (fun v ->
      let c = Affine.coeff a v in
      let { r_lo; r_hi } =
        match List.assoc_opt v ranges with Some r -> r | None -> wide
      in
      if c >= 0 then begin
        lo := !lo + (c * r_lo);
        hi := !hi + (c * r_hi)
      end
      else begin
        lo := !lo + (c * r_hi);
        hi := !hi + (c * r_lo)
      end)
    (Affine.vars a);
  { r_lo = !lo; r_hi = !hi }

let ranges_of_nest_env ~env nest =
  let ranges, _ =
    List.fold_left
      (fun (acc, env) (l : loop) ->
        let lo = range_of_affine env l.lo in
        let hi = range_of_affine env l.hi in
        (* iteration space is lo..hi-1 *)
        let r = { r_lo = lo.r_lo; r_hi = max lo.r_lo (hi.r_hi - 1) } in
        (acc @ [ (l.var, r) ], (l.var, r) :: env))
      ([], env) nest
  in
  ranges

let ranges_of_nest ~params nest =
  let env = List.map (fun (v, k) -> (v, { r_lo = k; r_hi = k })) params in
  ranges_of_nest_env ~env nest

(* ---------------- dependence equation -------------------------------- *)

type equation = { terms : (string * int * var_range) list; const : int }

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Can [terms + const = 0] have an integer solution inside the boxes?
   GCD test first, then a Banerjee-style interval test. *)
let solvable eq =
  let g = List.fold_left (fun acc (_, c, _) -> gcd acc c) 0 eq.terms in
  let gcd_ok = if g = 0 then eq.const = 0 else eq.const mod g = 0 in
  gcd_ok
  &&
  let lo = ref eq.const and hi = ref eq.const in
  List.iter
    (fun (_, c, { r_lo; r_hi }) ->
      if c >= 0 then begin
        lo := !lo + (c * r_lo);
        hi := !hi + (c * r_hi)
      end
      else begin
        lo := !lo + (c * r_hi);
        hi := !hi + (c * r_lo)
      end)
    eq.terms;
  !lo <= 0 && 0 <= !hi

(* Dependence equation [idx_a(it) - idx_b(it') = 0] where:
   - [shared] variables take equal values on both sides;
   - the [target] variable satisfies it' = it + d;
   - every other variable is an independent instance per side. *)
let equation ~ranges ~shared ~target ~d idx_a idx_b =
  let range_of v =
    match List.assoc_opt v ranges with Some r -> r | None -> wide
  in
  let terms = Hashtbl.create 8 in
  let const = ref (Affine.constant idx_a - Affine.constant idx_b) in
  let add name c range =
    if c <> 0 then
      match Hashtbl.find_opt terms name with
      | Some (c', r) ->
          ignore r;
          Hashtbl.replace terms name (c + c', range)
      | None -> Hashtbl.add terms name (c, range)
  in
  List.iter
    (fun v ->
      let c = Affine.coeff idx_a v in
      let name =
        if List.mem v shared || String.equal v target then v else v ^ "$a"
      in
      add name c (range_of v))
    (Affine.vars idx_a);
  List.iter
    (fun v ->
      let c = -(Affine.coeff idx_b v) in
      if String.equal v target then begin
        add v c (range_of v);
        const := !const + (c * d)
      end
      else begin
        let name = if List.mem v shared then v else v ^ "$b" in
        add name c (range_of v)
      end)
    (Affine.vars idx_b);
  let terms =
    Hashtbl.fold
      (fun name (c, r) acc -> if c = 0 then acc else (name, c, r) :: acc)
      terms []
  in
  { terms; const = !const }

(* ---------------- reference collection ------------------------------- *)

type site = { s_array : string; s_index : Affine.t; s_store : bool }

(* (regular sites, any irregular store present) *)
let collect_sites stmts =
  let sites = ref [] in
  let irr_store = ref false in
  List.iter
    (fun (ri : Program.ref_info) ->
      match ri.ref_.target with
      | Direct { array; index } ->
          sites := { s_array = array; s_index = index; s_store = ri.is_store } :: !sites
      | Indirect _ | Field _ -> if ri.is_store then irr_store := true)
    (Program.refs_in_stmts stmts);
  (List.rev !sites, !irr_store)

let inner_loops_of stmts =
  let acc = ref [] in
  let rec walk stmt =
    match stmt with
    | Loop l ->
        acc := !acc @ [ l ];
        List.iter walk l.body
    | Chase c -> List.iter walk c.cbody
    | If (_, t, e) ->
        List.iter walk t;
        List.iter walk e
    | Assign _ | Use _ | Barrier | Prefetch _ -> ()
  in
  List.iter walk stmts;
  !acc

(* ---------------- public tests --------------------------------------- *)

let unroll_jam_legal ~params ~outer_ranges ~target ~factor =
  target.parallel
  ||
  let env =
    List.map (fun (v, k) -> (v, { r_lo = k; r_hi = k })) params @ outer_ranges
  in
  let ranges =
    outer_ranges
    @ ranges_of_nest_env ~env (target :: inner_loops_of target.body)
  in
  let sites, irr_store = collect_sites target.body in
  (not irr_store)
  &&
  let shared = List.map fst outer_ranges in
  let pair_independent a b =
    (not (String.equal a.s_array b.s_array))
    || ((not a.s_store) && not b.s_store)
    ||
    let dep = ref false in
    for d = 1 to factor - 1 do
      let eq = equation ~ranges ~shared ~target:target.var ~d a.s_index b.s_index in
      if solvable eq then dep := true
    done;
    not !dep
  in
  List.for_all (fun a -> List.for_all (pair_independent a) sites) sites

let fusion_legal ~params ~outer_ranges ~var (l1 : loop) (l2 : loop) =
  let env =
    List.map (fun (v, k) -> (v, { r_lo = k; r_hi = k })) params @ outer_ranges
  in
  let ranges = outer_ranges @ ranges_of_nest_env ~env [ l1 ] in
  let ranges = ranges @ ranges_of_nest_env ~env (inner_loops_of l1.body) in
  let ranges = ranges @ ranges_of_nest_env ~env (inner_loops_of l2.body) in
  let sites1, irr1 = collect_sites l1.body in
  let sites2, irr2 = collect_sites l2.body in
  (* an indirect access reaches an unknown element, so a store to the
     same array in the other loop has an unknowable dependence distance:
     the fusion could move a consumer ahead of its producer (e.g. Em3d's
     second gather reads through an index array exactly the values the
     first gather writes) *)
  let indirect_arrays stmts =
    List.filter_map
      (fun (ri : Program.ref_info) ->
        match ri.ref_.target with
        | Indirect { array; _ } -> Some array
        | Direct _ | Field _ -> None)
      (Program.refs_in_stmts stmts)
  in
  let stored sites =
    List.filter_map (fun s -> if s.s_store then Some s.s_array else None) sites
  in
  let indirect_vs_store ind sites =
    List.exists (fun a -> List.mem a (stored sites)) ind
  in
  (not irr1) && (not irr2)
  && (not (indirect_vs_store (indirect_arrays l2.body) sites1))
  && (not (indirect_vs_store (indirect_arrays l1.body) sites2))
  &&
  let shared = List.map fst outer_ranges in
  let bound = 6 in
  let pair_ok a b =
    (not (String.equal a.s_array b.s_array))
    || ((not a.s_store) && not b.s_store)
    ||
    let dep = ref false in
    (* a (first loop) at iteration i+d conflicting with b (second loop)
       at iteration i means b would now run before the producing a *)
    for d = 1 to bound do
      let eq = equation ~ranges ~shared ~target:var ~d b.s_index a.s_index in
      if solvable eq then dep := true
    done;
    not !dep
  in
  List.for_all (fun a -> List.for_all (pair_ok a) sites2) sites1

let interchange_legal ~params ~outer_ranges ~outer ~inner =
  outer.parallel
  ||
  let env =
    List.map (fun (v, k) -> (v, { r_lo = k; r_hi = k })) params @ outer_ranges
  in
  let ranges = outer_ranges @ ranges_of_nest_env ~env [ outer; inner ] in
  let sites, irr_store = collect_sites inner.body in
  (not irr_store)
  &&
  (* a dependence with direction (< on outer, > on inner) blocks the
     interchange; enumerate small distances with all variables shared once
     the distances are folded into the subscript *)
  let shared = List.map fst ranges in
  let bound = 6 in
  let bad = ref false in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if String.equal a.s_array b.s_array && (a.s_store || b.s_store) then
            for dj = 1 to bound do
              for di = -bound to -1 do
                let idx_b' =
                  Affine.shift (Affine.shift b.s_index outer.var dj) inner.var di
                in
                let eq =
                  equation ~ranges ~shared ~target:"$none" ~d:0 a.s_index idx_b'
                in
                if solvable eq then bad := true
              done
            done)
        sites)
    sites;
  not !bad
