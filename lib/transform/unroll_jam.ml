open Memclust_ir
open Ast

type error = Not_unrollable of string | Illegal of string

let pp_error ppf = function
  | Not_unrollable m -> Format.fprintf ppf "not unrollable: %s" m
  | Illegal m -> Format.fprintf ppf "illegal: %s" m

(* ------------------------------------------------------------------ *)
(* Scalar privatizability                                              *)
(* ------------------------------------------------------------------ *)

(* First dynamic access to each scalar in a pre-order walk: a scalar whose
   first access is a write is privatizable (each unrolled copy can own a
   renamed instance). *)
let first_accesses stmts =
  let first : (string, [ `Read | `Write ]) Hashtbl.t = Hashtbl.create 8 in
  let note v kind = if not (Hashtbl.mem first v) then Hashtbl.add first v kind in
  let rec expr e =
    match e with
    | Const _ | Ivar _ -> ()
    | Scalar v -> note v `Read
    | Load r -> ref_ r
    | Unop (_, a) -> expr a
    | Binop (_, a, b) ->
        expr a;
        expr b
  and ref_ r =
    match r.target with
    | Direct _ -> ()
    | Indirect { index; _ } -> expr index
    | Field { ptr; _ } -> expr ptr
  in
  let rec stmt s =
    match s with
    | Assign (Lscalar v, e) ->
        expr e;
        note v `Write
    | Assign (Lmem r, e) ->
        expr e;
        ref_ r
    | Use e -> expr e
    | Barrier -> ()
    | Prefetch r -> ref_ r
    | If (c, t, e) ->
        expr c;
        List.iter stmt t;
        List.iter stmt e
    | Loop l -> List.iter stmt l.body
    | Chase c ->
        expr c.init;
        note c.cvar `Write;
        List.iter stmt c.cbody
  in
  List.iter stmt stmts;
  first

let scalars_privatizable (l : loop) =
  let first = first_accesses l.body in
  let written = Program.scalars_written l.body in
  List.for_all (fun v -> Hashtbl.find_opt first v = Some `Write) written

(* ------------------------------------------------------------------ *)
(* Jamming                                                             *)
(* ------------------------------------------------------------------ *)

let null_ptr = Const (Vptr 0)

let advance_stmt region cvar next_field =
  Assign
    ( Lscalar cvar,
      Load { ref_id = 0; target = Field { region; ptr = Scalar cvar; field = next_field } }
    )

exception Jam_fail of string

(* Fuse the copies' statement lists position by position. *)
let rec jam (copies : stmt list list) : stmt list =
  match copies with
  | [] -> []
  | first :: _ ->
      List.concat
        (List.mapi (fun pos _ -> jam_at (List.map (fun c -> List.nth c pos) copies)) first)

and jam_at (stmts : stmt list) : stmt list =
  match stmts with
  | Loop l0 :: _ ->
      let compatible =
        List.for_all
          (function
            | Loop l ->
                String.equal l.var l0.var && Affine.equal l.lo l0.lo
                && Affine.equal l.hi l0.hi && l.step = l0.step
            | _ -> false)
          stmts
      in
      if compatible then begin
        let bodies = List.map (function Loop l -> l.body | _ -> assert false) stmts in
        [ Loop { l0 with body = jam bodies } ]
      end
      else stmts (* unroll without fusing this inner loop *)
  | Chase _ :: rest when List.for_all (function Chase _ -> true | _ -> false) rest
    ->
      jam_chases (List.map (function Chase c -> c | _ -> assert false) stmts)
  | _ -> stmts

and jam_chases (chases : chase list) : stmt list =
  match chases with
  | [] -> []
  | c0 :: others ->
      let same_region = List.for_all (fun c -> String.equal c.cregion c0.cregion) others in
      if not same_region then raise (Jam_fail "chases over different regions");
      let equal_counts =
        match c0.count with
        | Some k -> List.for_all (fun c -> c.count = Some k) others
        | None -> false
      in
      let null_terminated = List.for_all (fun c -> c.count = None) (c0 :: others) in
      if not (equal_counts || null_terminated) then
        raise (Jam_fail "chase iteration counts differ between copies");
      (* bind the extra chains' cursors before the fused loop *)
      let pre = List.map (fun c -> Assign (Lscalar c.cvar, c.init)) others in
      let advance c = advance_stmt c.cregion c.cvar c.next_field in
      let extra_blocks =
        List.map
          (fun c ->
            let block = c.cbody @ [ advance c ] in
            if equal_counts then block
            else [ If (Binop (Eq, Scalar c.cvar, null_ptr), [], block) ])
          others
      in
      let fused =
        Chase { c0 with cbody = c0.cbody @ List.concat extra_blocks }
      in
      let postludes =
        if equal_counts then []
        else
          List.map
            (fun c -> Chase { c with init = Scalar c.cvar; count = None })
            others
      in
      pre @ [ fused ] @ postludes

(* ------------------------------------------------------------------ *)
(* The transformation                                                  *)
(* ------------------------------------------------------------------ *)

let chase_cvars stmts =
  let acc = ref [] in
  let rec walk s =
    match s with
    | Chase c ->
        acc := c.cvar :: !acc;
        List.iter walk c.cbody
    | Loop l -> List.iter walk l.body
    | If (_, t, e) ->
        List.iter walk t;
        List.iter walk e
    | Assign _ | Use _ | Barrier | Prefetch _ -> ()
  in
  List.iter walk stmts;
  !acc

let const_bounds ~params (l : loop) =
  let env v =
    match List.assoc_opt v params with Some k -> k | None -> raise Exit
  in
  match (Affine.eval env l.lo, Affine.eval env l.hi) with
  | lo, hi -> Some (lo, hi)
  | exception Exit -> None

(* Every invocation stamps its renamed scalars uniquely, so repeated
   passes over already-transformed code (an outer unroll-and-jam after an
   inner one) can never collide: "wr" -> "wr__u3_1" never equals an
   earlier pass's "wr__u2_1". *)
let stamp_counter = Atomic.make 0 (* domain-safe: experiments transform in parallel *)

let apply ?(params = []) ?(outer_ranges = []) ?(interchange_postlude = true)
    ~factor (l : loop) =
  if factor <= 1 then Ok [ Loop l ]
  else if not (scalars_privatizable l) then
    Error
      (Not_unrollable
         "a scalar written in the body is read before written (loop-carried)")
  else if not (Legality.unroll_jam_legal ~params ~outer_ranges ~target:l ~factor)
  then Error (Illegal "a data dependence is carried by the unrolled loop")
  else begin
    match const_bounds ~params l with
    | None ->
        Error (Not_unrollable "loop bounds are not constant under the parameters")
    | Some (lo, hi) ->
        let s = l.step in
        let count = if hi > lo then (hi - lo + s - 1) / s else 0 in
        if count < factor then
          Error (Not_unrollable "fewer iterations than the unroll factor")
        else begin
          let to_rename =
            List.sort_uniq String.compare
              (Program.scalars_written l.body @ chase_cvars l.body)
          in
          let stamp = Atomic.fetch_and_add stamp_counter 1 + 1 in
          let copy k =
            let shift st = Subst.shift_var l.var (k * s) st in
            let rename st =
              if k = 0 then st
              else
                Subst.rename_scalars
                  (fun v ->
                    if List.mem v to_rename then
                      Printf.sprintf "%s__u%d_%d" v stamp k
                    else v)
                  st
            in
            List.map (fun st -> rename (shift st)) l.body
          in
          let copies = List.init factor copy in
          match jam copies with
          | exception Jam_fail msg -> Error (Not_unrollable msg)
          | jammed ->
              let main =
                Loop
                  {
                    l with
                    step = s * factor;
                    hi = Affine.sub l.hi (Affine.const ((factor - 1) * s));
                    body = jammed;
                  }
              in
              let rem = count mod factor in
              let postlude =
                if rem = 0 then []
                else begin
                  let start = lo + ((count - rem) * s) in
                  let post = { l with lo = Affine.const start } in
                  let interchanged =
                    if not interchange_postlude then None
                    else
                      match post.body with
                      | [ Loop inner ]
                        when (not (List.mem l.var (Affine.vars inner.lo)))
                             && (not (List.mem l.var (Affine.vars inner.hi)))
                             && Legality.interchange_legal ~params ~outer_ranges
                                  ~outer:post ~inner ->
                          Some
                            (Loop
                               {
                                 inner with
                                 parallel = false;
                                 body =
                                   [ Loop { post with parallel = false; body = inner.body } ];
                               })
                      | _ -> None
                  in
                  match interchanged with
                  | Some st -> [ st ]
                  | None -> [ Loop post ]
                end
              in
              Ok (main :: postlude)
        end
  end
