type t = {
  mutable busy : float;
  mutable cpu_stall : float;
  mutable data_stall : float;
  mutable sync_stall : float;
}

let create () = { busy = 0.0; cpu_stall = 0.0; data_stall = 0.0; sync_stall = 0.0 }

let total t = t.busy +. t.cpu_stall +. t.data_stall +. t.sync_stall

let cpu t = t.busy +. t.cpu_stall

let add t u =
  t.busy <- t.busy +. u.busy;
  t.cpu_stall <- t.cpu_stall +. u.cpu_stall;
  t.data_stall <- t.data_stall +. u.data_stall;
  t.sync_stall <- t.sync_stall +. u.sync_stall

let scale t k =
  {
    busy = t.busy *. k;
    cpu_stall = t.cpu_stall *. k;
    data_stall = t.data_stall *. k;
    sync_stall = t.sync_stall *. k;
  }

let pp ppf t =
  Format.fprintf ppf "busy %.0f / cpu-stall %.0f / data %.0f / sync %.0f" t.busy
    t.cpu_stall t.data_stall t.sync_stall

(* ------------------------------------------------------------------ *)
(* Per-level demand-load attribution (replaces the old hardcoded L1/L2
   counter pair: one row per hierarchy level, however deep the stack). *)

type level_stat = {
  lv_name : string;
  mutable lv_hits : int;
  mutable lv_misses : int;
}

let level_create name = { lv_name = name; lv_hits = 0; lv_misses = 0 }

let level_add t u =
  t.lv_hits <- t.lv_hits + u.lv_hits;
  t.lv_misses <- t.lv_misses + u.lv_misses

let pp_levels ppf ls =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    (fun ppf l ->
      Format.fprintf ppf "%s %d hit / %d miss" l.lv_name l.lv_hits l.lv_misses)
    ppf (Array.to_list ls)
