open Memclust_util
open Memclust_codegen

type shared = {
  h : Hierarchy.shared;
  reached : int array;
}

(* Per-cycle statistic deltas of the last step, replayed when the machine
   skips over provably-identical stall cycles. Kept in their own all-float
   record: float fields of a mixed record are boxed, and these four are
   written on every executed cycle. *)
type deltas = {
  mutable d_busy : float;
  mutable d_cpu_stall : float;
  mutable d_data_stall : float;
  mutable d_sync_stall : float;
}

type t = {
  proc : int;
  trace : Trace.t;
  sh : shared;
  h : Hierarchy.t;  (* this processor's cache/MSHR stack *)
  ring_mask : int;
      (* ring capacity - 1; capacity is the next power of two >= cfg.window
         so the per-slot index reduction is a mask, not a division (the
         issue scan does it billions of times). Any window-length index
         range still maps to distinct slots. *)
  (* reorder buffer: ring over trace indices [head, tail) *)
  state : int array;  (* 0 = waiting, 1 = scheduled/completed *)
  done_at : int array;
  mutable head : int;
  mutable tail : int;
  (* the unissued in-window instructions as a singly-linked list in trace
     order ([pend_next] is indexed by slot): the issue scan visits only
     instructions that can still issue instead of walking the whole
     window past already-issued entries *)
  mutable pend_head : int;  (* trace index, -1 = none *)
  mutable pend_last : int;
  pend_next : int array;
  (* completion times of issued-but-unretired instructions; [done_at] is
     written once per issued instruction and retirement requires
     [done_at <= now], so entries with a time in the past are stale and
     popped lazily — the heap minimum beyond [now] is exactly what the
     old per-window scan in [next_event] computed *)
  done_heap : unit Pqueue.t;
  (* sleeping entries: blocked instructions whose earliest possible issue
     cycle is known (their blocking dependence is issued with a future
     [done_at], or is itself asleep until a known time). They are removed
     from the pending list and re-merged when their wake time arrives, so
     the per-cycle scan never revisits them. [sleep_until] is the per-slot
     wake time (stale, <= now, when not sleeping). Wake times are always
     [done_at] values of issued-unretired instructions, so [next_event]'s
     completion heap already bounds every wake — sleeping never lets the
     event loop skip past a cycle where an instruction could issue. *)
  wake_heap : int Pqueue.t;
  sleep_until : int array;
  mutable branches : int;
  (* write buffer *)
  wpending : int Queue.t;
  winflight : unit Pqueue.t;  (* completion times of draining writes *)
  wstalled : bool array;  (* per-slot: store already counted a wbuf-full stall *)
  blocker : int array;
      (* per-slot: a dependence token that failed [dep_done] the last time
         the issue scan considered the slot, or -1. [dep_done] is monotone
         in [now] and [head], so while the cached token is still pending
         the whole (side-effect-free) issue check can be skipped. *)
  has_barriers : bool;
      (* every instruction kind except Barrier_op needs a functional unit
         to issue, so barrier-free traces can stop the issue scan as soon
         as all units are claimed *)
  (* event-driven support: did the last [step] change simulation state
     (as opposed to only accumulating per-cycle statistics)? *)
  mutable progressed : bool;
  fd : deltas;
  (* retry-cycle statistic deltas of the last step, replayed alongside
     [fd]: per-level demand-miss counts and MSHR-full rejections (a load
     rejected on full MSHRs re-walks — and re-misses — every level each
     retry cycle). [lvl_snap] is the scratch snapshot of the hierarchy's
     live counters at step entry. *)
  d_level_miss : int array;
  lvl_snap : int array;
  mutable d_mshr_full : int;
  (* statistics (pipeline-owned; memory-side counters live in [h]) *)
  bd : Breakdown.t;
  mutable retired_count : int;
  mutable wbuf_full_events : int;
}

let make_shared cfg ~nprocs ~home =
  {
    h = Hierarchy.make_shared cfg ~nprocs ~home;
    reached = Array.make nprocs 0;
  }

let cfg_of t = t.sh.h.Hierarchy.cfg

let create (sh : shared) ~proc trace =
  let cfg = sh.h.Hierarchy.cfg in
  let cap =
    let rec up n = if n >= cfg.Config.window then n else up (n * 2) in
    up 1
  in
  let h = Hierarchy.create sh.h ~proc in
  let nlevels = Hierarchy.depth h in
  {
    proc;
    trace;
    sh;
    h;
    ring_mask = cap - 1;
    state = Array.make cap 0;
    done_at = Array.make cap 0;
    head = 0;
    tail = 0;
    pend_head = -1;
    pend_last = -1;
    pend_next = Array.make cap (-1);
    done_heap = Pqueue.create ();
    wake_heap = Pqueue.create ();
    sleep_until = Array.make cap (-1);
    branches = 0;
    wpending = Queue.create ();
    winflight = Pqueue.create ();
    wstalled = Array.make cap false;
    blocker = Array.make cap (-1);
    has_barriers =
      (let n = Trace.length trace in
       let rec scan i =
         i < n
         && (match Trace.kind trace i with
            | Trace.Barrier_op -> true
            | _ -> scan (i + 1))
       in
       scan 0);
    progressed = false;
    fd = { d_busy = 0.0; d_cpu_stall = 0.0; d_data_stall = 0.0; d_sync_stall = 0.0 };
    d_level_miss = Array.make nlevels 0;
    lvl_snap = Array.make nlevels 0;
    d_mshr_full = 0;
    bd = Breakdown.create ();
    retired_count = 0;
    wbuf_full_events = 0;
  }

let slot t i = i land t.ring_mask

(* ------------------------------------------------------------------ *)

let cleanup_mshrs t ~now =
  if Hierarchy.cleanup t.h ~now then t.progressed <- true

let drain_wbuf t ~now =
  while Pqueue.min_prio t.winflight <= now do
    Pqueue.drop_min t.winflight;
    t.progressed <- true
  done;
  if not (Queue.is_empty t.wpending) then begin
    let addr = Queue.peek t.wpending in
    match Hierarchy.write t.h ~now addr with
    | Some completion ->
        ignore (Queue.pop t.wpending);
        Pqueue.push t.winflight completion ();
        t.progressed <- true
    | None -> ()
  end

let wbuf_occupancy t = Queue.length t.wpending + Pqueue.length t.winflight

(* [done_at] is written once per issued instruction and retirement
   requires [done_at <= now], so heap entries at or before [now] can
   never again be the "earliest future completion": drop them. *)
let drain_done t ~now =
  while Pqueue.min_prio t.done_heap <= now do
    Pqueue.drop_min t.done_heap
  done

let barrier_satisfied t aux =
  let ok = ref true in
  Array.iter (fun r -> if r < aux then ok := false) t.sh.reached;
  !ok

let retire t ~now =
  let cfg = cfg_of t in
  let width = cfg.Config.retire_width in
  let r = ref 0 in
  let stall_category = ref None in
  let continue_ = ref true in
  while !continue_ && !r < width && t.head < t.tail do
    let i = t.head in
    let s = slot t i in
    match Trace.kind t.trace i with
    | Trace.Barrier_op ->
        let b = Trace.aux t.trace i in
        if t.sh.reached.(t.proc) < b then begin
          t.sh.reached.(t.proc) <- b;
          (* shared state changed: other processors may now pass the
             barrier, so this cycle cannot be skipped over *)
          t.progressed <- true
        end;
        if barrier_satisfied t b then begin
          t.head <- i + 1;
          t.retired_count <- t.retired_count + 1;
          t.progressed <- true;
          incr r
        end
        else begin
          stall_category := Some `Sync;
          continue_ := false
        end
    | kind ->
        if t.state.(s) = 1 && t.done_at.(s) <= now then begin
          t.head <- i + 1;
          t.retired_count <- t.retired_count + 1;
          t.progressed <- true;
          incr r
        end
        else begin
          stall_category :=
            Some
              (match kind with
              | Trace.Load | Trace.Store -> `Data
              | Trace.Int_op | Trace.Fp_op | Trace.Branch | Trace.Prefetch_op ->
                  `Cpu
              | Trace.Barrier_op -> `Sync);
          continue_ := false
        end
  done;
  let busy_frac = float_of_int !r /. float_of_int width in
  t.bd.Breakdown.busy <- t.bd.Breakdown.busy +. busy_frac;
  let stall_frac = 1.0 -. busy_frac in
  if stall_frac > 0.0 then begin
    match !stall_category with
    | Some `Data -> t.bd.Breakdown.data_stall <- t.bd.Breakdown.data_stall +. stall_frac
    | Some `Sync -> t.bd.Breakdown.sync_stall <- t.bd.Breakdown.sync_stall +. stall_frac
    | Some `Cpu | None ->
        t.bd.Breakdown.cpu_stall <- t.bd.Breakdown.cpu_stall +. stall_frac
  end

let dep_done t ~now d =
  d < 0 || d < t.head
  ||
  let s = slot t d in
  t.state.(s) = 1 && t.done_at.(s) <= now

(* Move every sleeper whose wake time has arrived back into the pending
   list, preserving trace order (popped indices are sorted, then merged
   into the — also sorted — list in one pass). From its wake cycle on, an
   entry is re-examined every executed cycle exactly as if it had never
   left the list. *)
let wake_sleepers t ~now =
  let batch = ref [] in
  while Pqueue.min_prio t.wake_heap <= now do
    let i = Pqueue.min_value t.wake_heap in
    Pqueue.drop_min t.wake_heap;
    if i >= t.head then batch := i :: !batch
  done;
  match !batch with
  | [] -> ()
  | b ->
      let sorted = match b with [ _ ] -> b | _ -> List.sort_uniq compare b in
      let prev = ref (-1) in
      let cur = ref t.pend_head in
      List.iter
        (fun i ->
          while !cur >= 0 && !cur < i do
            prev := !cur;
            cur := t.pend_next.(slot t !cur)
          done;
          if !cur <> i then begin
            t.pend_next.(slot t i) <- !cur;
            if !prev < 0 then t.pend_head <- i
            else t.pend_next.(slot t !prev) <- i;
            if !cur < 0 then t.pend_last <- i;
            prev := i
          end)
        sorted

(* [i] (slot [s]) is blocked on dependence [d], which just failed
   [dep_done]. If [d] has a known earliest-completion time in the future
   ([d] is issued, or itself asleep until then), [i] cannot issue before
   that cycle either — [d]'s [done_at] is only assigned when it issues —
   so park [i] until then. Returns true when [i] went to sleep. *)
(* Sleeping is only worth its heap-and-merge overhead when the wait is
   long (a memory-latency block); an instruction blocked a few cycles on
   an ALU/FPU result is cheaper to re-check in place, so it stays in the
   list. *)
let sleep_horizon = 32

let try_sleep t ~now i s d =
  let sd = slot t d in
  let w =
    if t.state.(sd) = 1 then t.done_at.(sd) else t.sleep_until.(sd)
  in
  if w > now + sleep_horizon then begin
    t.sleep_until.(s) <- w;
    Pqueue.push t.wake_heap w i;
    true
  end
  else false

(* The scan walks the pending list — exactly the [state = 0] entries of
   the old whole-window scan, in the same (trace) order; already-issued
   entries were side-effect-free no-ops there, so skipping them changes
   nothing, and skipped sleepers provably fail their dependence check
   until they return. An instruction that issues is unlinked; an entry
   whose trace index dropped below [head] is a barrier that retired
   without issuing (the only kind that can); retirement is in-order, so
   such entries form a prefix of the list and are dropped before the scan
   — which also keeps [fetch]'s slot reuse from clobbering a live link. *)
let issue t ~now =
  while t.pend_head >= 0 && t.pend_head < t.head do
    t.pend_head <- t.pend_next.(slot t t.pend_head)
  done;
  if t.pend_head < 0 then t.pend_last <- -1;
  wake_sleepers t ~now;
  let cfg = cfg_of t in
  let issue_width = cfg.Config.issue_width in
  let alus = cfg.Config.alus
  and fpus = cfg.Config.fpus
  and addr_units = cfg.Config.addr_units in
  let no_barriers = not t.has_barriers in
  let issued = ref 0 in
  let alu = ref 0 and fpu = ref 0 and mem_u = ref 0 in
  let mark_issued s =
    t.state.(s) <- 1;
    t.progressed <- true;
    (* completion feeds [next_event]; stale entries are drained in [step] *)
    Pqueue.push t.done_heap t.done_at.(s) ();
    incr issued
  in
  let prev = ref (-1) in
  let cur = ref t.pend_head in
  while
    !cur >= 0
    && !issued < issue_width
    && not (no_barriers && !alu >= alus && !fpu >= fpus && !mem_u >= addr_units)
  do
    let i = !cur in
    let s = slot t i in
    let next = t.pend_next.(s) in
    let before = !issued in
    let remove = ref false in
    (* [dep_done] is monotone, so an instruction whose cached blocking
       dependence is still pending cannot issue; skip it with a single
       check (everything skipped is side-effect-free) *)
    let b = t.blocker.(s) in
    (if b >= 0 && not (dep_done t ~now b) then
       (if try_sleep t ~now i s b then remove := true)
     else begin
       if b >= 0 then t.blocker.(s) <- -1;
       (* check the (cheap) functional-unit constraint before the
          dependence lookups: a unit-starved kind can never issue,
          whatever its dependences, and none of these checks has side
          effects *)
       let kind = Trace.kind t.trace i in
       let unit_free =
         match kind with
         | Trace.Int_op | Trace.Branch -> !alu < alus
         | Trace.Fp_op -> !fpu < fpus
         | Trace.Load | Trace.Store | Trace.Prefetch_op -> !mem_u < addr_units
         | Trace.Barrier_op -> true
       in
       if unit_free then begin
         let d1 = Trace.dep1 t.trace i in
         if not (dep_done t ~now d1) then begin
           t.blocker.(s) <- d1;
           if try_sleep t ~now i s d1 then remove := true
         end
         else
           let d2 = Trace.dep2 t.trace i in
           if not (dep_done t ~now d2) then begin
             t.blocker.(s) <- d2;
             if try_sleep t ~now i s d2 then remove := true
           end
           else
             match kind with
             | Trace.Int_op ->
                 incr alu;
                 t.done_at.(s) <- now + 1;
                 mark_issued s
             | Trace.Branch ->
                 incr alu;
                 t.done_at.(s) <- now + 1;
                 t.branches <- max 0 (t.branches - 1);
                 mark_issued s
             | Trace.Fp_op ->
                 incr fpu;
                 t.done_at.(s) <- now + Trace.aux t.trace i;
                 mark_issued s
             | Trace.Load -> (
                 match Hierarchy.read t.h ~now (Trace.aux t.trace i) with
                 | Some ready ->
                     incr mem_u;
                     t.done_at.(s) <- ready;
                     mark_issued s
                 | None -> () (* MSHRs full: retry next cycle *))
             | Trace.Store ->
                 if wbuf_occupancy t >= cfg.Config.write_buffer then begin
                   (* count each store that stalls on a full write buffer
                      once, not once per retry cycle *)
                   if not t.wstalled.(s) then begin
                     t.wstalled.(s) <- true;
                     t.wbuf_full_events <- t.wbuf_full_events + 1
                   end
                 end
                 else begin
                   incr mem_u;
                   Queue.push (Trace.aux t.trace i) t.wpending;
                   t.done_at.(s) <- now;
                   mark_issued s
                 end
             | Trace.Prefetch_op ->
                 incr mem_u;
                 Hierarchy.prefetch t.h ~now (Trace.aux t.trace i);
                 t.done_at.(s) <- now;
                 mark_issued s
             | Trace.Barrier_op ->
                 t.done_at.(s) <- now;
                 t.state.(s) <- 1;
                 t.progressed <- true;
                 remove := true
       end
     end);
    if !issued > before then remove := true;
    if !remove then begin
      if !prev < 0 then t.pend_head <- next
      else t.pend_next.(slot t !prev) <- next;
      if next < 0 then t.pend_last <- !prev
    end
    else prev := i;
    cur := next
  done

let fetch t =
  let cfg = cfg_of t in
  let len = Trace.length t.trace in
  let fetched = ref 0 in
  while
    t.tail < len
    && t.tail - t.head < cfg.Config.window
    && !fetched < cfg.Config.fetch_width
    && t.branches < cfg.Config.max_branches
  do
    let s = slot t t.tail in
    t.state.(s) <- 0;
    t.done_at.(s) <- 0;
    t.wstalled.(s) <- false;
    t.blocker.(s) <- -1;
    t.sleep_until.(s) <- -1;
    (* append to the pending list; [issue] ran earlier this cycle and
       dropped every retired entry, so no live link uses this slot *)
    t.pend_next.(s) <- -1;
    if t.pend_last < 0 then t.pend_head <- t.tail
    else t.pend_next.(slot t t.pend_last) <- t.tail;
    t.pend_last <- t.tail;
    (match Trace.kind t.trace t.tail with
    | Trace.Branch -> t.branches <- t.branches + 1
    | _ -> ());
    t.tail <- t.tail + 1;
    t.progressed <- true;
    incr fetched
  done

let finished t =
  t.head >= Trace.length t.trace
  && Queue.is_empty t.wpending
  && Pqueue.is_empty t.winflight

let step t ~now =
  t.progressed <- false;
  let busy0 = t.bd.Breakdown.busy
  and cpu0 = t.bd.Breakdown.cpu_stall
  and data0 = t.bd.Breakdown.data_stall
  and sync0 = t.bd.Breakdown.sync_stall
  and mf0 = Hierarchy.mshr_full_events t.h in
  let live_misses = Hierarchy.level_miss_counts t.h in
  Array.blit live_misses 0 t.lvl_snap 0 (Array.length t.lvl_snap);
  cleanup_mshrs t ~now;
  drain_done t ~now;
  drain_wbuf t ~now;
  if t.head < Trace.length t.trace then retire t ~now;
  issue t ~now;
  fetch t;
  t.fd.d_busy <- t.bd.Breakdown.busy -. busy0;
  t.fd.d_cpu_stall <- t.bd.Breakdown.cpu_stall -. cpu0;
  t.fd.d_data_stall <- t.bd.Breakdown.data_stall -. data0;
  t.fd.d_sync_stall <- t.bd.Breakdown.sync_stall -. sync0;
  for i = 0 to Array.length t.lvl_snap - 1 do
    t.d_level_miss.(i) <- live_misses.(i) - t.lvl_snap.(i)
  done;
  t.d_mshr_full <- Hierarchy.mshr_full_events t.h - mf0

let progressed t = t.progressed

(* A step with no progress leaves the core in a fixed point: every
   subsequent cycle up to (but excluding) the next completion event
   re-runs the identical step, whose only effects are the per-cycle
   statistic deltas recorded above. In a no-progress step those deltas
   are exact small-integer-valued floats (a stall category gets +1.0,
   busy +0.0), so multiplying instead of re-adding is bit-identical. *)
let replay_idle t ~times =
  if times > 0 then begin
    let k = float_of_int times in
    t.bd.Breakdown.busy <- t.bd.Breakdown.busy +. (t.fd.d_busy *. k);
    t.bd.Breakdown.cpu_stall <-
      t.bd.Breakdown.cpu_stall +. (t.fd.d_cpu_stall *. k);
    t.bd.Breakdown.data_stall <-
      t.bd.Breakdown.data_stall +. (t.fd.d_data_stall *. k);
    t.bd.Breakdown.sync_stall <-
      t.bd.Breakdown.sync_stall +. (t.fd.d_sync_stall *. k);
    Hierarchy.replay_retry t.h ~miss_deltas:t.d_level_miss
      ~mshr_full:t.d_mshr_full ~times
  end

(* Earliest future time any [<= now] comparison inside [step] can flip:
   an in-flight miss completing, a buffered write draining, or an issued
   instruction's result becoming available (which can unblock retire and
   dependent issues). Barrier release is not a timed event — it is
   triggered by another core's progress, which the machine loop observes
   directly. *)
let next_event t ~now =
  let ne = ref max_int in
  let consider at = if at > now && at < !ne then ne := at in
  consider (Hierarchy.next_completion t.h);
  consider (Pqueue.min_prio t.winflight);
  (* stale minima would hide the real next completion behind them *)
  drain_done t ~now;
  consider (Pqueue.min_prio t.done_heap);
  if !ne = max_int then None else Some !ne

let breakdown t = t.bd

let mshr_read_occupancy t = Hierarchy.read_occupancy t.h
let mshr_total_occupancy t = Hierarchy.total_occupancy t.h

let l2_misses t = Hierarchy.mem_misses t.h
let read_misses t = Hierarchy.read_misses t.h
let read_miss_latency_sum t = Hierarchy.read_miss_latency_sum t.h
let retired_instructions t = t.retired_count

let l1_misses t = Hierarchy.l1_misses t.h
let mshr_full_events t = Hierarchy.mshr_full_events t.h
let wbuf_full_events t = t.wbuf_full_events

let prefetches t = Hierarchy.prefetches t.h
let prefetch_misses t = Hierarchy.prefetch_misses t.h
let late_prefetches t = Hierarchy.late_prefetches t.h

let level_stats t = Hierarchy.level_stats t.h
let hierarchy_depth t = Hierarchy.depth t.h
let mshr_occupancy_by_level t = Hierarchy.mshr_occupancy_by_level t.h

(* ------------------------------------------------------------------ *)
(* Functional warming (sampled mode).

   The warm path applies only the architectural side effects of a memory
   reference — cache contents and coherence versions, via the hierarchy's
   warm entry points — with no timing, no MSHR allocation, no memory-
   system requests and no statistics, so the fast-forward legs between
   detailed windows keep the locality state the next window samples
   against. The detailed path fills caches at request time (completion
   only matters for timing), so warming an address the detailed window
   already touched is a hit and changes nothing. *)

let trace t = t.trace
let position t = t.head
let shared t = t.sh

let warm_read t addr = Hierarchy.warm_read t.h addr
let warm_write t addr = Hierarchy.warm_write t.h addr
let warm_prefetch t addr = Hierarchy.warm_read t.h addr

(* A fast-forwarded store: apply the coherence effect now, but keep the
   address queued (bounded by the buffer capacity) so the next detailed
   window opens under realistic write-buffer pressure instead of an empty
   buffer — store-bound codes are limited by the one-per-bus/bank drain
   rate, and a window that starts empty under-measures that bound.
   Re-draining an already-applied same-processor write is idempotent on
   versions, so the timed drain in the next window only adds the timing. *)
let warm_store t addr =
  warm_write t addr;
  Queue.push addr t.wpending;
  if Queue.length t.wpending > (cfg_of t).Config.write_buffer then
    ignore (Queue.pop t.wpending)

let warm_barrier t b =
  if t.sh.reached.(t.proc) < b then t.sh.reached.(t.proc) <- b

(* Functionally complete the reads the core has in flight; buffered
   stores update caches/versions as if they had drained but stay queued
   (their timed drain overlaps the next window, as it would have
   overlapped the fast-forwarded region). *)
let drain_functional t =
  Queue.iter (fun addr -> warm_write t addr) t.wpending;
  Pqueue.clear t.winflight;
  Hierarchy.reset_inflight t.h

(* Restart the core's pipeline state at trace index [at] with an empty
   window, as if everything before [at] had retired. Requires
   {!drain_functional} first (the in-flight heaps reference old slots);
   the statistics counters are left alone — in sampled mode they only
   ever feed window deltas. *)
let reposition t ~at =
  t.head <- at;
  t.tail <- at;
  t.pend_head <- -1;
  t.pend_last <- -1;
  t.branches <- 0;
  Pqueue.clear t.done_heap;
  Pqueue.clear t.wake_heap;
  Array.fill t.wstalled 0 (Array.length t.wstalled) false;
  t.progressed <- false
