open Memclust_util
open Memclust_codegen

type shared = {
  cfg : Config.t;
  mem : Memsys.t;
  versions : (int, int * int) Hashtbl.t;
  home : int -> int;
  reached : int array;
  nprocs : int;
}

type mshr_entry = {
  mutable ready : int;
  mutable has_read : bool;
  mutable has_write : bool;
  mutable prefetch_only : bool;  (* allocated by a prefetch, no demand yet *)
}

(* Per-cycle statistic deltas of the last step, replayed when the machine
   skips over provably-identical stall cycles. Kept in their own all-float
   record: float fields of a mixed record are boxed, and these four are
   written on every executed cycle. *)
type deltas = {
  mutable d_busy : float;
  mutable d_cpu_stall : float;
  mutable d_data_stall : float;
  mutable d_sync_stall : float;
}

type t = {
  proc : int;
  trace : Trace.t;
  sh : shared;
  ring_mask : int;
      (* ring capacity - 1; capacity is the next power of two >= cfg.window
         so the per-slot index reduction is a mask, not a division (the
         issue scan does it billions of times). Any window-length index
         range still maps to distinct slots. *)
  line_shift : int;  (* log2 cfg.line, or -1 when not a power of two *)
  l1 : Cache.t;
  l2 : Cache.t option;
  mshrs : (int, mshr_entry) Hashtbl.t;
  (* min-heap of MSHR completion times, kept in sync with [mshrs]: every
     allocation pushes (ready, line), cleanup pops expired entries, so no
     per-cycle fold over the table is needed *)
  mshr_expiry : int Pqueue.t;
  mutable mshr_read_occ : int;  (* entries with [has_read] *)
  (* reorder buffer: ring over trace indices [head, tail) *)
  state : int array;  (* 0 = waiting, 1 = scheduled/completed *)
  done_at : int array;
  mutable head : int;
  mutable tail : int;
  (* the unissued in-window instructions as a singly-linked list in trace
     order ([pend_next] is indexed by slot): the issue scan visits only
     instructions that can still issue instead of walking the whole
     window past already-issued entries *)
  mutable pend_head : int;  (* trace index, -1 = none *)
  mutable pend_last : int;
  pend_next : int array;
  (* completion times of issued-but-unretired instructions; [done_at] is
     written once per issued instruction and retirement requires
     [done_at <= now], so entries with a time in the past are stale and
     popped lazily — the heap minimum beyond [now] is exactly what the
     old per-window scan in [next_event] computed *)
  done_heap : unit Pqueue.t;
  (* sleeping entries: blocked instructions whose earliest possible issue
     cycle is known (their blocking dependence is issued with a future
     [done_at], or is itself asleep until a known time). They are removed
     from the pending list and re-merged when their wake time arrives, so
     the per-cycle scan never revisits them. [sleep_until] is the per-slot
     wake time (stale, <= now, when not sleeping). Wake times are always
     [done_at] values of issued-unretired instructions, so [next_event]'s
     completion heap already bounds every wake — sleeping never lets the
     event loop skip past a cycle where an instruction could issue. *)
  wake_heap : int Pqueue.t;
  sleep_until : int array;
  mutable branches : int;
  (* write buffer *)
  wpending : int Queue.t;
  winflight : unit Pqueue.t;  (* completion times of draining writes *)
  wstalled : bool array;  (* per-slot: store already counted a wbuf-full stall *)
  blocker : int array;
      (* per-slot: a dependence token that failed [dep_done] the last time
         the issue scan considered the slot, or -1. [dep_done] is monotone
         in [now] and [head], so while the cached token is still pending
         the whole (side-effect-free) issue check can be skipped. *)
  has_barriers : bool;
      (* every instruction kind except Barrier_op needs a functional unit
         to issue, so barrier-free traces can stop the issue scan as soon
         as all units are claimed *)
  (* event-driven support: did the last [step] change simulation state
     (as opposed to only accumulating per-cycle statistics)? *)
  mutable progressed : bool;
  fd : deltas;
  mutable d_l1_miss : int;
  mutable d_mshr_full : int;
  (* statistics *)
  bd : Breakdown.t;
  mutable l2_miss_count : int;
  mutable read_miss_count : int;
  mutable read_miss_lat : float;
  mutable retired_count : int;
  mutable l1_miss_count : int;
  mutable mshr_full_events : int;
  mutable wbuf_full_events : int;
  mutable prefetch_count : int;
  mutable prefetch_miss_count : int;  (* prefetches that went to memory *)
  mutable late_prefetch_count : int;  (* demand loads catching an in-flight prefetch *)
}

let make_shared cfg ~nprocs ~home =
  {
    cfg;
    mem = Memsys.create cfg ~nprocs;
    versions = Hashtbl.create 4096;
    home;
    reached = Array.make nprocs 0;
    nprocs;
  }

let create sh ~proc trace =
  let cfg = sh.cfg in
  let cap =
    let rec up n = if n >= cfg.Config.window then n else up (n * 2) in
    up 1
  in
  {
    proc;
    trace;
    sh;
    ring_mask = cap - 1;
    line_shift =
      (let l = cfg.Config.line in
       if l > 0 && l land (l - 1) = 0 then
         let rec log2 v acc = if v <= 1 then acc else log2 (v lsr 1) (acc + 1) in
         log2 l 0
       else -1);
    l1 = Cache.create ~bytes:cfg.Config.l1_bytes ~assoc:cfg.Config.l1_assoc
        ~line:cfg.Config.line;
    l2 =
      Option.map
        (fun bytes ->
          Cache.create ~bytes ~assoc:cfg.Config.l2_assoc ~line:cfg.Config.line)
        cfg.Config.l2_bytes;
    mshrs = Hashtbl.create 32;
    mshr_expiry = Pqueue.create ();
    mshr_read_occ = 0;
    state = Array.make cap 0;
    done_at = Array.make cap 0;
    head = 0;
    tail = 0;
    pend_head = -1;
    pend_last = -1;
    pend_next = Array.make cap (-1);
    done_heap = Pqueue.create ();
    wake_heap = Pqueue.create ();
    sleep_until = Array.make cap (-1);
    branches = 0;
    wpending = Queue.create ();
    winflight = Pqueue.create ();
    wstalled = Array.make cap false;
    blocker = Array.make cap (-1);
    has_barriers =
      (let n = Trace.length trace in
       let rec scan i =
         i < n
         && (match Trace.kind trace i with
            | Trace.Barrier_op -> true
            | _ -> scan (i + 1))
       in
       scan 0);
    progressed = false;
    fd = { d_busy = 0.0; d_cpu_stall = 0.0; d_data_stall = 0.0; d_sync_stall = 0.0 };
    d_l1_miss = 0;
    d_mshr_full = 0;
    bd = Breakdown.create ();
    l2_miss_count = 0;
    read_miss_count = 0;
    read_miss_lat = 0.0;
    retired_count = 0;
    l1_miss_count = 0;
    mshr_full_events = 0;
    wbuf_full_events = 0;
    prefetch_count = 0;
    prefetch_miss_count = 0;
    late_prefetch_count = 0;
  }

let slot t i = i land t.ring_mask

let line_of t addr =
  if t.line_shift >= 0 then addr lsr t.line_shift
  else addr / t.sh.cfg.Config.line

let version t line =
  match Hashtbl.find_opt t.sh.versions line with
  | Some vw -> vw
  | None -> (0, -1)

let miss_kind t ~writer ~home =
  if t.sh.nprocs = 1 then Memsys.Local
  else if writer >= 0 && writer <> t.proc then Memsys.Dirty_remote
  else if home = t.proc then Memsys.Local
  else Memsys.Remote

(* Demand load: [Some ready] or [None] when no MSHR is available. *)
let access_read t ~now addr =
  let cfg = t.sh.cfg in
  let line = line_of t addr in
  match Hashtbl.find_opt t.mshrs line with
  | Some e ->
      if e.prefetch_only then begin
        (* the prefetch launched the line but too late to hide it fully *)
        t.late_prefetch_count <- t.late_prefetch_count + 1;
        e.prefetch_only <- false
      end;
      if not e.has_read then begin
        e.has_read <- true;
        t.mshr_read_occ <- t.mshr_read_occ + 1
      end;
      Some e.ready
  | None ->
      let v, w = version t line in
      if Cache.lookup t.l1 ~version:v ~addr then Some (now + cfg.Config.l1_lat)
      else begin
        t.l1_miss_count <- t.l1_miss_count + 1;
        let l2_hit =
          match t.l2 with
          | Some l2 when Cache.lookup l2 ~version:v ~addr ->
              Cache.fill t.l1 ~version:v ~addr;
              true
          | _ -> false
        in
        if l2_hit then Some (now + cfg.Config.l2_lat)
        else if Hashtbl.length t.mshrs >= cfg.Config.mshrs then begin
          t.mshr_full_events <- t.mshr_full_events + 1;
          None
        end
        else begin
          let home = t.sh.home addr in
          let kind = miss_kind t ~writer:w ~home in
          let ready = Memsys.request t.sh.mem ~proc:t.proc ~home ~kind ~line ~now in
          Hashtbl.add t.mshrs line
            { ready; has_read = true; has_write = false; prefetch_only = false };
          Pqueue.push t.mshr_expiry ready line;
          t.mshr_read_occ <- t.mshr_read_occ + 1;
          Cache.fill t.l1 ~version:v ~addr;
          Option.iter (fun l2 -> Cache.fill l2 ~version:v ~addr) t.l2;
          t.l2_miss_count <- t.l2_miss_count + 1;
          t.read_miss_count <- t.read_miss_count + 1;
          t.read_miss_lat <- t.read_miss_lat +. float_of_int (ready - now);
          Some ready
        end
      end

(* Write-buffer drain access (write-allocate). *)
let access_write t ~now addr =
  let cfg = t.sh.cfg in
  let line = line_of t addr in
  let v, w = version t line in
  (* coherence: a write by a new owner invalidates all other copies *)
  let v' = if w <> t.proc && w >= 0 then v + 1 else v in
  let commit () = Hashtbl.replace t.sh.versions line (v', t.proc) in
  match Hashtbl.find_opt t.mshrs line with
  | Some e ->
      e.has_write <- true;
      commit ();
      Cache.fill t.l1 ~version:v' ~addr;
      Option.iter (fun l2 -> Cache.fill l2 ~version:v' ~addr) t.l2;
      Some e.ready
  | None ->
      let owned = w = t.proc || w < 0 in
      let l1_hit = owned && Cache.lookup t.l1 ~version:v ~addr in
      let l2_hit =
        owned
        &&
        match t.l2 with
        | Some l2 -> Cache.lookup l2 ~version:v ~addr
        | None -> false
      in
      if l1_hit || l2_hit then begin
        commit ();
        Cache.fill t.l1 ~version:v' ~addr;
        Option.iter (fun l2 -> Cache.fill l2 ~version:v' ~addr) t.l2;
        Some (now + if l1_hit then cfg.Config.l1_lat else cfg.Config.l2_lat)
      end
      else if Hashtbl.length t.mshrs >= cfg.Config.mshrs then None
      else begin
        let home = t.sh.home addr in
        let kind = miss_kind t ~writer:w ~home in
        let ready = Memsys.request t.sh.mem ~proc:t.proc ~home ~kind ~line ~now in
        Hashtbl.add t.mshrs line
          { ready; has_read = false; has_write = true; prefetch_only = false };
        Pqueue.push t.mshr_expiry ready line;
        commit ();
        Cache.fill t.l1 ~version:v' ~addr;
        Option.iter (fun l2 -> Cache.fill l2 ~version:v' ~addr) t.l2;
        t.l2_miss_count <- t.l2_miss_count + 1;
        Some ready
      end

(* Non-binding prefetch: fills the caches if it can get an MSHR, is
   dropped when the line is already present/in flight or when no MSHR is
   available (as hardware drops hint prefetches under pressure). *)
let access_prefetch t ~now addr =
  let cfg = t.sh.cfg in
  let line = line_of t addr in
  t.prefetch_count <- t.prefetch_count + 1;
  match Hashtbl.find_opt t.mshrs line with
  | Some _ -> ()
  | None ->
      let v, w = version t line in
      let l1_hit = Cache.lookup t.l1 ~version:v ~addr in
      let l2_hit =
        (not l1_hit)
        &&
        match t.l2 with
        | Some l2 when Cache.lookup l2 ~version:v ~addr ->
            Cache.fill t.l1 ~version:v ~addr;
            true
        | _ -> false
      in
      if (not l1_hit) && (not l2_hit)
         && Hashtbl.length t.mshrs < cfg.Config.mshrs
      then begin
        let home = t.sh.home addr in
        let kind = miss_kind t ~writer:w ~home in
        let ready = Memsys.request t.sh.mem ~proc:t.proc ~home ~kind ~line ~now in
        Hashtbl.add t.mshrs line
          { ready; has_read = false; has_write = false; prefetch_only = true };
        Pqueue.push t.mshr_expiry ready line;
        Cache.fill t.l1 ~version:v ~addr;
        Option.iter (fun l2 -> Cache.fill l2 ~version:v ~addr) t.l2;
        t.prefetch_miss_count <- t.prefetch_miss_count + 1
      end

(* ------------------------------------------------------------------ *)

(* [ready] is immutable after allocation, so the heap never holds stale
   priorities: popping everything with [ready <= now] removes exactly the
   entries the per-cycle fold over the table used to find. *)
let cleanup_mshrs t ~now =
  while Pqueue.min_prio t.mshr_expiry <= now do
    let line = Pqueue.min_value t.mshr_expiry in
    Pqueue.drop_min t.mshr_expiry;
    (match Hashtbl.find_opt t.mshrs line with
    | Some e ->
        if e.has_read then t.mshr_read_occ <- t.mshr_read_occ - 1;
        Hashtbl.remove t.mshrs line
    | None -> ());
    t.progressed <- true
  done

let drain_wbuf t ~now =
  while Pqueue.min_prio t.winflight <= now do
    Pqueue.drop_min t.winflight;
    t.progressed <- true
  done;
  if not (Queue.is_empty t.wpending) then begin
    let addr = Queue.peek t.wpending in
    match access_write t ~now addr with
    | Some completion ->
        ignore (Queue.pop t.wpending);
        Pqueue.push t.winflight completion ();
        t.progressed <- true
    | None -> ()
  end

let wbuf_occupancy t = Queue.length t.wpending + Pqueue.length t.winflight

(* [done_at] is written once per issued instruction and retirement
   requires [done_at <= now], so heap entries at or before [now] can
   never again be the "earliest future completion": drop them. *)
let drain_done t ~now =
  while Pqueue.min_prio t.done_heap <= now do
    Pqueue.drop_min t.done_heap
  done

let barrier_satisfied t aux =
  let ok = ref true in
  Array.iter (fun r -> if r < aux then ok := false) t.sh.reached;
  !ok

let retire t ~now =
  let cfg = t.sh.cfg in
  let width = cfg.Config.retire_width in
  let r = ref 0 in
  let stall_category = ref None in
  let continue_ = ref true in
  while !continue_ && !r < width && t.head < t.tail do
    let i = t.head in
    let s = slot t i in
    match Trace.kind t.trace i with
    | Trace.Barrier_op ->
        let b = Trace.aux t.trace i in
        if t.sh.reached.(t.proc) < b then begin
          t.sh.reached.(t.proc) <- b;
          (* shared state changed: other processors may now pass the
             barrier, so this cycle cannot be skipped over *)
          t.progressed <- true
        end;
        if barrier_satisfied t b then begin
          t.head <- i + 1;
          t.retired_count <- t.retired_count + 1;
          t.progressed <- true;
          incr r
        end
        else begin
          stall_category := Some `Sync;
          continue_ := false
        end
    | kind ->
        if t.state.(s) = 1 && t.done_at.(s) <= now then begin
          t.head <- i + 1;
          t.retired_count <- t.retired_count + 1;
          t.progressed <- true;
          incr r
        end
        else begin
          stall_category :=
            Some
              (match kind with
              | Trace.Load | Trace.Store -> `Data
              | Trace.Int_op | Trace.Fp_op | Trace.Branch | Trace.Prefetch_op ->
                  `Cpu
              | Trace.Barrier_op -> `Sync);
          continue_ := false
        end
  done;
  let busy_frac = float_of_int !r /. float_of_int width in
  t.bd.Breakdown.busy <- t.bd.Breakdown.busy +. busy_frac;
  let stall_frac = 1.0 -. busy_frac in
  if stall_frac > 0.0 then begin
    match !stall_category with
    | Some `Data -> t.bd.Breakdown.data_stall <- t.bd.Breakdown.data_stall +. stall_frac
    | Some `Sync -> t.bd.Breakdown.sync_stall <- t.bd.Breakdown.sync_stall +. stall_frac
    | Some `Cpu | None ->
        t.bd.Breakdown.cpu_stall <- t.bd.Breakdown.cpu_stall +. stall_frac
  end

let dep_done t ~now d =
  d < 0 || d < t.head
  ||
  let s = slot t d in
  t.state.(s) = 1 && t.done_at.(s) <= now

(* Move every sleeper whose wake time has arrived back into the pending
   list, preserving trace order (popped indices are sorted, then merged
   into the — also sorted — list in one pass). From its wake cycle on, an
   entry is re-examined every executed cycle exactly as if it had never
   left the list. *)
let wake_sleepers t ~now =
  let batch = ref [] in
  while Pqueue.min_prio t.wake_heap <= now do
    let i = Pqueue.min_value t.wake_heap in
    Pqueue.drop_min t.wake_heap;
    if i >= t.head then batch := i :: !batch
  done;
  match !batch with
  | [] -> ()
  | b ->
      let sorted = match b with [ _ ] -> b | _ -> List.sort_uniq compare b in
      let prev = ref (-1) in
      let cur = ref t.pend_head in
      List.iter
        (fun i ->
          while !cur >= 0 && !cur < i do
            prev := !cur;
            cur := t.pend_next.(slot t !cur)
          done;
          if !cur <> i then begin
            t.pend_next.(slot t i) <- !cur;
            if !prev < 0 then t.pend_head <- i
            else t.pend_next.(slot t !prev) <- i;
            if !cur < 0 then t.pend_last <- i;
            prev := i
          end)
        sorted

(* [i] (slot [s]) is blocked on dependence [d], which just failed
   [dep_done]. If [d] has a known earliest-completion time in the future
   ([d] is issued, or itself asleep until then), [i] cannot issue before
   that cycle either — [d]'s [done_at] is only assigned when it issues —
   so park [i] until then. Returns true when [i] went to sleep. *)
(* Sleeping is only worth its heap-and-merge overhead when the wait is
   long (a memory-latency block); an instruction blocked a few cycles on
   an ALU/FPU result is cheaper to re-check in place, so it stays in the
   list. *)
let sleep_horizon = 32

let try_sleep t ~now i s d =
  let sd = slot t d in
  let w =
    if t.state.(sd) = 1 then t.done_at.(sd) else t.sleep_until.(sd)
  in
  if w > now + sleep_horizon then begin
    t.sleep_until.(s) <- w;
    Pqueue.push t.wake_heap w i;
    true
  end
  else false

(* The scan walks the pending list — exactly the [state = 0] entries of
   the old whole-window scan, in the same (trace) order; already-issued
   entries were side-effect-free no-ops there, so skipping them changes
   nothing, and skipped sleepers provably fail their dependence check
   until they return. An instruction that issues is unlinked; an entry
   whose trace index dropped below [head] is a barrier that retired
   without issuing (the only kind that can); retirement is in-order, so
   such entries form a prefix of the list and are dropped before the scan
   — which also keeps [fetch]'s slot reuse from clobbering a live link. *)
let issue t ~now =
  while t.pend_head >= 0 && t.pend_head < t.head do
    t.pend_head <- t.pend_next.(slot t t.pend_head)
  done;
  if t.pend_head < 0 then t.pend_last <- -1;
  wake_sleepers t ~now;
  let cfg = t.sh.cfg in
  let issue_width = cfg.Config.issue_width in
  let alus = cfg.Config.alus
  and fpus = cfg.Config.fpus
  and addr_units = cfg.Config.addr_units in
  let no_barriers = not t.has_barriers in
  let issued = ref 0 in
  let alu = ref 0 and fpu = ref 0 and mem_u = ref 0 in
  let mark_issued s =
    t.state.(s) <- 1;
    t.progressed <- true;
    (* completion feeds [next_event]; stale entries are drained in [step] *)
    Pqueue.push t.done_heap t.done_at.(s) ();
    incr issued
  in
  let prev = ref (-1) in
  let cur = ref t.pend_head in
  while
    !cur >= 0
    && !issued < issue_width
    && not (no_barriers && !alu >= alus && !fpu >= fpus && !mem_u >= addr_units)
  do
    let i = !cur in
    let s = slot t i in
    let next = t.pend_next.(s) in
    let before = !issued in
    let remove = ref false in
    (* [dep_done] is monotone, so an instruction whose cached blocking
       dependence is still pending cannot issue; skip it with a single
       check (everything skipped is side-effect-free) *)
    let b = t.blocker.(s) in
    (if b >= 0 && not (dep_done t ~now b) then
       (if try_sleep t ~now i s b then remove := true)
     else begin
       if b >= 0 then t.blocker.(s) <- -1;
       (* check the (cheap) functional-unit constraint before the
          dependence lookups: a unit-starved kind can never issue,
          whatever its dependences, and none of these checks has side
          effects *)
       let kind = Trace.kind t.trace i in
       let unit_free =
         match kind with
         | Trace.Int_op | Trace.Branch -> !alu < alus
         | Trace.Fp_op -> !fpu < fpus
         | Trace.Load | Trace.Store | Trace.Prefetch_op -> !mem_u < addr_units
         | Trace.Barrier_op -> true
       in
       if unit_free then begin
         let d1 = Trace.dep1 t.trace i in
         if not (dep_done t ~now d1) then begin
           t.blocker.(s) <- d1;
           if try_sleep t ~now i s d1 then remove := true
         end
         else
           let d2 = Trace.dep2 t.trace i in
           if not (dep_done t ~now d2) then begin
             t.blocker.(s) <- d2;
             if try_sleep t ~now i s d2 then remove := true
           end
           else
             match kind with
             | Trace.Int_op ->
                 incr alu;
                 t.done_at.(s) <- now + 1;
                 mark_issued s
             | Trace.Branch ->
                 incr alu;
                 t.done_at.(s) <- now + 1;
                 t.branches <- max 0 (t.branches - 1);
                 mark_issued s
             | Trace.Fp_op ->
                 incr fpu;
                 t.done_at.(s) <- now + Trace.aux t.trace i;
                 mark_issued s
             | Trace.Load -> (
                 match access_read t ~now (Trace.aux t.trace i) with
                 | Some ready ->
                     incr mem_u;
                     t.done_at.(s) <- ready;
                     mark_issued s
                 | None -> () (* MSHRs full: retry next cycle *))
             | Trace.Store ->
                 if wbuf_occupancy t >= cfg.Config.write_buffer then begin
                   (* count each store that stalls on a full write buffer
                      once, not once per retry cycle *)
                   if not t.wstalled.(s) then begin
                     t.wstalled.(s) <- true;
                     t.wbuf_full_events <- t.wbuf_full_events + 1
                   end
                 end
                 else begin
                   incr mem_u;
                   Queue.push (Trace.aux t.trace i) t.wpending;
                   t.done_at.(s) <- now;
                   mark_issued s
                 end
             | Trace.Prefetch_op ->
                 incr mem_u;
                 access_prefetch t ~now (Trace.aux t.trace i);
                 t.done_at.(s) <- now;
                 mark_issued s
             | Trace.Barrier_op ->
                 t.done_at.(s) <- now;
                 t.state.(s) <- 1;
                 t.progressed <- true;
                 remove := true
       end
     end);
    if !issued > before then remove := true;
    if !remove then begin
      if !prev < 0 then t.pend_head <- next
      else t.pend_next.(slot t !prev) <- next;
      if next < 0 then t.pend_last <- !prev
    end
    else prev := i;
    cur := next
  done

let fetch t =
  let cfg = t.sh.cfg in
  let len = Trace.length t.trace in
  let fetched = ref 0 in
  while
    t.tail < len
    && t.tail - t.head < cfg.Config.window
    && !fetched < cfg.Config.fetch_width
    && t.branches < cfg.Config.max_branches
  do
    let s = slot t t.tail in
    t.state.(s) <- 0;
    t.done_at.(s) <- 0;
    t.wstalled.(s) <- false;
    t.blocker.(s) <- -1;
    t.sleep_until.(s) <- -1;
    (* append to the pending list; [issue] ran earlier this cycle and
       dropped every retired entry, so no live link uses this slot *)
    t.pend_next.(s) <- -1;
    if t.pend_last < 0 then t.pend_head <- t.tail
    else t.pend_next.(slot t t.pend_last) <- t.tail;
    t.pend_last <- t.tail;
    (match Trace.kind t.trace t.tail with
    | Trace.Branch -> t.branches <- t.branches + 1
    | _ -> ());
    t.tail <- t.tail + 1;
    t.progressed <- true;
    incr fetched
  done

let finished t =
  t.head >= Trace.length t.trace
  && Queue.is_empty t.wpending
  && Pqueue.is_empty t.winflight

let step t ~now =
  t.progressed <- false;
  let busy0 = t.bd.Breakdown.busy
  and cpu0 = t.bd.Breakdown.cpu_stall
  and data0 = t.bd.Breakdown.data_stall
  and sync0 = t.bd.Breakdown.sync_stall
  and l1m0 = t.l1_miss_count
  and mf0 = t.mshr_full_events in
  cleanup_mshrs t ~now;
  drain_done t ~now;
  drain_wbuf t ~now;
  if t.head < Trace.length t.trace then retire t ~now;
  issue t ~now;
  fetch t;
  t.fd.d_busy <- t.bd.Breakdown.busy -. busy0;
  t.fd.d_cpu_stall <- t.bd.Breakdown.cpu_stall -. cpu0;
  t.fd.d_data_stall <- t.bd.Breakdown.data_stall -. data0;
  t.fd.d_sync_stall <- t.bd.Breakdown.sync_stall -. sync0;
  t.d_l1_miss <- t.l1_miss_count - l1m0;
  t.d_mshr_full <- t.mshr_full_events - mf0

let progressed t = t.progressed

(* A step with no progress leaves the core in a fixed point: every
   subsequent cycle up to (but excluding) the next completion event
   re-runs the identical step, whose only effects are the per-cycle
   statistic deltas recorded above. In a no-progress step those deltas
   are exact small-integer-valued floats (a stall category gets +1.0,
   busy +0.0), so multiplying instead of re-adding is bit-identical. *)
let replay_idle t ~times =
  if times > 0 then begin
    let k = float_of_int times in
    t.bd.Breakdown.busy <- t.bd.Breakdown.busy +. (t.fd.d_busy *. k);
    t.bd.Breakdown.cpu_stall <-
      t.bd.Breakdown.cpu_stall +. (t.fd.d_cpu_stall *. k);
    t.bd.Breakdown.data_stall <-
      t.bd.Breakdown.data_stall +. (t.fd.d_data_stall *. k);
    t.bd.Breakdown.sync_stall <-
      t.bd.Breakdown.sync_stall +. (t.fd.d_sync_stall *. k);
    t.l1_miss_count <- t.l1_miss_count + (t.d_l1_miss * times);
    t.mshr_full_events <- t.mshr_full_events + (t.d_mshr_full * times)
  end

(* Earliest future time any [<= now] comparison inside [step] can flip:
   an MSHR completing, a buffered write draining, or an issued
   instruction's result becoming available (which can unblock retire and
   dependent issues). Barrier release is not a timed event — it is
   triggered by another core's progress, which the machine loop observes
   directly. *)
let next_event t ~now =
  let ne = ref max_int in
  let consider at = if at > now && at < !ne then ne := at in
  consider (Pqueue.min_prio t.mshr_expiry);
  consider (Pqueue.min_prio t.winflight);
  (* stale minima would hide the real next completion behind them *)
  drain_done t ~now;
  consider (Pqueue.min_prio t.done_heap);
  if !ne = max_int then None else Some !ne

let breakdown t = t.bd

let mshr_read_occupancy t = t.mshr_read_occ

let mshr_total_occupancy t = Hashtbl.length t.mshrs

let l2_misses t = t.l2_miss_count
let read_misses t = t.read_miss_count
let read_miss_latency_sum t = t.read_miss_lat
let retired_instructions t = t.retired_count

let l1_misses t = t.l1_miss_count
let mshr_full_events t = t.mshr_full_events
let wbuf_full_events t = t.wbuf_full_events

let prefetches t = t.prefetch_count
let prefetch_misses t = t.prefetch_miss_count
let late_prefetches t = t.late_prefetch_count

(* ------------------------------------------------------------------ *)
(* Functional warming (sampled mode).

   The warm path applies only the architectural side effects of a memory
   reference — cache contents and coherence versions — with no timing, no
   MSHR allocation, no memory-system requests and no statistics, so the
   fast-forward legs between detailed windows keep the locality state the
   next window samples against. The detailed path fills caches at request
   time (completion only matters for timing), so warming an address the
   detailed window already touched is a hit and changes nothing. *)

let trace t = t.trace
let position t = t.head
let shared t = t.sh

let warm_read t addr =
  let line = line_of t addr in
  (* the MSHR table is almost always empty here (fast-forward runs after
     a functional drain); [Hashtbl.length] is a field read, so this skips
     a hash probe per warmed reference *)
  if Hashtbl.length t.mshrs = 0 || not (Hashtbl.mem t.mshrs line) then begin
    (* uniprocessor coherence versions never move (a line's version only
       bumps when a different processor writes it), so the versions table
       probe is pure overhead there *)
    let v = if t.sh.nprocs = 1 then 0 else fst (version t line) in
    if not (Cache.lookup t.l1 ~version:v ~addr) then begin
      (match t.l2 with
      | Some l2 when Cache.lookup l2 ~version:v ~addr -> ()
      | Some l2 -> Cache.fill l2 ~version:v ~addr
      | None -> ());
      Cache.fill t.l1 ~version:v ~addr
    end
  end

let warm_write t addr =
  let line = line_of t addr in
  let v' =
    if t.sh.nprocs = 1 then 0
    else begin
      let v, w = version t line in
      let v' = if w <> t.proc && w >= 0 then v + 1 else v in
      Hashtbl.replace t.sh.versions line (v', t.proc);
      v'
    end
  in
  Cache.fill t.l1 ~version:v' ~addr;
  Option.iter (fun l2 -> Cache.fill l2 ~version:v' ~addr) t.l2

let warm_prefetch t addr = warm_read t addr

(* A fast-forwarded store: apply the coherence effect now, but keep the
   address queued (bounded by the buffer capacity) so the next detailed
   window opens under realistic write-buffer pressure instead of an empty
   buffer — store-bound codes are limited by the one-per-bus/bank drain
   rate, and a window that starts empty under-measures that bound.
   Re-draining an already-applied same-processor write is idempotent on
   versions, so the timed drain in the next window only adds the timing. *)
let warm_store t addr =
  warm_write t addr;
  Queue.push addr t.wpending;
  if Queue.length t.wpending > t.sh.cfg.Config.write_buffer then
    ignore (Queue.pop t.wpending)

let warm_barrier t b =
  if t.sh.reached.(t.proc) < b then t.sh.reached.(t.proc) <- b

(* Functionally complete the reads the core has in flight; buffered
   stores update caches/versions as if they had drained but stay queued
   (their timed drain overlaps the next window, as it would have
   overlapped the fast-forwarded region). *)
let drain_functional t =
  Queue.iter (fun addr -> warm_write t addr) t.wpending;
  Pqueue.clear t.winflight;
  Hashtbl.reset t.mshrs;
  Pqueue.clear t.mshr_expiry;
  t.mshr_read_occ <- 0

(* Restart the core's pipeline state at trace index [at] with an empty
   window, as if everything before [at] had retired. Requires
   {!drain_functional} first (the in-flight heaps reference old slots);
   the statistics counters are left alone — in sampled mode they only
   ever feed window deltas. *)
let reposition t ~at =
  t.head <- at;
  t.tail <- at;
  t.pend_head <- -1;
  t.pend_last <- -1;
  t.branches <- 0;
  Pqueue.clear t.done_heap;
  Pqueue.clear t.wake_heap;
  Array.fill t.wstalled 0 (Array.length t.wstalled) false;
  t.progressed <- false
