open Memclust_util
open Memclust_codegen

type result = {
  cycles : int;
  breakdown : Breakdown.t;
  per_proc : Breakdown.t array;
  read_mshr_hist : Stats.Histogram.t;
  total_mshr_hist : Stats.Histogram.t;
  l2_misses : int;
  read_misses : int;
  l1_misses : int;
  mshr_full_events : int;
  wbuf_full_events : int;
  prefetches : int;
  prefetch_misses : int;
  late_prefetches : int;
  avg_read_miss_latency : float;
  bus_utilization : float;
  bank_utilization : float;
  instructions : int;
}

let ns_per_cycle (cfg : Config.t) = 1000.0 /. float_of_int cfg.Config.clock_mhz

type mode = Cycle | Event

let mode_of_string s =
  match String.lowercase_ascii s with
  | "cycle" -> Some Cycle
  | "event" -> Some Event
  | _ -> None

let default_mode () =
  match Sys.getenv_opt "MEMCLUST_SIM_MODE" with
  | None -> Event
  | Some s -> (
      match mode_of_string s with
      | Some m -> m
      | None ->
          invalid_arg
            (Printf.sprintf
               "MEMCLUST_SIM_MODE: expected \"cycle\" or \"event\", got %S" s))

let run ?(max_cycles = 400_000_000) ?mode (cfg : Config.t) ~home
    (lower : Lower.t) =
  let mode = match mode with Some m -> m | None -> default_mode () in
  let nprocs = Array.length lower.Lower.traces in
  let sh = Core.make_shared cfg ~nprocs ~home in
  let procs =
    Array.mapi (fun p trace -> Core.create sh ~proc:p trace) lower.Lower.traces
  in
  let read_hist = Stats.Histogram.create (cfg.Config.mshrs + 1) in
  let total_hist = Stats.Histogram.create (cfg.Config.mshrs + 1) in
  let cycle = ref 0 in
  let running = ref true in
  while !running do
    if !cycle > max_cycles then
      failwith
        (Printf.sprintf "Machine.run: exceeded %d cycles (deadlock?)" max_cycles);
    running := false;
    let any_progress = ref false in
    for p = 0 to nprocs - 1 do
      if not (Core.finished procs.(p)) then begin
        Core.step procs.(p) ~now:!cycle;
        if Core.progressed procs.(p) then any_progress := true;
        if not (Core.finished procs.(p)) then running := true
      end
      else begin
        (* finished early: waiting for the others *)
        let bd = Core.breakdown procs.(p) in
        bd.Breakdown.sync_stall <- bd.Breakdown.sync_stall +. 1.0
      end;
      Stats.Histogram.add read_hist (Core.mshr_read_occupancy procs.(p));
      Stats.Histogram.add total_hist (Core.mshr_total_occupancy procs.(p))
    done;
    if !running then begin
      match mode with
      | Cycle -> incr cycle
      | Event when !any_progress -> incr cycle
      | Event -> (
          (* No core changed state this cycle: every cycle up to the next
             completion event repeats the exact same stalled step. Jump
             there, replaying the per-cycle statistics (stall attribution,
             retry counters, MSHR-occupancy samples) for the skipped
             cycles so results stay bit-identical to the cycle loop. *)
          let next = ref max_int in
          for p = 0 to nprocs - 1 do
            if not (Core.finished procs.(p)) then
              match Core.next_event procs.(p) ~now:!cycle with
              | Some e when e < !next -> next := e
              | _ -> ()
          done;
          match !next with
          | n when n = max_int ->
              (* nothing pending anywhere: a genuine deadlock; trip the
                 same guard the cycle loop eventually hits *)
              cycle := max_cycles + 1
          | n ->
              let skip = n - !cycle - 1 in
              if skip > 0 then begin
                let w = float_of_int skip in
                for p = 0 to nprocs - 1 do
                  if Core.finished procs.(p) then begin
                    let bd = Core.breakdown procs.(p) in
                    bd.Breakdown.sync_stall <- bd.Breakdown.sync_stall +. w
                  end
                  else Core.replay_idle procs.(p) ~times:skip;
                  Stats.Histogram.add_weighted read_hist
                    (Core.mshr_read_occupancy procs.(p))
                    w;
                  Stats.Histogram.add_weighted total_hist
                    (Core.mshr_total_occupancy procs.(p))
                    w
                done
              end;
              cycle := n)
    end
  done;
  let cycles = !cycle + 1 in
  let per_proc = Array.map Core.breakdown procs in
  (* each processor was attributed for the cycles before its own finish
     only; pad with sync so every processor accounts for [cycles] *)
  Array.iter
    (fun bd ->
      let missing = float_of_int cycles -. Breakdown.total bd in
      if missing > 0.0 then
        bd.Breakdown.sync_stall <- bd.Breakdown.sync_stall +. missing)
    per_proc;
  let breakdown = Breakdown.create () in
  Array.iter (fun bd -> Breakdown.add breakdown bd) per_proc;
  let breakdown = Breakdown.scale breakdown (1.0 /. float_of_int nprocs) in
  let l2_misses = Array.fold_left (fun acc p -> acc + Core.l2_misses p) 0 procs in
  let read_misses =
    Array.fold_left (fun acc p -> acc + Core.read_misses p) 0 procs
  in
  let l1_misses = Array.fold_left (fun acc p -> acc + Core.l1_misses p) 0 procs in
  let mshr_full_events =
    Array.fold_left (fun acc p -> acc + Core.mshr_full_events p) 0 procs
  in
  let wbuf_full_events =
    Array.fold_left (fun acc p -> acc + Core.wbuf_full_events p) 0 procs
  in
  let prefetches = Array.fold_left (fun acc p -> acc + Core.prefetches p) 0 procs in
  let prefetch_misses =
    Array.fold_left (fun acc p -> acc + Core.prefetch_misses p) 0 procs
  in
  let late_prefetches =
    Array.fold_left (fun acc p -> acc + Core.late_prefetches p) 0 procs
  in
  let lat_sum =
    Array.fold_left (fun acc p -> acc +. Core.read_miss_latency_sum p) 0.0 procs
  in
  {
    cycles;
    breakdown;
    per_proc;
    read_mshr_hist = read_hist;
    total_mshr_hist = total_hist;
    l2_misses;
    read_misses;
    l1_misses;
    mshr_full_events;
    wbuf_full_events;
    prefetches;
    prefetch_misses;
    late_prefetches;
    avg_read_miss_latency =
      (if read_misses = 0 then 0.0 else lat_sum /. float_of_int read_misses);
    bus_utilization = Memsys.bus_utilization sh.Core.mem ~upto:cycles;
    bank_utilization = Memsys.bank_utilization sh.Core.mem ~upto:cycles;
    instructions =
      Array.fold_left (fun acc p -> acc + Core.retired_instructions p) 0 procs;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>cycles %d, instrs %d (IPC %.2f)@,%a@,\
     L2 misses %d (reads %d, avg latency %.1f cycles), L1 misses %d, mshr-full %d, wbuf-full %d@,\
     bus util %.2f, bank util %.2f@]"
    r.cycles r.instructions
    (float_of_int r.instructions /. float_of_int (max 1 r.cycles))
    Breakdown.pp r.breakdown r.l2_misses r.read_misses r.avg_read_miss_latency
    r.l1_misses r.mshr_full_events r.wbuf_full_events
    r.bus_utilization r.bank_utilization
