open Memclust_util
open Memclust_codegen

type result = {
  cycles : int;
  breakdown : Breakdown.t;
  per_proc : Breakdown.t array;
  read_mshr_hist : Stats.Histogram.t;
  total_mshr_hist : Stats.Histogram.t;
  level_stats : Breakdown.level_stat array;
  l2_misses : int;
  read_misses : int;
  l1_misses : int;
  mshr_full_events : int;
  wbuf_full_events : int;
  prefetches : int;
  prefetch_misses : int;
  late_prefetches : int;
  avg_read_miss_latency : float;
  bus_utilization : float;
  bank_utilization : float;
  instructions : int;
}

let ns_per_cycle (cfg : Config.t) = 1000.0 /. float_of_int cfg.Config.clock_mhz

type mode = Cycle | Event | Sampled of Sampling.params

let mode_of_string s =
  match String.lowercase_ascii s with
  | "cycle" -> Some Cycle
  | "event" -> Some Event
  | ls ->
      if String.length ls >= 7 && String.equal (String.sub ls 0 7) "sampled"
      then Option.map (fun p -> Sampled p) (Sampling.parse ls)
      else None

let mode_to_string = function
  | Cycle -> "cycle"
  | Event -> "event"
  | Sampled p -> Sampling.to_string p

let bad_mode where s =
  invalid_arg
    (Printf.sprintf
       "%s: expected \"cycle\", \"event\" or \
        \"sampled[:period:window[:warmup]]\", got %S"
       where s)

let default_mode () =
  match Sys.getenv_opt "MEMCLUST_SIM_MODE" with
  | None -> Event
  | Some s -> (
      match mode_of_string s with
      | Some m -> m
      | None -> bad_mode "MEMCLUST_SIM_MODE" s)

let resolve_mode ?mode (cfg : Config.t) =
  match mode with
  | Some m -> m
  | None -> (
      match cfg.Config.sim_mode with
      | Some s -> (
          match mode_of_string s with
          | Some m -> m
          | None -> bad_mode "Config.sim_mode" s)
      | None -> default_mode ())

(* ------------------------------------------------------------------ *)
(* The lockstep engine, factored so sampled mode can run it in bounded
   bursts. [advance ~stop:(fun () -> false)] is the pre-existing loop,
   statement for statement — Cycle and Event results stay bit-identical
   to the unfactored driver. *)

type engine = {
  sh : Core.shared;
  procs : Core.t array;
  read_hist : Stats.Histogram.t;
  total_hist : Stats.Histogram.t;
  mutable cycle : int;
  max_cycles : int;
  (* forward-progress watchdog (reads state only: the happy path stays
     bit-identical with it enabled) *)
  watchdog_cycles : int;
  time_budget : float;  (* wall-clock seconds; 0 disables *)
  start_wall : float;
  mutable last_progress : int;  (* cycle of the last core state change *)
  mutable wd_iters : int;  (* loop iterations, for cheap periodic checks *)
  mutable mode_name : string;
}

type stepping = Step_cycle | Step_event

let default_watchdog_cycles () =
  match
    Option.bind (Sys.getenv_opt "MEMCLUST_WATCHDOG_CYCLES") int_of_string_opt
  with
  | Some v when v > 0 -> v
  | _ -> 1_000_000

let default_time_budget () =
  match
    Option.bind (Sys.getenv_opt "MEMCLUST_TIME_BUDGET_S") float_of_string_opt
  with
  | Some v when v > 0.0 -> v
  | _ -> 0.0

let make_engine ?(max_cycles = 400_000_000) ?watchdog_cycles ?time_budget
    (cfg : Config.t) ~home (lower : Lower.t) =
  let nprocs = Array.length lower.Lower.traces in
  let sh = Core.make_shared cfg ~nprocs ~home in
  let procs =
    Array.mapi (fun p trace -> Core.create sh ~proc:p trace) lower.Lower.traces
  in
  {
    sh;
    procs;
    read_hist = Stats.Histogram.create (Config.lp cfg + 1);
    total_hist = Stats.Histogram.create (Config.lp cfg + 1);
    cycle = 0;
    max_cycles;
    watchdog_cycles =
      (match watchdog_cycles with
      | Some v when v > 0 -> v
      | _ -> default_watchdog_cycles ());
    time_budget =
      (match time_budget with
      | Some v when v > 0.0 -> v
      | _ -> default_time_budget ());
    start_wall = Unix.gettimeofday ();
    last_progress = 0;
    wd_iters = 0;
    mode_name = "event";
  }

(* The watchdog's state dump: per-proc PC, barrier progress, per-level
   MSHR occupancy and the pending completion events — everything needed
   to diagnose a wedge (MSHR exhaustion, barrier livelock) post mortem. *)
let state_dump e =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "simulator state at cycle %d:" e.cycle);
  Array.iteri
    (fun p c ->
      let mshrs =
        Core.mshr_occupancy_by_level c
        |> Array.to_list
        |> List.mapi (fun i (occ, cap) ->
               Printf.sprintf "L%d %d/%d" (i + 1) occ cap)
        |> String.concat " "
      in
      Buffer.add_string b
        (Printf.sprintf
           "\n  proc %d: pc %d/%d%s, barrier %d, mshrs [%s], next event %s"
           p (Core.position c)
           (Trace.length (Core.trace c))
           (if Core.finished c then " (finished)" else "")
           e.sh.Core.reached.(p) mshrs
           (match Core.next_event c ~now:e.cycle with
           | Some n -> string_of_int n
           | None -> "none")))
    e.procs;
  Buffer.contents b

let deadlock e ~reason =
  Error.raise_err
    (Error.Sim_deadlock
       {
         cycle = e.cycle;
         mode = e.mode_name;
         reason;
         state_dump = state_dump e;
       })

(* Run the lockstep loop until the machine quiesces (returns [false]) or
   [stop] fires right after a cycle advance (returns [true]); a stopped
   engine resumes mid-run with the next [advance] call, continuing
   exactly where it left off. *)
let advance e stepping ~stop =
  let nprocs = Array.length e.procs in
  let live = ref true in
  let go = ref true in
  (* the legs between [advance] calls (sampled-mode fast-forwards) are
     not the engine's to police: forgive them, watch within this call *)
  e.last_progress <- e.cycle;
  while !go do
    if e.cycle > e.max_cycles then
      deadlock e
        ~reason:
          (Printf.sprintf "exceeded the %d-cycle simulation budget"
             e.max_cycles);
    e.wd_iters <- e.wd_iters + 1;
    if
      e.time_budget > 0.0
      && e.wd_iters land 8191 = 0
      && Unix.gettimeofday () -. e.start_wall > e.time_budget
    then
      deadlock e
        ~reason:
          (Printf.sprintf "exceeded the %.1fs wall-clock budget" e.time_budget);
    let running = ref false in
    let any_progress = ref false in
    for p = 0 to nprocs - 1 do
      if not (Core.finished e.procs.(p)) then begin
        Core.step e.procs.(p) ~now:e.cycle;
        if Core.progressed e.procs.(p) then any_progress := true;
        if not (Core.finished e.procs.(p)) then running := true
      end
      else begin
        (* finished early: waiting for the others *)
        let bd = Core.breakdown e.procs.(p) in
        bd.Breakdown.sync_stall <- bd.Breakdown.sync_stall +. 1.0
      end;
      Stats.Histogram.add e.read_hist (Core.mshr_read_occupancy e.procs.(p));
      Stats.Histogram.add e.total_hist (Core.mshr_total_occupancy e.procs.(p))
    done;
    if !running then begin
      if !any_progress then e.last_progress <- e.cycle
      else if e.cycle - e.last_progress > e.watchdog_cycles then
        deadlock e
          ~reason:
            (Printf.sprintf
               "no core issued, retired or completed an event for %d cycles \
                (watchdog budget %d)"
               (e.cycle - e.last_progress) e.watchdog_cycles);
      (match stepping with
      | Step_cycle -> e.cycle <- e.cycle + 1
      | Step_event when !any_progress -> e.cycle <- e.cycle + 1
      | Step_event -> (
          (* No core changed state this cycle: every cycle up to the next
             completion event repeats the exact same stalled step. Jump
             there, replaying the per-cycle statistics (stall attribution,
             retry counters, MSHR-occupancy samples) for the skipped
             cycles so results stay bit-identical to the cycle loop. *)
          let next = ref max_int in
          for p = 0 to nprocs - 1 do
            if not (Core.finished e.procs.(p)) then
              match Core.next_event e.procs.(p) ~now:e.cycle with
              | Some ev when ev < !next -> next := ev
              | _ -> ()
          done;
          match !next with
          | n when n = max_int ->
              (* nothing pending anywhere yet cores are unfinished: a
                 genuine deadlock — report it now with the machine state
                 instead of spinning to the cycle budget *)
              deadlock e
                ~reason:
                  "no completion pending on any processor and no core can \
                   make progress"
          | n ->
              let skip = n - e.cycle - 1 in
              if skip > 0 then begin
                let w = float_of_int skip in
                for p = 0 to nprocs - 1 do
                  if Core.finished e.procs.(p) then begin
                    let bd = Core.breakdown e.procs.(p) in
                    bd.Breakdown.sync_stall <- bd.Breakdown.sync_stall +. w
                  end
                  else Core.replay_idle e.procs.(p) ~times:skip;
                  Stats.Histogram.add_weighted e.read_hist
                    (Core.mshr_read_occupancy e.procs.(p))
                    w;
                  Stats.Histogram.add_weighted e.total_hist
                    (Core.mshr_total_occupancy e.procs.(p))
                    w
                done
              end;
              e.cycle <- n));
      if stop () then go := false
    end
    else begin
      go := false;
      live := false
    end
  done;
  !live

let fold_procs e f = Array.fold_left (fun acc p -> acc + f p) 0 e.procs

(* per-level demand-load hits/misses summed over processors *)
let sum_level_stats e =
  let d = Core.hierarchy_depth e.procs.(0) in
  let acc =
    Array.init d (fun i -> Breakdown.level_create (Printf.sprintf "L%d" (i + 1)))
  in
  Array.iter
    (fun p ->
      Array.iteri (fun i l -> Breakdown.level_add acc.(i) l) (Core.level_stats p))
    e.procs;
  acc

(* The result record of an exact (unsampled) run: identical to the
   pre-refactor assembly. *)
let assemble_exact e =
  let cycles = e.cycle + 1 in
  let per_proc = Array.map Core.breakdown e.procs in
  (* each processor was attributed for the cycles before its own finish
     only; pad with sync so every processor accounts for [cycles] *)
  Array.iter
    (fun bd ->
      let missing = float_of_int cycles -. Breakdown.total bd in
      if missing > 0.0 then
        bd.Breakdown.sync_stall <- bd.Breakdown.sync_stall +. missing)
    per_proc;
  let breakdown = Breakdown.create () in
  Array.iter (fun bd -> Breakdown.add breakdown bd) per_proc;
  let breakdown =
    Breakdown.scale breakdown (1.0 /. float_of_int (Array.length e.procs))
  in
  let read_misses = fold_procs e Core.read_misses in
  let lat_sum =
    Array.fold_left (fun acc p -> acc +. Core.read_miss_latency_sum p) 0.0 e.procs
  in
  {
    cycles;
    breakdown;
    per_proc;
    read_mshr_hist = e.read_hist;
    total_mshr_hist = e.total_hist;
    level_stats = sum_level_stats e;
    l2_misses = fold_procs e Core.l2_misses;
    read_misses;
    l1_misses = fold_procs e Core.l1_misses;
    mshr_full_events = fold_procs e Core.mshr_full_events;
    wbuf_full_events = fold_procs e Core.wbuf_full_events;
    prefetches = fold_procs e Core.prefetches;
    prefetch_misses = fold_procs e Core.prefetch_misses;
    late_prefetches = fold_procs e Core.late_prefetches;
    avg_read_miss_latency =
      (if read_misses = 0 then 0.0 else lat_sum /. float_of_int read_misses);
    bus_utilization = Memsys.bus_utilization e.sh.Core.h.Hierarchy.mem ~upto:cycles;
    bank_utilization = Memsys.bank_utilization e.sh.Core.h.Hierarchy.mem ~upto:cycles;
    instructions = fold_procs e Core.retired_instructions;
  }

(* ------------------------------------------------------------------ *)
(* Sampled mode: systematic sampling with functional fast-forward. *)

(* counter snapshot, for window deltas *)
type snap = {
  n_cycle : int;
  n_instr : int;
  n_l2 : int;
  n_rm : int;
  n_rlat : float;
  n_l1 : int;
  n_mf : int;
  n_wf : int;
  n_pf : int;
  n_pfm : int;
  n_lpf : int;
  n_lvl_h : int array;
  n_lvl_m : int array;
}

let snapshot e =
  let lvl = sum_level_stats e in
  {
    n_cycle = e.cycle;
    n_instr = fold_procs e Core.retired_instructions;
    n_l2 = fold_procs e Core.l2_misses;
    n_rm = fold_procs e Core.read_misses;
    n_rlat =
      Array.fold_left (fun a p -> a +. Core.read_miss_latency_sum p) 0.0 e.procs;
    n_l1 = fold_procs e Core.l1_misses;
    n_mf = fold_procs e Core.mshr_full_events;
    n_wf = fold_procs e Core.wbuf_full_events;
    n_pf = fold_procs e Core.prefetches;
    n_pfm = fold_procs e Core.prefetch_misses;
    n_lpf = fold_procs e Core.late_prefetches;
    n_lvl_h = Array.map (fun l -> l.Breakdown.lv_hits) lvl;
    n_lvl_m = Array.map (fun l -> l.Breakdown.lv_misses) lvl;
  }

let sample_of_deltas (a : snap) (b : snap) : Sampling.sample =
  {
    Sampling.s_cycles = b.n_cycle - a.n_cycle;
    s_instructions = b.n_instr - a.n_instr;
    s_l2_misses = b.n_l2 - a.n_l2;
    s_read_misses = b.n_rm - a.n_rm;
    s_read_miss_lat = b.n_rlat -. a.n_rlat;
    s_l1_misses = b.n_l1 - a.n_l1;
    s_mshr_full = b.n_mf - a.n_mf;
    s_wbuf_full = b.n_wf - a.n_wf;
    s_prefetches = b.n_pf - a.n_pf;
    s_prefetch_misses = b.n_pfm - a.n_pfm;
    s_late_prefetches = b.n_lpf - a.n_lpf;
    s_level_hits = Array.map2 ( - ) b.n_lvl_h a.n_lvl_h;
    s_level_misses = Array.map2 ( - ) b.n_lvl_m a.n_lvl_m;
  }

(* Short traces: the requested period would land too few windows for a
   meaningful estimate — a rare expensive phase (e.g. a serial reduction
   tail) can hold a quarter of the cycles yet be missed by every window.
   Refit period/window to the trace, preserving the requested detail
   fraction, so at least this many windows land. Long traces use the
   requested parameters unchanged. *)
let min_windows = 16

let fit_params (cfg : Config.t) (sp : Sampling.params) ~per_proc =
  if per_proc >= min_windows * sp.Sampling.period then sp
  else begin
    let period = max 64 (per_proc / min_windows) in
    let window =
      max (2 * cfg.Config.window)
        (period * sp.Sampling.window / max 1 sp.Sampling.period)
    in
    let window = min window (max 2 (period * 3 / 4)) in
    (* warm-up must outlast the reorder window: dependences severed at the
       reposition make up to one window-full of instructions artificially
       parallel *)
    let warmup =
      min (window / 2)
        (max cfg.Config.window
           (window * sp.Sampling.warmup / max 1 sp.Sampling.window))
    in
    { Sampling.period; window; warmup }
  end

let run_sampled e (sp : Sampling.params) =
  let nprocs = Array.length e.procs in
  let total_instructions =
    fold_procs e (fun p -> Trace.length (Core.trace p))
  in
  let per_proc =
    Array.fold_left (fun a p -> max a (Trace.length (Core.trace p))) 0 e.procs
  in
  let sp = fit_params e.sh.Core.h.Hierarchy.cfg sp ~per_proc in
  let samples = ref [] in
  let detailed_cycles = ref 0 in
  (* Jitter each fast-forward leg uniformly within ±half its length:
     strictly periodic window starts alias with periodic program phases
     (e.g. a loop nest whose body length divides the sampling period
     measures the same phase in every window). Deterministically seeded,
     so runs stay reproducible. *)
  let rng =
    Rng.create
      (0x5a3317ed + (31 * sp.Sampling.period) + (7 * sp.Sampling.window)
     + total_instructions)
  in
  let all_finished () = Array.for_all Core.finished e.procs in
  (* every processor has either retired [quota] instructions since its
     [base] count or has nothing left to fetch — windows stretch past
     barrier waits instead of cutting a lagging processor's window short,
     but a processor that is only draining its tail (write buffer, last
     window entries) cannot hold the others in detailed mode forever *)
  let quota_met quota base () =
    let ok = ref true in
    for p = 0 to nprocs - 1 do
      let c = e.procs.(p) in
      if
        (not (Core.finished c))
        && Core.position c < Trace.length (Core.trace c)
        && Core.retired_instructions c - base.(p) < quota
        (* [next_event = None] on an unfinished processor means it is
           only waiting on another processor's barrier arrival: in
           phase-pipelined programs (LU) some processor is always in
           that state, and letting it hold the window open degenerates
           the whole run to detailed mode. Probed at [e.cycle - 1]: right
           after an event jump a completion scheduled exactly at the
           jump target is not strictly after [e.cycle], and the processor
           would spuriously look barrier-blocked. *)
        && Core.next_event c ~now:(e.cycle - 1) <> None
      then ok := false
    done;
    !ok
  in
  let retired_now () =
    Array.map Core.retired_instructions e.procs
  in
  while not (all_finished ()) do
    let win_start_cycle = e.cycle in
    let win_start_retired = retired_now () in
    (* warm-up prefix: detailed, but excluded from the sample *)
    if sp.Sampling.warmup > 0 then
      ignore
        (advance e Step_event
           ~stop:(quota_met sp.Sampling.warmup win_start_retired));
    (* measured part of the window *)
    let m0 = snapshot e in
    let m0_retired = retired_now () in
    let live =
      advance e Step_event
        ~stop:
          (quota_met (sp.Sampling.window - sp.Sampling.warmup) m0_retired)
    in
    let m1 = snapshot e in
    if m1.n_instr > m0.n_instr then
      samples := sample_of_deltas m0 m1 :: !samples;
    detailed_cycles := !detailed_cycles + (e.cycle - win_start_cycle);
    (* fast-forward to the next window start *)
    if live && not (all_finished ()) then begin
      let span = e.cycle - win_start_cycle in
      let ret_d =
        Array.mapi
          (fun i p -> Core.retired_instructions p - win_start_retired.(i))
          e.procs
      in
      let sum_ret = Array.fold_left ( + ) 0 ret_d in
      let max_ret = Array.fold_left max 0 ret_d in
      if sum_ret = 0 then begin
        (* a window that retired nothing measured a pure wait state
           (write-buffer drain tails, a barrier everyone but a straggler
           has reached): there is no rate to extrapolate from, so run
           detailed until some instruction retires rather than spinning
           two-cycle windows with full per-window setup cost *)
        let base = retired_now () in
        ignore
          (advance e Step_event
             ~stop:(fun () ->
               Array.exists2
                 (fun p b -> Core.retired_instructions p > b)
                 e.procs base))
      end
      else begin
        let base_gap = sp.Sampling.period - sp.Sampling.window in
        let gap = (base_gap / 2) + Rng.int rng (max 1 (base_gap + 1)) in
        (* Bound the barrier-progress skew of the leg: with imbalanced
           traces, skipping every processor the same instruction count
           pushes barrier-dense processors many epochs ahead, and the
           next detailed window would then burn its whole span
           re-synchronising. No processor may cross more barriers than
           the fewest any live processor has in its own slice. *)
        let max_barriers = ref max_int in
        Array.iter
          (fun p ->
            if not (Core.finished p) then begin
              let tr = Core.trace p in
              let pos = Core.position p in
              let stop = min (Trace.length tr) (pos + gap) in
              let b = ref 0 in
              for i = pos to stop - 1 do
                if Trace.kind tr i = Trace.Barrier_op then incr b
              done;
              if !b < !max_barriers then max_barriers := !b
            end)
          e.procs;
        (* Each processor skips ahead in proportion to its share of the
           window's retirement: a processor that sat barrier-blocked all
           window stays put — its instructions execute in a later phase
           and will be sampled there — instead of being dragged forward
           at a rate measured while it was not running. The leg is then
           charged at the machine's aggregate throughput over the
           window: IPC = Σ retired / span, cost = Σ skipped / IPC. The
           machine-level rate prices in barrier waits, serial phases and
           overlap at their measured density, and is far less noisy than
           any per-processor CPI (a max over per-processor charges lets
           one briefly-blocked processor's inflated CPI set every leg). *)
        let rate = float_of_int span /. float_of_int sum_ret in
        let sum_ff = ref 0 in
        Array.iteri
          (fun i p ->
            if not (Core.finished p) then begin
              let gap_p = gap * ret_d.(i) / max_ret in
              if gap_p > 0 then begin
                let c =
                  Fastfwd.run p ~max_barriers:!max_barriers
                    ~upto:(Core.position p + gap_p) ~cpi:rate ()
                in
                sum_ff := !sum_ff + c.Fastfwd.ff_instructions
              end
            end)
          e.procs;
        let charge = int_of_float (ceil (float_of_int !sum_ff *. rate)) in
        (* the memory system's queueing backlog rides along, so the next
           window opens under steady-state contention rather than on an
           idle memory system *)
        Memsys.shift e.sh.Core.h.Hierarchy.mem ~from:e.cycle ~by:charge;
        e.cycle <- e.cycle + charge
      end
    end
  done;
  let estimated_cycles = e.cycle + 1 in
  let samples = List.rev !samples in
  let est =
    Sampling.estimate sp ~total_instructions ~estimated_cycles samples
  in
  (* breakdowns were only attributed during detailed cycles; scale each
     processor's to span the estimated run (the fast-forward legs are
     assumed to split like the windows they were extrapolated from) *)
  let per_proc =
    Array.map
      (fun p ->
        let bd = Core.breakdown p in
        let total = Breakdown.total bd in
        if total <= 0.0 then Breakdown.create ()
        else Breakdown.scale bd (float_of_int estimated_cycles /. total))
      e.procs
  in
  let breakdown = Breakdown.create () in
  Array.iter (fun bd -> Breakdown.add breakdown bd) per_proc;
  let breakdown = Breakdown.scale breakdown (1.0 /. float_of_int nprocs) in
  let count f = Sampling.extrapolate_count samples ~total:total_instructions f in
  (* bus/bank occupancy only accumulates while the detailed windows run *)
  let util_span = max 1 !detailed_cycles in
  let result =
    {
      cycles = estimated_cycles;
      breakdown;
      per_proc;
      read_mshr_hist = e.read_hist;
      total_mshr_hist = e.total_hist;
      level_stats =
        (let d = Core.hierarchy_depth e.procs.(0) in
         Array.init d (fun i ->
             {
               Breakdown.lv_name = Printf.sprintf "L%d" (i + 1);
               lv_hits = count (fun s -> s.Sampling.s_level_hits.(i));
               lv_misses = count (fun s -> s.Sampling.s_level_misses.(i));
             }));
      l2_misses = int_of_float (Float.round est.Sampling.l2_misses_ci.Sampling.est);
      read_misses =
        int_of_float (Float.round est.Sampling.read_misses_ci.Sampling.est);
      l1_misses = count (fun s -> s.Sampling.s_l1_misses);
      mshr_full_events = count (fun s -> s.Sampling.s_mshr_full);
      wbuf_full_events = count (fun s -> s.Sampling.s_wbuf_full);
      prefetches = count (fun s -> s.Sampling.s_prefetches);
      prefetch_misses = count (fun s -> s.Sampling.s_prefetch_misses);
      late_prefetches = count (fun s -> s.Sampling.s_late_prefetches);
      avg_read_miss_latency = est.Sampling.read_miss_latency_ci.Sampling.est;
      bus_utilization =
        Memsys.bus_utilization e.sh.Core.h.Hierarchy.mem ~upto:util_span;
      bank_utilization =
        Memsys.bank_utilization e.sh.Core.h.Hierarchy.mem ~upto:util_span;
      instructions = total_instructions;
    }
  in
  (result, est)

(* ------------------------------------------------------------------ *)

let run_estimated ?max_cycles ?watchdog_cycles ?time_budget ?mode
    (cfg : Config.t) ~home (lower : Lower.t) =
  let mode = resolve_mode ?mode cfg in
  let e = make_engine ?max_cycles ?watchdog_cycles ?time_budget cfg ~home lower in
  e.mode_name <- mode_to_string mode;
  match mode with
  | Cycle ->
      ignore (advance e Step_cycle ~stop:(fun () -> false));
      (assemble_exact e, None)
  | Event ->
      ignore (advance e Step_event ~stop:(fun () -> false));
      (assemble_exact e, None)
  | Sampled sp ->
      let result, est = run_sampled e sp in
      (result, Some est)

let run ?max_cycles ?watchdog_cycles ?time_budget ?mode cfg ~home lower =
  fst
    (run_estimated ?max_cycles ?watchdog_cycles ?time_budget ?mode cfg ~home
       lower)

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>cycles %d, instrs %d (IPC %.2f)@,%a@,\
     memory misses %d (reads %d, avg latency %.1f cycles), mshr-full %d, wbuf-full %d@,\
     levels: %a@,\
     bus util %.2f, bank util %.2f@]"
    r.cycles r.instructions
    (float_of_int r.instructions /. float_of_int (max 1 r.cycles))
    Breakdown.pp r.breakdown r.l2_misses r.read_misses r.avg_read_miss_latency
    r.mshr_full_events r.wbuf_full_events
    Breakdown.pp_levels r.level_stats
    r.bus_utilization r.bank_utilization
