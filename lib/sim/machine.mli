(** Multiprocessor simulation driver: lockstep cycle loop over all cores
    sharing one memory system, with per-cycle MSHR-occupancy sampling
    (Figure 4) and execution-time breakdowns (Figure 3). *)

open Memclust_util
open Memclust_codegen

type result = {
  cycles : int;
  breakdown : Breakdown.t;
      (** averaged over processors, so its total equals [cycles]; cycles a
          processor spends finished while others run count as sync *)
  per_proc : Breakdown.t array;
  read_mshr_hist : Stats.Histogram.t;
      (** per-cycle samples of read-occupied L2 MSHRs, all processors *)
  total_mshr_hist : Stats.Histogram.t;
  l2_misses : int;
  read_misses : int;
  l1_misses : int;  (** demand-load L1 misses *)
  mshr_full_events : int;  (** load issues rejected: MSHRs full *)
  wbuf_full_events : int;  (** store issues rejected: write buffer full *)
  prefetches : int;  (** prefetch hints issued *)
  prefetch_misses : int;  (** prefetches that fetched from memory *)
  late_prefetches : int;  (** demand loads catching an in-flight prefetch *)
  avg_read_miss_latency : float;  (** cycles, request to completion *)
  bus_utilization : float;
  bank_utilization : float;
  instructions : int;
}

type mode =
  | Cycle  (** strict cycle-by-cycle loop (the reference semantics) *)
  | Event
      (** event-driven: when no core can retire, issue, fetch or drain,
          jump [now] to the earliest pending completion event across all
          processors, replaying per-cycle statistics for the skipped
          cycles. Produces bit-identical {!result} values to {!Cycle}. *)

val mode_of_string : string -> mode option
(** Accepts ["cycle"] and ["event"] (case-insensitive). *)

val default_mode : unit -> mode
(** [Event], unless overridden by the [MEMCLUST_SIM_MODE] environment
    variable (["cycle"] or ["event"]). Raises [Invalid_argument] on any
    other value of the variable. *)

val run :
  ?max_cycles:int ->
  ?mode:mode ->
  Config.t ->
  home:(int -> int) ->
  Lower.t ->
  result
(** Simulate the traces to completion. [home] maps byte addresses to their
    home node. [mode] defaults to {!default_mode} (). Raises [Failure] if
    [max_cycles] (default 400 million) is exceeded — a deadlock guard. *)

val ns_per_cycle : Config.t -> float

val pp_result : Format.formatter -> result -> unit
