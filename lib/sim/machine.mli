(** Multiprocessor simulation driver: lockstep cycle loop over all cores
    sharing one memory system, with per-cycle MSHR-occupancy sampling
    (Figure 4) and execution-time breakdowns (Figure 3). *)

open Memclust_util
open Memclust_codegen

type result = {
  cycles : int;
  breakdown : Breakdown.t;
      (** averaged over processors, so its total equals [cycles]; cycles a
          processor spends finished while others run count as sync *)
  per_proc : Breakdown.t array;
  read_mshr_hist : Stats.Histogram.t;
      (** per-cycle samples of read-occupied L2 MSHRs, all processors *)
  total_mshr_hist : Stats.Histogram.t;
  level_stats : Breakdown.level_stat array;
      (** per-hierarchy-level demand-load hits/misses, summed over
          processors, processor side first *)
  l2_misses : int;
      (** demand accesses that went to memory (the legacy name; see
          {!Core.l2_misses}) *)
  read_misses : int;
  l1_misses : int;  (** demand-load misses at the first level *)
  mshr_full_events : int;  (** load issues rejected: MSHRs full *)
  wbuf_full_events : int;  (** store issues rejected: write buffer full *)
  prefetches : int;  (** prefetch hints issued *)
  prefetch_misses : int;  (** prefetches that fetched from memory *)
  late_prefetches : int;  (** demand loads catching an in-flight prefetch *)
  avg_read_miss_latency : float;  (** cycles, request to completion *)
  bus_utilization : float;
  bank_utilization : float;
  instructions : int;
}

type mode =
  | Cycle  (** strict cycle-by-cycle loop (the reference semantics) *)
  | Event
      (** event-driven: when no core can retire, issue, fetch or drain,
          jump [now] to the earliest pending completion event across all
          processors, replaying per-cycle statistics for the skipped
          cycles. Produces bit-identical {!result} values to {!Cycle}. *)
  | Sampled of Sampling.params
      (** systematic sampling: periodic detailed windows (run in event
          mode, with a warm-up prefix excluded from statistics) separated
          by functional fast-forward legs ({!Fastfwd}) charged at the
          preceding window's CPI. Results are statistical estimates with
          confidence intervals ({!run_estimated}); not bit-comparable to
          the exact modes. *)

val mode_of_string : string -> mode option
(** Accepts ["cycle"], ["event"] and
    ["sampled\[:period:window\[:warmup\]\]"] (case-insensitive; see
    {!Sampling.parse}). *)

val mode_to_string : mode -> string

val default_mode : unit -> mode
(** [Event], unless overridden by the [MEMCLUST_SIM_MODE] environment
    variable (any {!mode_of_string} syntax). Raises [Invalid_argument] on
    any other value of the variable. *)

val resolve_mode : ?mode:mode -> Config.t -> mode
(** The mode a run of [cfg] will use: an explicit [?mode] wins, then the
    config's [sim_mode] string (parsed; raises [Invalid_argument] if
    unparsable), then {!default_mode} (). *)

val run :
  ?max_cycles:int ->
  ?watchdog_cycles:int ->
  ?time_budget:float ->
  ?mode:mode ->
  Config.t ->
  home:(int -> int) ->
  Lower.t ->
  result
(** Simulate the traces to completion. [home] maps byte addresses to their
    home node. [mode] defaults to {!resolve_mode} of the config.

    A wedged machine never hangs: the run raises
    [Error.Error (Sim_deadlock _)] — carrying the per-proc PCs, barrier
    progress, per-level MSHR occupancies and pending completion events —
    when (a) [max_cycles] (default 400 million) is exceeded, (b) no core
    changes state for [watchdog_cycles] consecutive simulated cycles
    (default 1 million, or the [MEMCLUST_WATCHDOG_CYCLES] environment
    variable), (c) event mode finds unfinished cores with no pending
    completion anywhere, or (d) the optional wall-clock budget
    [time_budget] seconds (or [MEMCLUST_TIME_BUDGET_S]; 0 = disabled,
    the default) runs out. The watchdog only reads simulator state, so
    results on non-wedged runs are bit-identical with it enabled.

    In [Sampled] mode the result's counters are extrapolated estimates;
    MSHR histograms cover only the detailed windows, and bus/bank
    utilizations are measured over the detailed cycles. *)

val run_estimated :
  ?max_cycles:int ->
  ?watchdog_cycles:int ->
  ?time_budget:float ->
  ?mode:mode ->
  Config.t ->
  home:(int -> int) ->
  Lower.t ->
  result * Sampling.estimate option
(** Like {!run}, additionally returning the sampling estimate (confidence
    intervals, window counts) when the resolved mode is [Sampled]; [None]
    for the exact modes. *)

val ns_per_cycle : Config.t -> float

val pp_result : Format.formatter -> result -> unit
