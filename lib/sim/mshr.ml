open Memclust_util

type entry = {
  mutable ready : int;
  mutable has_read : bool;
  mutable has_write : bool;
  mutable prefetch_only : bool;  (* allocated by a prefetch, no demand yet *)
}

type t = {
  cap : int;
  table : (int, entry) Hashtbl.t;
  (* min-heap of completion times, kept in sync with [table]: every
     insertion pushes (ready, line), cleanup pops expired entries, so no
     per-cycle fold over the table is needed *)
  expiry : int Pqueue.t;
  mutable read_occ : int;  (* entries with [has_read] *)
}

let create ~cap =
  { cap; table = Hashtbl.create 32; expiry = Pqueue.create (); read_occ = 0 }

let capacity t = t.cap
let occupancy t = Hashtbl.length t.table
let read_occupancy t = t.read_occ
let is_empty t = Hashtbl.length t.table = 0
let full t = Hashtbl.length t.table >= t.cap

let find t line = Hashtbl.find_opt t.table line
let mem t line = Hashtbl.mem t.table line

let insert t ~line e =
  Hashtbl.add t.table line e;
  Pqueue.push t.expiry e.ready line;
  if e.has_read then t.read_occ <- t.read_occ + 1

let note_read t = t.read_occ <- t.read_occ + 1

(* [ready] is immutable after insertion, so the heap never holds stale
   priorities: popping everything with [ready <= now] removes exactly the
   expired entries. Returns whether anything expired (a state change the
   event loop must observe). *)
let cleanup t ~now =
  let any = ref false in
  while Pqueue.min_prio t.expiry <= now do
    let line = Pqueue.min_value t.expiry in
    Pqueue.drop_min t.expiry;
    (match Hashtbl.find_opt t.table line with
    | Some e ->
        if e.has_read then t.read_occ <- t.read_occ - 1;
        Hashtbl.remove t.table line
    | None -> ());
    any := true
  done;
  !any

let next_ready t = Pqueue.min_prio t.expiry

let reset t =
  Hashtbl.reset t.table;
  Pqueue.clear t.expiry;
  t.read_occ <- 0
