(* The per-processor memory hierarchy: a stack of cache levels (each with
   its own geometry, hit latency and MSHR file) terminating in the shared
   banked memory system. Owns the whole miss lifecycle — lookup, MSHR
   allocate/coalesce, fill, stale-version invalidation — and exposes only
   completion-time / retry signals to the pipeline in [Core].

   Semantics, kept bit-identical to the pre-refactor fixed L1(+L2) code on
   equal-line stacks:

   - A hit at level [k] costs that level's latency and fills every level
     above it (inclusion by refill). Intermediate-level hits are plain
     pipelined accesses: no MSHR is involved.
   - A miss past the last level allocates ONE shared {!Mshr.entry},
     inserted into every level's file under that level's own line key —
     a request occupies an MSHR at each level it passed through, so the
     smallest file in the stack bounds memory parallelism (lp), and a
     coalescing probe at any level finds the same entry.
   - Coherence and memory transfers are at the last level's line size. *)

type shared = {
  cfg : Config.t;
  mem : Memsys.t;
  versions : (int, int * int) Hashtbl.t;
  home : int -> int;
  nprocs : int;
}

type level = {
  cache : Cache.t;
  mshr : Mshr.t;
  lat : int;
  lshift : int;  (* log2 line, or -1 when not a power of two *)
  lsize : int;
}

type t = {
  sh : shared;
  proc : int;
  levels : level array;
  coh_shift : int;  (* last level's line: coherence/transfer granularity *)
  coh_size : int;
  (* statistics *)
  level_hits : int array;  (* demand loads satisfied at each level *)
  level_misses : int array;  (* demand loads missing each level *)
  mutable mem_misses : int;  (* demand accesses that went to memory *)
  mutable read_misses : int;
  mutable read_miss_lat : float;
  mutable mshr_full_count : int;
  mutable prefetch_count : int;
  mutable prefetch_miss_count : int;  (* prefetches that went to memory *)
  mutable late_prefetch_count : int;
      (* demand loads catching an in-flight prefetch *)
}

let make_shared cfg ~nprocs ~home =
  { cfg; mem = Memsys.create cfg ~nprocs; versions = Hashtbl.create 4096; home; nprocs }

let log2_shift v =
  if v > 0 && v land (v - 1) = 0 then begin
    let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
    go v 0
  end
  else -1

let create sh ~proc =
  let levels =
    Array.of_list
      (List.map
         (fun (l : Config.level) ->
           {
             cache = Cache.create ~bytes:l.Config.bytes ~assoc:l.Config.assoc
                 ~line:l.Config.line;
             mshr = Mshr.create ~cap:l.Config.mshrs;
             lat = l.Config.lat;
             lshift = log2_shift l.Config.line;
             lsize = l.Config.line;
           })
         sh.cfg.Config.levels)
  in
  let n = Array.length levels in
  if n = 0 then invalid_arg "Hierarchy.create: config has no cache levels";
  let bottom = levels.(n - 1) in
  {
    sh;
    proc;
    levels;
    coh_shift = bottom.lshift;
    coh_size = bottom.lsize;
    level_hits = Array.make n 0;
    level_misses = Array.make n 0;
    mem_misses = 0;
    read_misses = 0;
    read_miss_lat = 0.0;
    mshr_full_count = 0;
    prefetch_count = 0;
    prefetch_miss_count = 0;
    late_prefetch_count = 0;
  }

let depth t = Array.length t.levels
let bottom t = t.levels.(Array.length t.levels - 1)

let coh_line t addr =
  if t.coh_shift >= 0 then addr lsr t.coh_shift else addr / t.coh_size

let level_line lvl addr =
  if lvl.lshift >= 0 then addr lsr lvl.lshift else addr / lvl.lsize

let version t line =
  match Hashtbl.find_opt t.sh.versions line with
  | Some vw -> vw
  | None -> (0, -1)

let miss_kind t ~writer ~home =
  if t.sh.nprocs = 1 then Memsys.Local
  else if writer >= 0 && writer <> t.proc then Memsys.Dirty_remote
  else if home = t.proc then Memsys.Local
  else Memsys.Remote

(* Coalescing probe: an in-flight miss covering [addr] at any level. Line
   sizes are non-decreasing toward memory, so addresses sharing an upper
   line share every line below — all levels hold the same entry set, just
   under their own keys; probing top-down finds the shared entry. *)
let find_inflight t addr =
  let n = Array.length t.levels in
  let rec go k =
    if k >= n then None
    else
      match Mshr.find t.levels.(k).mshr (level_line t.levels.(k) addr) with
      | Some e -> Some e
      | None -> go (k + 1)
  in
  go 0

let inflight_mem t addr =
  Array.exists (fun lvl -> Mshr.mem lvl.mshr (level_line lvl addr)) t.levels

(* A memory-bound miss needs an entry in every file. *)
let any_full t = Array.exists (fun lvl -> Mshr.full lvl.mshr) t.levels

let allocate t addr ~ready ~has_read ~has_write ~prefetch_only =
  let e = { Mshr.ready; has_read; has_write; prefetch_only } in
  Array.iter (fun lvl -> Mshr.insert lvl.mshr ~line:(level_line lvl addr) e) t.levels;
  e

let note_read t (e : Mshr.entry) =
  if not e.Mshr.has_read then begin
    e.Mshr.has_read <- true;
    Array.iter (fun lvl -> Mshr.note_read lvl.mshr) t.levels
  end

let fill_above t k ~version ~addr =
  for i = 0 to k - 1 do
    Cache.fill t.levels.(i).cache ~version ~addr
  done

let fill_all t ~version ~addr =
  Array.iter (fun lvl -> Cache.fill lvl.cache ~version ~addr) t.levels

(* Demand load: [Some ready] or [None] when no MSHR is available. *)
let read t ~now addr =
  match find_inflight t addr with
  | Some e ->
      if e.Mshr.prefetch_only then begin
        (* the prefetch launched the line but too late to hide it fully *)
        t.late_prefetch_count <- t.late_prefetch_count + 1;
        e.Mshr.prefetch_only <- false
      end;
      note_read t e;
      Some e.Mshr.ready
  | None -> (
      let line = coh_line t addr in
      let v, w = version t line in
      let n = Array.length t.levels in
      let rec probe k =
        if k >= n then n
        else if Cache.lookup t.levels.(k).cache ~version:v ~addr then begin
          t.level_hits.(k) <- t.level_hits.(k) + 1;
          k
        end
        else begin
          t.level_misses.(k) <- t.level_misses.(k) + 1;
          probe (k + 1)
        end
      in
      match probe 0 with
      | k when k < n ->
          fill_above t k ~version:v ~addr;
          Some (now + t.levels.(k).lat)
      | _ ->
          if any_full t then begin
            t.mshr_full_count <- t.mshr_full_count + 1;
            None
          end
          else begin
            let home = t.sh.home addr in
            let kind = miss_kind t ~writer:w ~home in
            let ready = Memsys.request t.sh.mem ~proc:t.proc ~home ~kind ~line ~now in
            ignore
              (allocate t addr ~ready ~has_read:true ~has_write:false
                 ~prefetch_only:false);
            fill_all t ~version:v ~addr;
            t.mem_misses <- t.mem_misses + 1;
            t.read_misses <- t.read_misses + 1;
            t.read_miss_lat <- t.read_miss_lat +. float_of_int (ready - now);
            Some ready
          end)

(* Write-buffer drain access (write-allocate). *)
let write t ~now addr =
  let line = coh_line t addr in
  let v, w = version t line in
  (* coherence: a write by a new owner invalidates all other copies *)
  let v' = if w <> t.proc && w >= 0 then v + 1 else v in
  let commit () = Hashtbl.replace t.sh.versions line (v', t.proc) in
  match find_inflight t addr with
  | Some e ->
      e.Mshr.has_write <- true;
      commit ();
      fill_all t ~version:v' ~addr;
      Some e.Mshr.ready
  | None ->
      let owned = w = t.proc || w < 0 in
      (* every level is probed (so every copy gets its LRU refresh) even
         below the first hit, as the fixed two-level model did *)
      let hit_level = ref (-1) in
      if owned then
        Array.iteri
          (fun k lvl ->
            if Cache.lookup lvl.cache ~version:v ~addr && !hit_level < 0 then
              hit_level := k)
          t.levels;
      if !hit_level >= 0 then begin
        commit ();
        fill_all t ~version:v' ~addr;
        Some (now + t.levels.(!hit_level).lat)
      end
      else if any_full t then None
      else begin
        let home = t.sh.home addr in
        let kind = miss_kind t ~writer:w ~home in
        let ready = Memsys.request t.sh.mem ~proc:t.proc ~home ~kind ~line ~now in
        ignore
          (allocate t addr ~ready ~has_read:false ~has_write:true
             ~prefetch_only:false);
        commit ();
        fill_all t ~version:v' ~addr;
        t.mem_misses <- t.mem_misses + 1;
        Some ready
      end

(* Non-binding prefetch: fills the caches if it can get an MSHR, is
   dropped when the line is already present/in flight or when no MSHR is
   available (as hardware drops hint prefetches under pressure). *)
let prefetch t ~now addr =
  t.prefetch_count <- t.prefetch_count + 1;
  match find_inflight t addr with
  | Some _ -> ()
  | None ->
      let line = coh_line t addr in
      let v, w = version t line in
      let n = Array.length t.levels in
      let rec probe k =
        if k >= n then n
        else if Cache.lookup t.levels.(k).cache ~version:v ~addr then k
        else probe (k + 1)
      in
      let k = probe 0 in
      if k < n then fill_above t k ~version:v ~addr
      else if not (any_full t) then begin
        let home = t.sh.home addr in
        let kind = miss_kind t ~writer:w ~home in
        let ready = Memsys.request t.sh.mem ~proc:t.proc ~home ~kind ~line ~now in
        ignore
          (allocate t addr ~ready ~has_read:false ~has_write:false
             ~prefetch_only:true);
        fill_all t ~version:v ~addr;
        t.prefetch_miss_count <- t.prefetch_miss_count + 1
      end

(* ------------------------------------------------------------------ *)

let cleanup t ~now =
  let any = ref false in
  Array.iter (fun lvl -> if Mshr.cleanup lvl.mshr ~now then any := true) t.levels;
  !any

let next_completion t =
  Array.fold_left (fun acc lvl -> min acc (Mshr.next_ready lvl.mshr)) max_int
    t.levels

(* Occupancy metrics read the last (memory-side) level: its file tracks
   exactly the memory-bound misses in flight — the paper's Figure 4
   "MSHRs at the L2". *)
let read_occupancy t = Mshr.read_occupancy (bottom t).mshr
let total_occupancy t = Mshr.occupancy (bottom t).mshr

(* (occupancy, capacity) of every level's MSHR file, processor side
   first — the watchdog's state dump *)
let mshr_occupancy_by_level t =
  Array.map (fun lvl -> (Mshr.occupancy lvl.mshr, Mshr.capacity lvl.mshr)) t.levels

(* statistics *)
let mem_misses t = t.mem_misses
let read_misses t = t.read_misses
let read_miss_latency_sum t = t.read_miss_lat
let l1_misses t = t.level_misses.(0)
let mshr_full_events t = t.mshr_full_count
let prefetches t = t.prefetch_count
let prefetch_misses t = t.prefetch_miss_count
let late_prefetches t = t.late_prefetch_count

let level_stats t =
  Array.mapi
    (fun i _ ->
      {
        Breakdown.lv_name = Printf.sprintf "L%d" (i + 1);
        lv_hits = t.level_hits.(i);
        lv_misses = t.level_misses.(i);
      })
    t.levels

let level_miss_counts t = t.level_misses

(* Re-apply the per-cycle retry statistics of a no-progress step [times]
   more times (event-mode idle replay): a load rejected on full MSHRs
   walks — and misses — every level again each retry cycle. *)
let replay_retry t ~miss_deltas ~mshr_full ~times =
  for i = 0 to Array.length t.level_misses - 1 do
    t.level_misses.(i) <- t.level_misses.(i) + (miss_deltas.(i) * times)
  done;
  t.mshr_full_count <- t.mshr_full_count + (mshr_full * times)

(* ------------------------------------------------------------------ *)
(* Functional warming (sampled mode): architectural side effects only —
   cache contents and coherence versions — with no timing, no MSHR
   allocation, no memory-system requests and no statistics. *)

let warm_read t addr =
  (* the MSHR files are almost always empty here (fast-forward runs after
     a functional drain), and the last level's file holds every in-flight
     miss; [Mshr.is_empty] is a field read, so this skips the per-level
     hash probes per warmed reference *)
  if Mshr.is_empty (bottom t).mshr || not (inflight_mem t addr) then begin
    (* uniprocessor coherence versions never move (a line's version only
       bumps when a different processor writes it), so the versions table
       probe is pure overhead there *)
    let v = if t.sh.nprocs = 1 then 0 else fst (version t (coh_line t addr)) in
    let n = Array.length t.levels in
    let rec probe k =
      if k >= n then n
      else if Cache.lookup t.levels.(k).cache ~version:v ~addr then k
      else probe (k + 1)
    in
    let k = probe 0 in
    (* fill the levels the access missed (all of them on a full miss) *)
    if k > 0 then fill_above t (min k n) ~version:v ~addr
  end

let warm_write t addr =
  let v' =
    if t.sh.nprocs = 1 then 0
    else begin
      let line = coh_line t addr in
      let v, w = version t line in
      let v' = if w <> t.proc && w >= 0 then v + 1 else v in
      Hashtbl.replace t.sh.versions line (v', t.proc);
      v'
    end
  in
  fill_all t ~version:v' ~addr

let reset_inflight t = Array.iter (fun lvl -> Mshr.reset lvl.mshr) t.levels
