type kind = Local | Remote | Dirty_remote

type t = {
  cfg : Config.t;
  nodes : int;
  (* split-transaction bus: the address (request) and data (reply) paths
     arbitrate independently, so replies do not block new requests *)
  abus_free : int array;  (* per node *)
  dbus_free : int array;
  bank_free : int array array;  (* node x bank *)
  mutable bus_busy_total : int;
  mutable bank_busy_total : int;
  (* fault injection (None on the happy path: zero cost, bit-identical) *)
  inj : Faults.injector option;
}

(* 2D-mesh Manhattan distance between two nodes laid out row-major on the
   smallest square mesh holding them *)
let mesh_hops ~nprocs a b =
  if a = b then 0
  else begin
    let side = int_of_float (Float.ceil (sqrt (float_of_int nprocs))) in
    let side = max 1 side in
    abs ((a mod side) - (b mod side)) + abs ((a / side) - (b / side))
  end

let create (cfg : Config.t) ~nprocs =
  let nodes = if cfg.Config.smp then 1 else nprocs in
  {
    cfg;
    nodes;
    abus_free = Array.make nodes 0;
    dbus_free = Array.make nodes 0;
    bank_free = Array.make_matrix nodes cfg.Config.banks 0;
    bus_busy_total = 0;
    bank_busy_total = 0;
    inj =
      (match Config.resolve_faults cfg with
      | Some p when Faults.is_active p -> Some (Faults.make p)
      | _ -> None);
  }

(* Bank selection: permutation interleaving XOR-folds higher line bits so
   power-of-two strides spread across banks (Sohi); skewed interleaving
   adds a line-dependent skew (Harper & Jump). *)
let bank_of t line =
  let b = t.cfg.Config.banks in
  if t.cfg.Config.skewed_interleave then (line + (line / b)) mod b
  else (line lxor (line lsr 4) lxor (line lsr 8)) mod b

let request t ~proc ~home ~kind ~line ~now =
  let cfg = t.cfg in
  let fault =
    match t.inj with Some i -> Faults.inject i | None -> Faults.no_fault
  in
  (* a NACKed request spends its backoff before re-arbitrating the bus *)
  let now = now + fault.Faults.pre_delay in
  let req_node = if cfg.Config.smp then 0 else proc in
  let home_node = if cfg.Config.smp then 0 else home in
  (* request on the requester's address bus *)
  let t1 = max now t.abus_free.(req_node) + cfg.Config.bus_req_occ in
  t.abus_free.(req_node) <- t1;
  t.bus_busy_total <- t.bus_busy_total + cfg.Config.bus_req_occ;
  (* home bank occupancy (a transient stall keeps the bank busy longer,
     back-pressuring later requests to the same bank) *)
  let b = bank_of t line in
  let bank_occ = cfg.Config.bank_busy + fault.Faults.bank_extra in
  let t2 = max t1 t.bank_free.(home_node).(b) + bank_occ in
  t.bank_free.(home_node).(b) <- t2;
  t.bank_busy_total <- t.bank_busy_total + bank_occ;
  (* reply on the requester's data bus *)
  let t3 = max t2 t.dbus_free.(req_node) + cfg.Config.bus_data_occ in
  t.dbus_free.(req_node) <- t3;
  t.bus_busy_total <- t.bus_busy_total + cfg.Config.bus_data_occ;
  let hops =
    if cfg.Config.smp || kind = Local then 0
    else mesh_hops ~nprocs:t.nodes proc home
  in
  let total_uncontended =
    match kind with
    | Local -> cfg.Config.mem_lat
    | Remote -> cfg.Config.remote_lat + (hops * cfg.Config.hop_cycles)
    | Dirty_remote -> cfg.Config.c2c_lat + (hops * cfg.Config.hop_cycles)
  in
  let occupancies =
    cfg.Config.bus_req_occ + cfg.Config.bank_busy + cfg.Config.bus_data_occ
  in
  t3 + max 0 (total_uncontended - occupancies) + fault.Faults.fill_delay

(* Carry the queueing backlog across a sampled-mode fast-forward leg:
   busy-until times still in the future when the clock jumps keep their
   distance to it (the skipped traffic is assumed to sustain the same
   pressure), while already-idle resources stay idle. Without this, every
   detailed window would open on an uncontended memory system and
   under-measure steady-state latency. *)
let shift t ~from ~by =
  for n = 0 to t.nodes - 1 do
    if t.abus_free.(n) > from then t.abus_free.(n) <- t.abus_free.(n) + by;
    if t.dbus_free.(n) > from then t.dbus_free.(n) <- t.dbus_free.(n) + by;
    let banks = t.bank_free.(n) in
    for b = 0 to Array.length banks - 1 do
      if banks.(b) > from then banks.(b) <- banks.(b) + by
    done
  done

let bus_busy t = t.bus_busy_total
let bank_busy t = t.bank_busy_total
let fault_stats t = Option.map Faults.stats t.inj

let bus_utilization t ~upto =
  if upto <= 0 then 0.0
  else float_of_int t.bus_busy_total /. float_of_int (upto * t.nodes)

let bank_utilization t ~upto =
  if upto <= 0 then 0.0
  else
    float_of_int t.bank_busy_total
    /. float_of_int (upto * t.nodes * t.cfg.Config.banks)
