(** Execution-time breakdown, following the paper's retire-slot attribution
    (§5.2): each cycle contributes retired/retire_width to busy time and
    the remainder to the stall category of the first instruction that
    could not retire. *)

type t = {
  mutable busy : float;
  mutable cpu_stall : float;  (** functional-unit / pipeline stalls *)
  mutable data_stall : float;  (** read-miss (and write-buffer) stalls *)
  mutable sync_stall : float;  (** barrier waiting *)
}

val create : unit -> t
val total : t -> float

val cpu : t -> float
(** busy + cpu_stall — the paper's "CPU" component. *)

val add : t -> t -> unit
val scale : t -> float -> t
val pp : Format.formatter -> t -> unit

(** {2 Per-level demand-load attribution}

    One row per hierarchy level (processor side first), replacing the old
    hardcoded L1/L2 counter pair: hits and misses of demand loads probing
    that level. A load that misses every level appears as a miss in each
    row; level [k]'s hits are loads satisfied there after missing levels
    above. *)

type level_stat = {
  lv_name : string;
  mutable lv_hits : int;
  mutable lv_misses : int;
}

val level_create : string -> level_stat
val level_add : level_stat -> level_stat -> unit
val pp_levels : Format.formatter -> level_stat array -> unit
