(** Set-associative LRU cache with coherence version tags.

    Each cached line remembers the global version it was fetched at; a
    lookup only hits when the global version is unchanged (another
    processor's intervening write invalidates the copy — an
    invalidation-based protocol at trace granularity). One instance per
    {!Hierarchy} level. *)

type t

val create : bytes:int -> assoc:int -> line:int -> t

val lookup : t -> version:int -> addr:int -> bool
(** [lookup c ~version ~addr] — true on a coherent hit; updates LRU. *)

val resident : t -> version:int -> addr:int -> bool
(** Like {!lookup} but side-effect-free (no LRU refresh): state
    inspection for tests, never a simulated access. *)

val fill : t -> version:int -> addr:int -> unit
(** Insert the line, tagged with [version]: an already-present copy of
    the same line is re-tagged in place (stale-version refresh), else the
    set's LRU way is evicted. *)

val line_of : t -> int -> int
(** Line number of a byte address. *)

val assoc : t -> int
val sets : t -> int
val line_size : t -> int
