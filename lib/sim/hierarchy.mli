(** The per-processor memory hierarchy: a stack of cache levels — each
    with its own geometry, hit latency and {!Mshr} file — terminating in
    the shared banked {!Memsys}.

    The stack owns the whole miss lifecycle (lookup, MSHR
    allocate/coalesce, fill on completion, stale-version invalidation)
    and exposes only completion-time / retry signals; the pipeline in
    {!Core} never sees cache geometry or MSHR internals.

    A hit at level [k] is a pipelined access at that level's latency and
    refills the levels above. A miss past the last level allocates one
    shared {!Mshr.entry} in every level's file (each under its own line
    key), so the smallest file bounds outstanding misses — the paper's
    [lp] — and a same-line access at any level coalesces onto the entry.
    Coherence and memory transfers use the last level's line size. *)

type shared = {
  cfg : Config.t;
  mem : Memsys.t;
  versions : (int, int * int) Hashtbl.t;
      (** line -> (coherence version, last writer) *)
  home : int -> int;  (** home node of a byte address *)
  nprocs : int;
}

type t

val make_shared : Config.t -> nprocs:int -> home:(int -> int) -> shared

val create : shared -> proc:int -> t
(** One hierarchy per processor, built from [cfg.levels]. Raises
    [Invalid_argument] on an empty stack. *)

val depth : t -> int

val read : t -> now:int -> int -> int option
(** Demand load at a byte address: [Some completion_cycle], or [None]
    when the miss could not allocate an MSHR at some level (retry next
    cycle; counted in {!mshr_full_events}). Coalesces onto an in-flight
    same-line miss, catching late prefetches. *)

val write : t -> now:int -> int -> int option
(** Write-buffer drain access (write-allocate, ownership via coherence
    versions): [Some completion_cycle] or [None] on a full MSHR file
    (not counted — the buffered store retries silently). *)

val prefetch : t -> now:int -> int -> unit
(** Non-binding prefetch hint: fills on hit paths, allocates a
    [prefetch_only] MSHR on a memory miss, dropped when the line is
    present/in flight or no MSHR is free. *)

val cleanup : t -> now:int -> bool
(** Retire completed misses from every level's file; true when any
    in-flight miss completed (a state change for the event loop). *)

val next_completion : t -> int
(** Earliest pending miss completion across the stack; [max_int] when
    none are in flight. *)

val read_occupancy : t -> int
(** In-flight misses with a demand read, measured at the last
    (memory-side) level — the paper's Figure 4 metric. *)

val total_occupancy : t -> int

val mshr_occupancy_by_level : t -> (int * int) array
(** [(occupancy, capacity)] of every level's MSHR file, processor side
    first — the watchdog's deadlock state dump. *)

(** {2 Statistics} *)

val mem_misses : t -> int
(** Demand accesses (reads + drained writes) that went to memory — the
    legacy "L2 misses" counter, now hierarchy-depth independent. *)

val read_misses : t -> int
val read_miss_latency_sum : t -> float

val l1_misses : t -> int
(** Demand loads missing the first level (= [level_stats].(0).lv_misses). *)

val mshr_full_events : t -> int
val prefetches : t -> int
val prefetch_misses : t -> int
val late_prefetches : t -> int

val level_stats : t -> Breakdown.level_stat array
(** Fresh per-level demand-load hit/miss rows, processor side first. *)

val level_miss_counts : t -> int array
(** The live per-level demand-load miss counters (do not mutate): for
    delta snapshots in {!Core.step}. *)

val replay_retry : t -> miss_deltas:int array -> mshr_full:int -> times:int -> unit
(** Re-apply the per-cycle retry statistics of a no-progress step [times]
    more times (event-mode idle replay, see {!Core.replay_idle}). *)

(** {2 Functional warming (sampled mode)}

    Architectural side effects only — cache contents, coherence
    versions — with no timing, MSHR traffic or statistics. *)

val warm_read : t -> int -> unit
val warm_write : t -> int -> unit

val reset_inflight : t -> unit
(** Drop all in-flight misses from every level (functional drain). *)
