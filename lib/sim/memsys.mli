(** Banked, bussed memory-system timing model.

    Each node owns a split-transaction bus and a set of interleaved memory
    banks (one shared node in SMP mode). A request occupies the requester's
    bus (request), the home node's bank, and the requester's bus again
    (data return); the remaining uncontended latency is added as a fixed
    pipeline term so the total matches the configured local / remote /
    cache-to-cache latencies when there is no contention. *)

type t

type kind = Local | Remote | Dirty_remote

val create : Config.t -> nprocs:int -> t

val request : t -> proc:int -> home:int -> kind:kind -> line:int -> now:int -> int
(** Completion cycle of a miss issued at [now]. Mutates bus and bank
    reservations (contention). *)

val shift : t -> from:int -> by:int -> unit
(** Carry the queueing backlog across a sampled-mode clock jump: every
    bus/bank busy-until time later than [from] moves [by] cycles later,
    keeping its distance to the jumped clock; already-idle resources are
    untouched. Exact modes never call this. *)

val bus_busy : t -> int
(** Total cycles of bus occupancy accumulated (all nodes). *)

val bank_busy : t -> int

val fault_stats : t -> Faults.stats option
(** Counters of the fault injector, if this config resolved to an active
    fault plan ({!Config.resolve_faults}); [None] on fault-free runs. *)

val bus_utilization : t -> upto:int -> float
(** Average bus occupancy per node over the first [upto] cycles. *)

val bank_utilization : t -> upto:int -> float

val mesh_hops : nprocs:int -> int -> int -> int
(** Manhattan distance between two node ids on the smallest square 2D
    mesh holding [nprocs] nodes (exposed for tests). *)
