(** One level's MSHR (miss status holding register) file.

    A finite table of in-flight misses keyed by that level's line number,
    giving same-line coalescing: a second access to an in-flight line
    shares the existing entry instead of consuming a new one. The file
    size is the paper's outstanding-miss bound [lp] (the smallest file in
    a {!Hierarchy} stack governs, since a memory-bound miss holds an
    entry at every level).

    Entries are shared records: the {!Hierarchy} inserts one [entry] into
    every level's file (under each level's own line key), so flag updates
    (demand read arriving on a prefetch, write coalescing) are seen by
    all levels at once. [ready] must not change after insertion — the
    expiry heap indexes it. *)

type entry = {
  mutable ready : int;  (** completion cycle; fixed after insertion *)
  mutable has_read : bool;
  mutable has_write : bool;
  mutable prefetch_only : bool;
      (** allocated by a prefetch, no demand access yet *)
}

type t

val create : cap:int -> t

val capacity : t -> int
val occupancy : t -> int

val read_occupancy : t -> int
(** Entries with [has_read] (the paper's Figure 4 occupancy metric). *)

val is_empty : t -> bool
val full : t -> bool

val find : t -> int -> entry option
(** In-flight entry covering the given line, if any (coalescing probe). *)

val mem : t -> int -> bool
(** Allocation-free [find <> None]. *)

val insert : t -> line:int -> entry -> unit
(** Add an entry under [line] and schedule its expiry at [entry.ready];
    counts toward {!read_occupancy} if [has_read] is already set. The
    caller checks {!full} first. *)

val note_read : t -> unit
(** An in-flight entry just gained its first demand read (the caller
    flips [has_read] once and notifies every file holding the entry). *)

val cleanup : t -> now:int -> bool
(** Retire every entry whose [ready] has passed; true when at least one
    entry expired. *)

val next_ready : t -> int
(** Earliest pending completion; [max_int] when the file is empty. *)

val reset : t -> unit
(** Drop all in-flight entries (sampled-mode functional drain). *)
