(** Systematic-sampling estimator for the sampled simulation mode.

    The sampled machine loop alternates short detailed windows with
    functional fast-forward legs (see {!Fastfwd}). This module holds the
    sampling parameters, the per-window measurement record, and the
    extrapolation of whole-run statistics with per-metric 95% confidence
    intervals ({!Memclust_util.Stats.mean_ci} over per-window rates).

    Sampled mode is a reproduction aid for large problem sizes; it is not
    part of the paper's methodology. *)

type params = {
  period : int;  (** retired instructions per processor between window starts *)
  window : int;  (** detailed instructions per processor per window *)
  warmup : int;
      (** leading instructions of each window excluded from statistics
          (they re-warm the pipeline after a fast-forward leg) *)
}

val default : params
(** period 50 000, window 2 000, warmup 500. *)

val validate : params -> bool
(** [0 <= warmup < window < period]. *)

val parse : string -> params option
(** ["sampled"], ["sampled:PERIOD:WINDOW"] or
    ["sampled:PERIOD:WINDOW:WARMUP"] (case-insensitive); warmup defaults
    to a quarter of the window. [None] on anything else, including
    parameter triples that fail {!validate}. *)

val to_string : params -> string

(** One detailed window's measured statistics: counter deltas between the
    end of the warm-up prefix and the end of the window, summed over
    processors. *)
type sample = {
  s_cycles : int;
  s_instructions : int;
  s_l2_misses : int;
  s_read_misses : int;
  s_read_miss_lat : float;  (** sum of per-miss latencies, cycles *)
  s_l1_misses : int;
  s_mshr_full : int;
  s_wbuf_full : int;
  s_prefetches : int;
  s_prefetch_misses : int;
  s_late_prefetches : int;
  s_level_hits : int array;
      (** demand-load hits per hierarchy level, processor side first *)
  s_level_misses : int array;
}

type ci = { est : float; half : float }
(** A point estimate with the half-width of its 95% confidence interval. *)

val in_ci : ci -> float -> bool
(** [in_ci c v]: does [v] lie within the interval? *)

type estimate = {
  windows : int;
  total_instructions : int;
  measured_instructions : int;
  detailed_cycles : int;  (** cycles spent in detailed windows (measured part) *)
  cycles_ci : ci;
  l2_misses_ci : ci;
  read_misses_ci : ci;
  read_miss_latency_ci : ci;  (** average cycles per read miss *)
}

val extrapolate_count :
  sample list -> total:int -> (sample -> int) -> int
(** Pooled per-instruction ratio estimate of a counter, scaled to [total]
    instructions and rounded — the point estimator behind the interval
    metrics, exposed for the counters the estimate does not interval. *)

val estimate :
  params ->
  total_instructions:int ->
  estimated_cycles:int ->
  sample list ->
  estimate
(** Extrapolate. Counters use the pooled per-instruction ratio estimator
    scaled to [total_instructions]; the cycle count is [estimated_cycles]
    (the engine clock, which already integrates the CPI-charged
    fast-forward legs) with a confidence term from the per-window CPI
    spread. Every interval is additionally widened by a small fraction of
    its point estimate as an allowance for the estimator's systematic
    biases (warm-up length, fast-forward CPI) — see DESIGN.md. *)

val pp : Format.formatter -> estimate -> unit
val pp_ci : Format.formatter -> ci -> unit
