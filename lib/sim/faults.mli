(** Deterministic memory-system fault injection.

    A {!plan} describes an unreliable memory system as probabilities and
    magnitudes for three fault classes, all drawn from one seeded
    {!Memclust_util.Rng} stream:

    - {b delayed fills} — the reply takes up to [delay_cycles] extra;
    - {b NACKed responses} — the home node refuses the request and the
      requester retries with bounded exponential backoff
      ([nack_backoff * 2^k] for the k-th retry, at most
      [nack_max_retries] rounds, after which the request must be
      accepted so forward progress is preserved);
    - {b transient bank stalls} — the target bank stays busy up to
      [stall_cycles] extra, back-pressuring later requests to it.

    Fault streams are deterministic: the same (plan, request sequence)
    produces the same injections, so faulty runs are exactly
    reproducible from the seed. A plan with all probabilities zero is
    bit-identical to no plan at all. *)

type plan = {
  seed : int;
  delay_prob : float;
  delay_cycles : int;
  nack_prob : float;
  nack_backoff : int;
  nack_max_retries : int;
  stall_prob : float;
  stall_cycles : int;
}

type stats = {
  mutable requests : int;
  mutable delayed : int;
  mutable nacked : int;
  mutable stalled : int;
  mutable extra_cycles : int;
}

type injector
(** The mutable side: plan + RNG position + counters. One per memory
    system instance. *)

val plan :
  ?delay_prob:float ->
  ?delay_cycles:int ->
  ?nack_prob:float ->
  ?nack_backoff:int ->
  ?nack_max_retries:int ->
  ?stall_prob:float ->
  ?stall_cycles:int ->
  seed:int ->
  unit ->
  plan
(** All probabilities default to 0 (no faults); magnitudes default to
    200-cycle max delay, 16-cycle base backoff with 4 retries, 100-cycle
    max stall. Raises [Invalid_argument] naming any out-of-range value. *)

val scaled : seed:int -> float -> plan
(** [scaled ~seed rate] is the standard chaos plan: delay probability
    [rate], NACK and stall probabilities [rate/2], default magnitudes.
    [rate] is clamped to [0,1]. *)

val none : plan
(** All-zero probabilities: injects nothing. *)

val is_active : plan -> bool
(** False iff every probability is zero. *)

val of_string : string -> (plan, string) result
(** Parse ["SEED"] or ["SEED:RATE"] into [scaled ~seed rate]
    (rate defaults to 0.05). *)

val to_string : plan -> string

val of_env : unit -> plan option
(** The [MEMCLUST_FAULTS] environment variable in {!of_string} syntax;
    [None] when unset or empty. Raises [Invalid_argument] on a
    malformed value. *)

val make : plan -> injector

type decision = {
  pre_delay : int;  (** NACK backoff served before the bank access *)
  bank_extra : int;  (** transient stall: extra bank occupancy *)
  fill_delay : int;  (** slow fill: extra cycles on the reply *)
}

val no_fault : decision

val inject : injector -> decision
(** Decide the faults for the next memory request, advancing the RNG in
    a fixed draw order and updating the counters. *)

val stats : injector -> stats
val pp_stats : Format.formatter -> stats -> unit
