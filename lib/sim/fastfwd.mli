(** Functional fast-forward between detailed sampling windows.

    Processes a slice of one processor's trace at memory-reference speed:
    no instruction window, no issue logic, no memory-system timing — just
    the architectural side effects that the next detailed window's
    locality depends on (L1/L2 contents, coherence versions, barrier
    progress, write-buffer occupancy), applied through {!Core}'s warm
    path. Time is charged as a calibrated CPI (taken from the preceding
    detailed window). *)

type charge = {
  ff_instructions : int;  (** trace entries skipped *)
  ff_cycles : int;  (** cycles to advance the clock by *)
}

val run :
  Core.t -> ?max_barriers:int -> upto:int -> cpi:float -> unit -> charge
(** [run core ~upto ~cpi ()] drains the core's in-flight reads
    functionally, warm-processes trace entries from the current
    {!Core.position} up to (excluding) [upto] (clamped to the trace
    length), and repositions the core there with an empty pipeline.
    [ff_cycles] is [⌈cpi · ff_instructions⌉]. Stops early just before the
    [max_barriers+1]-th barrier in the slice, so the caller can bound the
    barrier-progress skew between processors whose traces interleave
    barriers at different instruction densities. Safe on a finished or
    empty slice. *)
