(** Simulated machine configurations (paper Table 1 and §4.1).

    All latencies are in processor cycles; the uncontended end-to-end
    memory latencies ([mem_lat], [remote_lat], [c2c_lat]) already include
    the bus and bank occupancies, which the memory system subtracts when
    computing contention. *)

type t = {
  name : string;
  clock_mhz : int;
  (* core *)
  fetch_width : int;
  issue_width : int;
  retire_width : int;
  window : int;
  max_branches : int;
  alus : int;
  fpus : int;
  addr_units : int;
  (* caches *)
  line : int;  (** cache line size, bytes *)
  l1_bytes : int;
  l1_assoc : int;
  l1_lat : int;
  l2_bytes : int option;  (** [None]: single-level hierarchy (Exemplar) *)
  l2_assoc : int;
  l2_lat : int;
  mshrs : int;
  write_buffer : int;
  (* memory system *)
  mem_lat : int;  (** local memory, uncontended *)
  remote_lat : int;  (** remote (home on another node), uncontended *)
  c2c_lat : int;  (** cache-to-cache (dirty on another node), uncontended *)
  hop_cycles : int;
      (** additional cycles per Manhattan hop on the 2D mesh (Table 1's
          flit delay); remote latencies are minimum + hops x this *)
  banks : int;
  bank_busy : int;  (** bank occupancy per access *)
  bus_req_occ : int;  (** bus occupancy of the request *)
  bus_data_occ : int;  (** bus occupancy of the line transfer *)
  skewed_interleave : bool;  (** skewed vs permutation bank interleaving *)
  smp : bool;  (** true: one bus + one bank set shared by all processors
                   (Exemplar hypernode); false: CC-NUMA per-node memory *)
  sim_mode : string option;
      (** simulation mode override for runs of this config, in
          {!Machine.mode_of_string} syntax (["cycle"], ["event"],
          ["sampled\[:period:window\[:warmup\]\]"]). [None] (the presets'
          value) defers to the [MEMCLUST_SIM_MODE] environment variable,
          then the exact event-driven mode. *)
}

val base : t
(** The paper's base system: 500 MHz, 4-wide, 64-entry window, 16 KB L1,
    64 KB 4-way L2, 10 MSHRs, 64 B lines, 85-cycle local memory. *)

val with_l2 : int -> t -> t
(** Override the L2 size (Table 1 uses 64 KB or 1 MB per application). *)

val with_sim_mode : string -> t -> t
(** Pin the simulation mode for runs of this config (parsed by
    {!Machine.resolve_mode} at run time; an unparsable string fails
    there). *)

val ghz : t -> t
(** 1 GHz variant: identical memory system in ns, so all memory-side
    latencies double in cycles (§5.2). *)

val exemplar_like : t
(** Convex Exemplar-like SMP node: 4-wide PA-8000-ish core, 56-entry
    window, single-level 1 MB cache with 32 B lines, 10 outstanding
    misses, skewed interleaving, shared bus and banks. *)

val pp : Format.formatter -> t -> unit
