(** Simulated machine configurations (paper Table 1 and §4.1).

    The cache hierarchy is a list of {!level}s, processor side first; the
    last level is the memory-side one, whose line size sets the coherence
    and memory-transfer granularity. All latencies are in processor
    cycles; the uncontended end-to-end memory latencies ([mem_lat],
    [remote_lat], [c2c_lat]) already include the bus and bank occupancies,
    which the memory system subtracts when computing contention. *)

type level = {
  bytes : int;  (** capacity, bytes (power of two) *)
  assoc : int;  (** set associativity *)
  line : int;  (** line size, bytes (power of two) *)
  lat : int;  (** hit latency at this level, cycles *)
  mshrs : int;  (** MSHR file capacity at this level *)
}

type t = {
  name : string;
  clock_mhz : int;
  (* core *)
  fetch_width : int;
  issue_width : int;
  retire_width : int;
  window : int;
  max_branches : int;
  alus : int;
  fpus : int;
  addr_units : int;
  (* memory hierarchy, processor side first *)
  levels : level list;
  write_buffer : int;
  (* memory system *)
  mem_lat : int;  (** local memory, uncontended *)
  remote_lat : int;  (** remote (home on another node), uncontended *)
  c2c_lat : int;  (** cache-to-cache (dirty on another node), uncontended *)
  hop_cycles : int;
      (** additional cycles per Manhattan hop on the 2D mesh (Table 1's
          flit delay); remote latencies are minimum + hops x this *)
  banks : int;
  bank_busy : int;  (** bank occupancy per access *)
  bus_req_occ : int;  (** bus occupancy of the request *)
  bus_data_occ : int;  (** bus occupancy of the line transfer *)
  skewed_interleave : bool;  (** skewed vs permutation bank interleaving *)
  smp : bool;  (** true: one bus + one bank set shared by all processors
                   (Exemplar hypernode); false: CC-NUMA per-node memory *)
  sim_mode : string option;
      (** simulation mode override for runs of this config, in
          {!Machine.mode_of_string} syntax (["cycle"], ["event"],
          ["sampled\[:period:window\[:warmup\]\]"]). [None] (the presets'
          value) defers to the [MEMCLUST_SIM_MODE] environment variable,
          then the exact event-driven mode. *)
  faults : Faults.plan option;
      (** fault-injection plan for the memory system of runs of this
          config. [None] (the presets' value) defers to the
          [MEMCLUST_FAULTS] environment variable, then no faults. *)
}

val levels : t -> level list
val depth : t -> int

val line : t -> int
(** Coherence / memory-transfer line size: the last (memory-side)
    level's. *)

val lp : t -> int
(** The outstanding-miss bound: a miss holds an MSHR at every level, so
    the smallest file in the stack caps memory parallelism (the paper's
    [lp]). 0 for an empty stack. *)

val base : t
(** The paper's base system: 500 MHz, 4-wide, 64-entry window, 16 KB L1,
    64 KB 4-way L2, 10 MSHRs per level, 64 B lines, 85-cycle local
    memory. *)

val exemplar_like : t
(** Convex Exemplar-like SMP node: 4-wide PA-8000-ish core, 56-entry
    window, single-level 1 MB cache with 32 B lines, 10 outstanding
    misses, skewed interleaving, shared bus and banks. *)

val three_level : t
(** Base core over a 3-level stack (16 KB L1 / 64 KB L2 / 512 KB L3) with
    MSHR files shrinking toward memory (lp = 10 at the L3). *)

val with_levels : level list -> t -> t

val with_l2 : int -> t -> t
(** Resize the last (memory-side) level of a multi-level stack (Table 1
    uses 64 KB or 1 MB per application). No-op on a single-level
    hierarchy. *)

val with_mshrs : int -> t -> t
(** Set every level's MSHR file capacity (so [lp] becomes that value on a
    uniform stack). *)

val with_line : int -> t -> t
(** Set every level's line size. *)

val with_sim_mode : string -> t -> t
(** Pin the simulation mode for runs of this config (parsed by
    {!Machine.resolve_mode} at run time; an unparsable string fails
    there). *)

val with_faults : Faults.plan -> t -> t
(** Pin a fault-injection plan for runs of this config. *)

val resolve_faults : t -> Faults.plan option
(** The plan actually used: the [faults] field if set, otherwise
    [MEMCLUST_FAULTS] from the environment, otherwise [None]. *)

val ghz : t -> t
(** 1 GHz variant: identical memory system in ns, so all memory-side
    latencies (every level but the L1 included) double in cycles (§5.2). *)

val validate : t -> (unit, Memclust_util.Error.t) result
(** Structural sanity: at least one level; positive widths, window,
    functional units, write buffer, banks and per-level MSHR counts;
    power-of-two line and cache sizes; capacity at least one set; sizes
    and line sizes non-decreasing toward memory. Errors are
    [Config_invalid] naming the config and the offending field. *)

val validate_exn : t -> unit
(** Raises [Invalid_argument] with {!validate}'s rendered message. *)

val pp : Format.formatter -> t -> unit
