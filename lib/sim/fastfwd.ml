open Memclust_codegen

type charge = { ff_instructions : int; ff_cycles : int }

let run core ?(max_barriers = max_int) ~upto ~cpi () =
  let trace = Core.trace core in
  let from = Core.position core in
  let upto = min upto (Trace.length trace) in
  (* complete the in-flight reads first: their cache effects must land
     before the slice replays on top of them; buffered stores apply their
     coherence effects but stay queued so the next detailed window opens
     under realistic write-buffer pressure *)
  Core.drain_functional core;
  let i = ref from in
  let barriers = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < upto do
    (match Trace.kind trace !i with
    | Trace.Load ->
        Core.warm_read core (Trace.aux trace !i);
        incr i
    | Trace.Store ->
        Core.warm_store core (Trace.aux trace !i);
        incr i
    | Trace.Prefetch_op ->
        Core.warm_prefetch core (Trace.aux trace !i);
        incr i
    | Trace.Barrier_op ->
        if !barriers >= max_barriers then stop := true
        else begin
          Core.warm_barrier core (Trace.aux trace !i);
          incr barriers;
          incr i
        end
    | Trace.Int_op | Trace.Fp_op | Trace.Branch -> incr i)
  done;
  Core.reposition core ~at:!i;
  let n = !i - from in
  { ff_instructions = n; ff_cycles = int_of_float (ceil (cpi *. float_of_int n)) }
