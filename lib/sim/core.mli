(** The out-of-order processor core.

    Models exactly the pipeline mechanisms the paper's effect depends on:
    a finite instruction window with in-order retire (up to retire_width
    per cycle), out-of-order issue bounded by functional units, and
    stores that retire into a write buffer before completing (release
    consistency). All memory behavior — cache lookups, MSHR
    allocation/coalescing, fills, coherence — lives in {!Hierarchy}; the
    core only consumes its completion-time / retry signals.

    One [t] per processor; all processors share a {!shared} context
    (memory system, coherence versions, barrier state). *)

open Memclust_codegen

type shared = {
  h : Hierarchy.shared;
      (** memory-side shared state (config, memory system, coherence
          versions, home map) *)
  reached : int array;  (** per-processor barrier progress *)
}

type t

val make_shared : Config.t -> nprocs:int -> home:(int -> int) -> shared
val create : shared -> proc:int -> Trace.t -> t

val step : t -> now:int -> unit
(** One cycle: MSHR cleanup, write-buffer drain, retire (with stall
    attribution), issue, fetch. Also records whether the cycle made
    progress (see {!progressed}) and the per-cycle statistic deltas
    needed by {!replay_idle}. *)

val progressed : t -> bool
(** Whether the last {!step} changed simulation state — retired, issued
    or fetched an instruction, drained or launched a memory operation,
    or advanced the shared barrier state — as opposed to only
    accumulating per-cycle statistics (stall attribution, retry
    counters). A no-progress step is a fixed point: re-running it at any
    cycle before {!next_event} produces identical effects. *)

val next_event : t -> now:int -> int option
(** Earliest cycle strictly after [now] at which this core's behaviour
    can change on its own: the minimum over pending miss completions,
    draining write completions, and in-window issued instructions'
    completion times. [None] when nothing is pending (the core is either
    finished or waiting on another processor's barrier arrival). *)

val replay_idle : t -> times:int -> unit
(** Repeat the per-cycle statistic side effects of the last (no-progress)
    {!step} [times] more times: stall-category attribution and the
    per-cycle per-level-miss / MSHR-full retry counters. Used by the
    event-driven machine loop to account for skipped stall cycles;
    bit-identical to stepping cycle by cycle. Only meaningful when the
    last step made no progress. *)

val finished : t -> bool
val breakdown : t -> Breakdown.t

val mshr_read_occupancy : t -> int
(** In-flight misses holding a demand read (measured at the memory-side
    MSHR file, see {!Hierarchy.read_occupancy}). *)

val mshr_total_occupancy : t -> int

val l2_misses : t -> int
(** Demand accesses that went to memory (reads + drained writes) — the
    legacy name for {!Hierarchy.mem_misses}. *)

val read_misses : t -> int

val read_miss_latency_sum : t -> float
(** Sum over demand read misses of request-to-completion cycles. *)

val retired_instructions : t -> int

val l1_misses : t -> int
(** demand-load misses at the first hierarchy level *)

val mshr_full_events : t -> int
(** load-issue attempts rejected because some MSHR file was full *)

val wbuf_full_events : t -> int
(** Stores whose issue was delayed by at least one cycle because the
    write buffer (pending + in-flight writes) was full. Counted once per
    stalled store instruction, when it is first rejected — retry cycles
    of the same store do not count again, and a store that issues on its
    first attempt never counts. *)

val prefetches : t -> int
(** prefetch hints issued *)

val prefetch_misses : t -> int
(** prefetches that actually fetched a line from memory *)

val late_prefetches : t -> int
(** demand loads that caught a still-in-flight prefetch *)

val level_stats : t -> Breakdown.level_stat array
(** Per-level demand-load hit/miss rows (see {!Hierarchy.level_stats}). *)

val hierarchy_depth : t -> int

val mshr_occupancy_by_level : t -> (int * int) array
(** This processor's per-level MSHR [(occupancy, capacity)] pairs (see
    {!Hierarchy.mshr_occupancy_by_level}); for deadlock state dumps. *)

(** {2 Functional warming (sampled mode)}

    Architectural side effects only — cache contents, coherence versions,
    barrier progress — with no timing, no MSHR allocation and no
    statistics. Used by {!Fastfwd} to keep locality state warm between
    detailed windows. *)

val trace : t -> Trace.t
val position : t -> int
(** Index of the oldest unretired instruction (the window head). *)

val shared : t -> shared

val warm_read : t -> int -> unit
val warm_write : t -> int -> unit
val warm_prefetch : t -> int -> unit

val warm_store : t -> int -> unit
(** {!warm_write} plus write-buffer occupancy: the address stays queued
    (bounded by the buffer capacity, oldest dropped) so the next detailed
    window opens under realistic write-buffer pressure — store-bound codes
    are limited by the drain rate, which an empty buffer under-measures. *)

val warm_barrier : t -> int -> unit
(** Advance this processor's barrier progress to at least the given
    sequence number. Monotone, so passing barriers during fast-forward can
    only release detailed-mode waiters, never deadlock them. *)

val drain_functional : t -> unit
(** Functionally complete the in-flight reads: apply buffered stores'
    coherence effects (the store queue itself persists, see
    {!warm_store}), empty every level's MSHR file. Must be followed by
    {!reposition} before detailed stepping resumes. *)

val reposition : t -> at:int -> unit
(** Restart the pipeline at trace index [at] with an empty window, as if
    everything before [at] had retired. Statistics counters are not
    touched. *)
