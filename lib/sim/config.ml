(* A cache level: one entry of the hierarchy stack, processor side first.
   The last level is the memory-side one — its line size is the coherence
   and memory-transfer granularity. *)
type level = {
  bytes : int;
  assoc : int;
  line : int;
  lat : int;  (* hit latency, cycles *)
  mshrs : int;  (* MSHR file capacity at this level *)
}

type t = {
  name : string;
  clock_mhz : int;
  fetch_width : int;
  issue_width : int;
  retire_width : int;
  window : int;
  max_branches : int;
  alus : int;
  fpus : int;
  addr_units : int;
  levels : level list;
  write_buffer : int;
  mem_lat : int;
  remote_lat : int;
  c2c_lat : int;
  hop_cycles : int;
  banks : int;
  bank_busy : int;
  bus_req_occ : int;
  bus_data_occ : int;
  skewed_interleave : bool;
  smp : bool;
  sim_mode : string option;
  faults : Faults.plan option;
}

let levels t = t.levels
let depth t = List.length t.levels

let last_level t =
  match List.rev t.levels with
  | l :: _ -> l
  | [] -> invalid_arg (t.name ^ ": config has no cache levels")

(* coherence / memory-transfer line size: the memory-side level's *)
let line t = (last_level t).line

(* the outstanding-miss bound lp: a miss needs an MSHR at every level, so
   the smallest file in the stack caps memory parallelism *)
let lp t =
  match t.levels with
  | [] -> 0
  | ls -> List.fold_left (fun acc l -> min acc l.mshrs) max_int ls

let base =
  {
    name = "base-500MHz";
    clock_mhz = 500;
    fetch_width = 4;
    issue_width = 4;
    retire_width = 4;
    window = 64;
    max_branches = 16;
    alus = 2;
    fpus = 2;
    addr_units = 2;
    levels =
      [
        { bytes = 16 * 1024; assoc = 1; line = 64; lat = 1; mshrs = 10 };
        { bytes = 64 * 1024; assoc = 4; line = 64; lat = 10; mshrs = 10 };
      ];
    write_buffer = 32;
    mem_lat = 85;
    (* minimum (adjacent-node) latencies; the 2D mesh adds hop_cycles per
       Manhattan hop, reproducing Table 1's 180-260 / 210-310 ranges *)
    remote_lat = 180;
    c2c_lat = 210;
    hop_cycles = 12;
    banks = 4;
    bank_busy = 25;
    bus_req_occ = 2;
    bus_data_occ = 6;
    skewed_interleave = false;
    smp = false;
    sim_mode = None;
    faults = None;
  }

let exemplar_like =
  {
    base with
    name = "exemplar-like";
    clock_mhz = 180;
    window = 56;
    levels = [ { bytes = 1024 * 1024; assoc = 4; line = 32; lat = 2; mshrs = 10 } ];
    mem_lat = 90;
    remote_lat = 110;
    c2c_lat = 140;
    hop_cycles = 0;
    banks = 8;
    bank_busy = 30;
    bus_req_occ = 2;
    bus_data_occ = 8;
    skewed_interleave = true;
    smp = true;
  }

(* A deeper stack than the paper's, for exercising >2-level hierarchies:
   base with a mid-sized L2 and a larger, slower L3, MSHR files shrinking
   toward memory (lp = the L3 file). *)
let three_level =
  {
    base with
    name = "base-3level";
    levels =
      [
        { bytes = 16 * 1024; assoc = 1; line = 64; lat = 1; mshrs = 16 };
        { bytes = 64 * 1024; assoc = 4; line = 64; lat = 10; mshrs = 12 };
        { bytes = 512 * 1024; assoc = 8; line = 64; lat = 30; mshrs = 10 };
      ];
  }

let with_levels levels t = { t with levels }

let map_last f ls =
  match List.rev ls with
  | last :: above -> List.rev (f last :: above)
  | [] -> []

let with_l2 bytes t =
  if depth t >= 2 then { t with levels = map_last (fun l -> { l with bytes }) t.levels }
  else t

let with_mshrs mshrs t =
  { t with levels = List.map (fun l -> { l with mshrs }) t.levels }

let with_line line t =
  { t with levels = List.map (fun l -> { l with line }) t.levels }

let with_sim_mode mode t = { t with sim_mode = Some mode }

let with_faults plan t = { t with faults = Some plan }

(* the plan for runs of this config: an explicit [faults] field wins,
   otherwise the MEMCLUST_FAULTS environment variable (how the repro CLI
   reaches configs constructed deep inside the harness) *)
let resolve_faults t =
  match t.faults with Some p -> Some p | None -> Faults.of_env ()

let ghz t =
  {
    t with
    name = t.name ^ "-1GHz";
    clock_mhz = t.clock_mhz * 2;
    (* the memory system is identical in ns, so every memory-side latency
       doubles in cycles; the L1 stays on the processor clock *)
    levels =
      List.mapi (fun i l -> if i = 0 then l else { l with lat = l.lat * 2 }) t.levels;
    mem_lat = t.mem_lat * 2;
    remote_lat = t.remote_lat * 2;
    c2c_lat = t.c2c_lat * 2;
    hop_cycles = t.hop_cycles * 2;
    bank_busy = t.bank_busy * 2;
    bus_req_occ = t.bus_req_occ * 2;
    bus_data_occ = t.bus_data_occ * 2;
  }

let is_pow2 v = v > 0 && v land (v - 1) = 0

let validate t =
  let err fmt =
    Printf.ksprintf
      (fun reason ->
        Error (Memclust_util.Error.Config_invalid { config = t.name; reason }))
      fmt
  in
  if t.levels = [] then err "at least one cache level is required"
  else if t.fetch_width <= 0 || t.issue_width <= 0 || t.retire_width <= 0 then
    err "pipeline widths must be positive"
  else if t.window <= 0 then err "window must be positive"
  else if t.max_branches <= 0 then err "max_branches must be positive"
  else if t.alus <= 0 || t.fpus <= 0 || t.addr_units <= 0 then
    err "functional-unit counts must be positive"
  else if t.write_buffer <= 0 then err "write buffer must be positive"
  else if t.banks <= 0 then err "bank count must be positive"
  else if t.clock_mhz <= 0 then err "clock must be positive"
  else begin
    let rec check i prev = function
      | [] -> Ok ()
      | l :: rest ->
          if l.mshrs <= 0 then err "L%d: mshrs must be positive" (i + 1)
          else if not (is_pow2 l.line) then
            err "L%d: line size %d is not a power of two" (i + 1) l.line
          else if not (is_pow2 l.bytes) then
            err "L%d: size %d is not a power of two" (i + 1) l.bytes
          else if l.assoc <= 0 then err "L%d: associativity must be positive" (i + 1)
          else if l.bytes < l.line * l.assoc then
            err "L%d: size %d below one set (%d-way x %dB lines)" (i + 1) l.bytes
              l.assoc l.line
          else if l.lat < 0 then err "L%d: negative latency" (i + 1)
          else
            match prev with
            | Some p when p.bytes > l.bytes ->
                err "L%d (%d bytes) is smaller than L%d (%d bytes)" (i + 1) l.bytes
                  i p.bytes
            | Some p when p.line > l.line ->
                err "L%d line (%dB) is smaller than L%d line (%dB)" (i + 1) l.line i
                  p.line
            | _ -> check (i + 1) (Some l) rest
    in
    check 0 None t.levels
  end

let validate_exn t =
  match validate t with
  | Ok () -> ()
  | Error e ->
      invalid_arg ("Config.validate: " ^ Memclust_util.Error.to_string e)

let pp_level ppf (i, l) =
  Format.fprintf ppf "L%d %dKB/%d-way %dB lat %d (%d MSHRs)" (i + 1)
    (l.bytes / 1024) l.assoc l.line l.lat l.mshrs

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: %d MHz, %d-wide, window %d, lp %d@,%a@,\
     memory %d/%d/%d cycles (local/remote/c2c), %d banks (%s), %s@]"
    t.name t.clock_mhz t.issue_width t.window (lp t)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
       pp_level)
    (List.mapi (fun i l -> (i, l)) t.levels)
    t.mem_lat t.remote_lat t.c2c_lat t.banks
    (if t.skewed_interleave then "skewed" else "permutation")
    (if t.smp then "SMP shared bus" else "CC-NUMA")
