type t = {
  name : string;
  clock_mhz : int;
  fetch_width : int;
  issue_width : int;
  retire_width : int;
  window : int;
  max_branches : int;
  alus : int;
  fpus : int;
  addr_units : int;
  line : int;
  l1_bytes : int;
  l1_assoc : int;
  l1_lat : int;
  l2_bytes : int option;
  l2_assoc : int;
  l2_lat : int;
  mshrs : int;
  write_buffer : int;
  mem_lat : int;
  remote_lat : int;
  c2c_lat : int;
  hop_cycles : int;
  banks : int;
  bank_busy : int;
  bus_req_occ : int;
  bus_data_occ : int;
  skewed_interleave : bool;
  smp : bool;
  sim_mode : string option;
}

let base =
  {
    name = "base-500MHz";
    clock_mhz = 500;
    fetch_width = 4;
    issue_width = 4;
    retire_width = 4;
    window = 64;
    max_branches = 16;
    alus = 2;
    fpus = 2;
    addr_units = 2;
    line = 64;
    l1_bytes = 16 * 1024;
    l1_assoc = 1;
    l1_lat = 1;
    l2_bytes = Some (64 * 1024);
    l2_assoc = 4;
    l2_lat = 10;
    mshrs = 10;
    write_buffer = 32;
    mem_lat = 85;
    (* minimum (adjacent-node) latencies; the 2D mesh adds hop_cycles per
       Manhattan hop, reproducing Table 1's 180-260 / 210-310 ranges *)
    remote_lat = 180;
    c2c_lat = 210;
    hop_cycles = 12;
    banks = 4;
    bank_busy = 25;
    bus_req_occ = 2;
    bus_data_occ = 6;
    skewed_interleave = false;
    smp = false;
    sim_mode = None;
  }

let with_l2 bytes t = { t with l2_bytes = Some bytes }

let with_sim_mode mode t = { t with sim_mode = Some mode }

let ghz t =
  {
    t with
    name = t.name ^ "-1GHz";
    clock_mhz = t.clock_mhz * 2;
    l2_lat = t.l2_lat * 2;
    mem_lat = t.mem_lat * 2;
    remote_lat = t.remote_lat * 2;
    c2c_lat = t.c2c_lat * 2;
    hop_cycles = t.hop_cycles * 2;
    bank_busy = t.bank_busy * 2;
    bus_req_occ = t.bus_req_occ * 2;
    bus_data_occ = t.bus_data_occ * 2;
  }

let exemplar_like =
  {
    name = "exemplar-like";
    clock_mhz = 180;
    fetch_width = 4;
    issue_width = 4;
    retire_width = 4;
    window = 56;
    max_branches = 16;
    alus = 2;
    fpus = 2;
    addr_units = 2;
    line = 32;
    l1_bytes = 1024 * 1024;
    l1_assoc = 4;
    l1_lat = 2;
    l2_bytes = None;
    l2_assoc = 1;
    l2_lat = 0;
    mshrs = 10;
    write_buffer = 32;
    mem_lat = 90;
    remote_lat = 110;
    c2c_lat = 140;
    hop_cycles = 0;
    banks = 8;
    bank_busy = 30;
    bus_req_occ = 2;
    bus_data_occ = 8;
    skewed_interleave = true;
    smp = true;
    sim_mode = None;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: %d MHz, %d-wide, window %d, %d MSHRs@,\
     L1 %dKB/%d-way, L2 %s, %dB lines@,\
     memory %d/%d/%d cycles (local/remote/c2c), %d banks (%s), %s@]"
    t.name t.clock_mhz t.issue_width t.window t.mshrs (t.l1_bytes / 1024)
    t.l1_assoc
    (match t.l2_bytes with
    | Some b -> Printf.sprintf "%dKB/%d-way lat %d" (b / 1024) t.l2_assoc t.l2_lat
    | None -> "none")
    t.line t.mem_lat t.remote_lat t.c2c_lat t.banks
    (if t.skewed_interleave then "skewed" else "permutation")
    (if t.smp then "SMP shared bus" else "CC-NUMA")
