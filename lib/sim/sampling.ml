open Memclust_util

type params = { period : int; window : int; warmup : int }

let default = { period = 50_000; window = 2_000; warmup = 500 }

let validate { period; window; warmup } =
  window > 0 && warmup >= 0 && warmup < window && period > window

let parse s =
  let checked t = if validate t then Some t else None in
  match String.split_on_char ':' (String.lowercase_ascii s) with
  | [ "sampled" ] -> Some default
  | [ "sampled"; p; w ] -> (
      match (int_of_string_opt p, int_of_string_opt w) with
      | Some period, Some window ->
          checked { period; window; warmup = max 1 (window / 4) }
      | _ -> None)
  | [ "sampled"; p; w; u ] -> (
      match (int_of_string_opt p, int_of_string_opt w, int_of_string_opt u) with
      | Some period, Some window, Some warmup ->
          checked { period; window; warmup }
      | _ -> None)
  | _ -> None

let to_string { period; window; warmup } =
  Printf.sprintf "sampled:%d:%d:%d" period window warmup

(* One detailed window's measured statistics (warm-up prefix excluded):
   deltas of the simulator's counters between the end of the warm-up and
   the end of the window. *)
type sample = {
  s_cycles : int;
  s_instructions : int;
  s_l2_misses : int;
  s_read_misses : int;
  s_read_miss_lat : float;  (* sum of per-miss latencies, cycles *)
  s_l1_misses : int;
  s_mshr_full : int;
  s_wbuf_full : int;
  s_prefetches : int;
  s_prefetch_misses : int;
  s_late_prefetches : int;
  s_level_hits : int array;  (* per hierarchy level, processor side first *)
  s_level_misses : int array;
}

type ci = { est : float; half : float }

let in_ci c v = Float.abs (v -. c.est) <= c.half

type estimate = {
  windows : int;
  total_instructions : int;
  measured_instructions : int;
  detailed_cycles : int;
  cycles_ci : ci;
  l2_misses_ci : ci;
  read_misses_ci : ci;
  read_miss_latency_ci : ci;
}

(* Systematic sampling is unbiased only in the CLT limit; two systematic
   error sources remain however many windows we take: cache/MSHR state at
   window entry depends on the warm-up length, and the fast-forward legs
   advance time by an extrapolated CPI. Widening every reported interval
   by this fraction of the point estimate (on top of the Student-t
   sampling term) keeps the intervals honest about that bias. *)
let bias_frac = 0.04

let widen c = { c with half = c.half +. (bias_frac *. Float.abs c.est) }

(* Per-instruction ratio estimator: the point estimate extrapolates the
   pooled per-instruction rate over the whole trace; the confidence term
   treats each window's rate as one sample of the mean rate. *)
let rate_ci samples ~total ~num =
  let measured =
    List.fold_left (fun a s -> a + s.s_instructions) 0 samples
  in
  let pooled = List.fold_left (fun a s -> a +. num s) 0.0 samples in
  let est =
    if measured = 0 then 0.0
    else pooled /. float_of_int measured *. float_of_int total
  in
  let rates =
    samples
    |> List.filter (fun s -> s.s_instructions > 0)
    |> List.map (fun s -> num s /. float_of_int s.s_instructions)
    |> Array.of_list
  in
  let _, half_rate = Stats.mean_ci rates in
  widen { est; half = half_rate *. float_of_int total }

(* Pooled-ratio point estimate for a counter, without a confidence term:
   used for the secondary counters the result record carries but the
   estimate does not interval. *)
let extrapolate_count samples ~total num =
  let measured =
    List.fold_left (fun a s -> a + s.s_instructions) 0 samples
  in
  if measured = 0 then 0
  else
    let pooled =
      List.fold_left (fun a s -> a + num s) 0 samples |> float_of_int
    in
    int_of_float
      (Float.round (pooled /. float_of_int measured *. float_of_int total))

let estimate params ~total_instructions ~estimated_cycles samples =
  ignore params;
  let samples = List.filter (fun s -> s.s_instructions > 0) samples in
  let windows = List.length samples in
  let measured_instructions =
    List.fold_left (fun a s -> a + s.s_instructions) 0 samples
  in
  let detailed_cycles = List.fold_left (fun a s -> a + s.s_cycles) 0 samples in
  (* cycles: the engine clock already integrates measured windows plus the
     CPI-charged fast-forward legs; the confidence term comes from the
     spread of per-window CPIs scaled to the whole trace *)
  let cpis =
    samples
    |> List.map (fun s ->
           float_of_int s.s_cycles /. float_of_int s.s_instructions)
    |> Array.of_list
  in
  let _, cpi_half = Stats.mean_ci cpis in
  let cycles_ci =
    widen
      {
        est = float_of_int estimated_cycles;
        half = cpi_half *. float_of_int total_instructions;
      }
  in
  let count num = rate_ci samples ~total:total_instructions ~num in
  let l2_misses_ci = count (fun s -> float_of_int s.s_l2_misses) in
  let read_misses_ci = count (fun s -> float_of_int s.s_read_misses) in
  (* average read-miss latency: pooled point estimate, per-window averages
     as the samples *)
  let lat_sum = List.fold_left (fun a s -> a +. s.s_read_miss_lat) 0.0 samples in
  let misses = List.fold_left (fun a s -> a + s.s_read_misses) 0 samples in
  let lat_est = if misses = 0 then 0.0 else lat_sum /. float_of_int misses in
  let lats =
    samples
    |> List.filter (fun s -> s.s_read_misses > 0)
    |> List.map (fun s -> s.s_read_miss_lat /. float_of_int s.s_read_misses)
    |> Array.of_list
  in
  let _, lat_half = Stats.mean_ci lats in
  let read_miss_latency_ci = widen { est = lat_est; half = lat_half } in
  {
    windows;
    total_instructions;
    measured_instructions;
    detailed_cycles;
    cycles_ci;
    l2_misses_ci;
    read_misses_ci;
    read_miss_latency_ci;
  }

let pp_ci ppf c = Format.fprintf ppf "%.0f ± %.0f" c.est c.half

let pp ppf e =
  Format.fprintf ppf
    "@[<v>sampled: %d windows, %d/%d instructions detailed (%.1f%%), %d \
     detailed cycles@,\
     cycles %a@,l2 misses %a@,read misses %a@,read-miss latency %.1f ± %.1f@]"
    e.windows e.measured_instructions e.total_instructions
    (100.0
    *. float_of_int e.measured_instructions
    /. float_of_int (max 1 e.total_instructions))
    e.detailed_cycles pp_ci e.cycles_ci pp_ci e.l2_misses_ci pp_ci
    e.read_misses_ci e.read_miss_latency_ci.est e.read_miss_latency_ci.half
