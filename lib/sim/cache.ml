type t = {
  assoc : int;
  sets : int;
  shift : int;
  line : int;
  tags : int array;  (* line address or -1 *)
  vers : int array;
  ages : int array;
  mutable clock : int;
}

let log2 v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let create ~bytes ~assoc ~line =
  let nlines = max assoc (bytes / line) in
  let sets = max 1 (nlines / assoc) in
  {
    assoc;
    sets;
    shift = log2 line;
    line;
    tags = Array.make (sets * assoc) (-1);
    vers = Array.make (sets * assoc) 0;
    ages = Array.make (sets * assoc) 0;
    clock = 0;
  }

let assoc t = t.assoc
let sets t = t.sets
let line_size t = t.line

let line_of t addr = addr lsr t.shift

let set_base t line = line mod t.sets * t.assoc

let lookup t ~version ~addr =
  let line = addr lsr t.shift in
  let base = set_base t line in
  t.clock <- t.clock + 1;
  let hit = ref false in
  for w = base to base + t.assoc - 1 do
    if t.tags.(w) = line && t.vers.(w) = version then begin
      hit := true;
      t.ages.(w) <- t.clock
    end
  done;
  !hit

(* side-effect-free probe: no LRU refresh, no clock tick — for
   inspection (tests) only, never on a simulated access path *)
let resident t ~version ~addr =
  let line = addr lsr t.shift in
  let base = set_base t line in
  let hit = ref false in
  for w = base to base + t.assoc - 1 do
    if t.tags.(w) = line && t.vers.(w) = version then hit := true
  done;
  !hit

let fill t ~version ~addr =
  let line = addr lsr t.shift in
  let base = set_base t line in
  t.clock <- t.clock + 1;
  (* reuse an existing copy of the line if present, else evict LRU *)
  let victim = ref base in
  let found = ref false in
  for w = base to base + t.assoc - 1 do
    if (not !found) && t.tags.(w) = line then begin
      victim := w;
      found := true
    end;
    if (not !found) && t.ages.(w) < t.ages.(!victim) then victim := w
  done;
  t.tags.(!victim) <- line;
  t.vers.(!victim) <- version;
  t.ages.(!victim) <- t.clock
