module Rng = Memclust_util.Rng

(* A fault plan is pure data: probabilities and magnitudes, plus the seed
   that makes every injection deterministic. The injector (the mutable
   part) is created per memory system, so two simulations of the same
   (plan, program, config) point see byte-identical fault streams. *)

type plan = {
  seed : int;
  delay_prob : float;
  delay_cycles : int;
  nack_prob : float;
  nack_backoff : int;
  nack_max_retries : int;
  stall_prob : float;
  stall_cycles : int;
}

type stats = {
  mutable requests : int;
  mutable delayed : int;
  mutable nacked : int;
  mutable stalled : int;
  mutable extra_cycles : int;
}

type injector = { plan : plan; rng : Rng.t; stats : stats }

let plan ?(delay_prob = 0.0) ?(delay_cycles = 200) ?(nack_prob = 0.0)
    ?(nack_backoff = 16) ?(nack_max_retries = 4) ?(stall_prob = 0.0)
    ?(stall_cycles = 100) ~seed () =
  let check_prob name p =
    if p < 0.0 || p > 1.0 then
      invalid_arg
        (Printf.sprintf "Faults.plan: %s must be in [0,1], got %g" name p)
  in
  check_prob "delay_prob" delay_prob;
  check_prob "nack_prob" nack_prob;
  check_prob "stall_prob" stall_prob;
  if delay_cycles < 0 || stall_cycles < 0 || nack_backoff < 0 then
    invalid_arg "Faults.plan: cycle magnitudes must be non-negative";
  if nack_max_retries < 0 then
    invalid_arg "Faults.plan: nack_max_retries must be non-negative";
  {
    seed;
    delay_prob;
    delay_cycles;
    nack_prob;
    nack_backoff;
    nack_max_retries;
    stall_prob;
    stall_cycles;
  }

(* the standard chaos plan: [rate] scales all three fault classes *)
let scaled ~seed rate =
  let rate = Float.max 0.0 (Float.min 1.0 rate) in
  plan ~delay_prob:rate ~nack_prob:(rate /. 2.0) ~stall_prob:(rate /. 2.0)
    ~seed ()

let none = plan ~seed:0 ()

let is_active p =
  p.delay_prob > 0.0 || p.nack_prob > 0.0 || p.stall_prob > 0.0

(* "SEED[:RATE]" — e.g. "42" (default 5% rate) or "42:0.2" *)
let of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [ seed ] -> (
      match int_of_string_opt seed with
      | Some seed -> Ok (scaled ~seed 0.05)
      | None -> Error (Printf.sprintf "Faults.of_string: bad seed %S" s))
  | [ seed; rate ] -> (
      match (int_of_string_opt seed, float_of_string_opt rate) with
      | Some seed, Some rate when rate >= 0.0 && rate <= 1.0 ->
          Ok (scaled ~seed rate)
      | _ ->
          Error
            (Printf.sprintf
               "Faults.of_string: expected SEED[:RATE] with RATE in [0,1], \
                got %S"
               s))
  | _ -> Error (Printf.sprintf "Faults.of_string: expected SEED[:RATE], got %S" s)

let to_string p =
  Printf.sprintf "%d:%g (delay %g/%dc, nack %g/%dc*2^k<=%d, stall %g/%dc)"
    p.seed p.delay_prob p.delay_prob p.delay_cycles p.nack_prob p.nack_backoff
    p.nack_max_retries p.stall_prob p.stall_cycles

let of_env () =
  match Sys.getenv_opt "MEMCLUST_FAULTS" with
  | None | Some "" -> None
  | Some s -> (
      match of_string s with
      | Ok p -> Some p
      | Error m -> invalid_arg m)

let make plan =
  {
    plan;
    rng = Rng.create plan.seed;
    stats = { requests = 0; delayed = 0; nacked = 0; stalled = 0; extra_cycles = 0 };
  }

type decision = {
  pre_delay : int;  (* NACK backoff served before the bank access *)
  bank_extra : int;  (* transient stall: extra bank occupancy *)
  fill_delay : int;  (* slow fill: extra cycles on the reply *)
}

let no_fault = { pre_delay = 0; bank_extra = 0; fill_delay = 0 }

let hit rng prob = prob > 0.0 && Rng.float rng 1.0 < prob

(* Decide the faults for one memory request. Draw order is fixed
   (NACK retries, then stall, then delay) so the stream depends only on
   the plan seed and the request sequence. *)
let inject t =
  let p = t.plan in
  let s = t.stats in
  s.requests <- s.requests + 1;
  if not (is_active p) then no_fault
  else begin
    (* NACKed response: the requester retries with bounded exponential
       backoff; the k-th retry waits backoff * 2^k cycles. After
       nack_max_retries the home node must accept (forward progress). *)
    let rec backoff k acc =
      if k >= p.nack_max_retries then acc
      else if hit t.rng p.nack_prob then
        backoff (k + 1) (acc + (p.nack_backoff lsl k))
      else acc
    in
    let pre_delay = backoff 0 0 in
    if pre_delay > 0 then s.nacked <- s.nacked + 1;
    let bank_extra =
      if hit t.rng p.stall_prob then begin
        s.stalled <- s.stalled + 1;
        1 + Rng.int t.rng p.stall_cycles
      end
      else 0
    in
    let fill_delay =
      if hit t.rng p.delay_prob then begin
        s.delayed <- s.delayed + 1;
        1 + Rng.int t.rng p.delay_cycles
      end
      else 0
    in
    s.extra_cycles <- s.extra_cycles + pre_delay + bank_extra + fill_delay;
    { pre_delay; bank_extra; fill_delay }
  end

let stats t = t.stats

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "%d requests: %d delayed, %d nacked, %d stalled (+%d cycles injected)"
    s.requests s.delayed s.nacked s.stalled s.extra_cycles
