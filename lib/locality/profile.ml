open Memclust_ir

(* Set-associative LRU cache over line addresses. [lines.(set * assoc + w)]
   holds a line address or -1; [ages] holds the LRU clock. *)
type cache = {
  assoc : int;
  sets : int;
  line_shift : int;
  lines : int array;
  ages : int array;
  mutable clock : int;
}

let cache ~cache_bytes ~assoc ~line_size =
  let nlines = max assoc (cache_bytes / line_size) in
  let sets = max 1 (nlines / assoc) in
  let line_shift =
    let rec log2 v acc = if v <= 1 then acc else log2 (v lsr 1) (acc + 1) in
    log2 line_size 0
  in
  { assoc; sets; line_shift; lines = Array.make (sets * assoc) (-1);
    ages = Array.make (sets * assoc) 0; clock = 0 }

(* true = miss *)
let access c addr =
  let line = addr lsr c.line_shift in
  let set = line mod c.sets in
  let base = set * c.assoc in
  c.clock <- c.clock + 1;
  let found = ref (-1) in
  let victim = ref base in
  for w = base to base + c.assoc - 1 do
    if c.lines.(w) = line then found := w;
    if c.ages.(w) < c.ages.(!victim) then victim := w
  done;
  if !found >= 0 then begin
    c.ages.(!found) <- c.clock;
    false
  end
  else begin
    c.lines.(!victim) <- line;
    c.ages.(!victim) <- c.clock;
    true
  end

type t = { acc : int array; mis : int array }

let run ?(cache_bytes = 64 * 1024) ?(assoc = 4) ?(line_size = 64) p data =
  let n = Program.max_ref_id p + 1 in
  let t = { acc = Array.make n 0; mis = Array.make n 0 } in
  let c = cache ~cache_bytes ~assoc ~line_size in
  let note ref_id addr =
    let miss = access c addr in
    if ref_id > 0 && ref_id < n then begin
      t.acc.(ref_id) <- t.acc.(ref_id) + 1;
      if miss then t.mis.(ref_id) <- t.mis.(ref_id) + 1
    end
  in
  let emit =
    {
      Exec.null_emitter with
      e_load = (fun ~ref_id ~addr _ _ -> note ref_id addr; -1);
      e_store = (fun ~ref_id ~addr _ _ -> note ref_id addr; -1);
    }
  in
  Exec.run ~emit p (Data.copy data);
  t

let accesses t id = if id >= 0 && id < Array.length t.acc then t.acc.(id) else 0
let misses t id = if id >= 0 && id < Array.length t.mis then t.mis.(id) else 0

let miss_rate t id =
  let a = accesses t id in
  if a = 0 then 1.0 else float_of_int (misses t id) /. float_of_int a

let total_misses t = Array.fold_left ( + ) 0 t.mis
