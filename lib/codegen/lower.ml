open Memclust_ir

type t = { traces : Trace.t array; barriers : int }

(* Dependence tokens pack (trace index, processor): tokens from another
   processor are dropped at use (the value is considered available). *)
let proc_bits = 6
let proc_mask = (1 lsl proc_bits) - 1

let build ?(nprocs = 1) (p : Ast.program) data =
  assert (nprocs >= 1 && nprocs <= proc_mask);
  let traces = Array.init nprocs (fun _ -> Trace.create ()) in
  let cur = ref 0 in
  let barriers = ref 0 in
  let tok idx = (idx lsl proc_bits) lor !cur in
  let local t =
    if t < 0 then -1
    else if t land proc_mask = !cur then t lsr proc_bits
    else -1
  in
  let push ~kind ~aux ~ref_ d1 d2 =
    tok
      (Trace.push traces.(!cur) ~kind ~aux ~dep1:(local d1) ~dep2:(local d2)
         ~ref_)
  in
  let emit =
    {
      Exec.e_int = (fun d1 d2 -> push ~kind:Trace.Int_op ~aux:1 ~ref_:0 d1 d2);
      e_fp = (fun ~lat d1 d2 -> push ~kind:Trace.Fp_op ~aux:lat ~ref_:0 d1 d2);
      e_load =
        (fun ~ref_id ~addr d1 d2 ->
          push ~kind:Trace.Load ~aux:addr ~ref_:ref_id d1 d2);
      e_store =
        (fun ~ref_id ~addr d1 d2 ->
          push ~kind:Trace.Store ~aux:addr ~ref_:ref_id d1 d2);
      e_prefetch =
        (fun ~ref_id ~addr d1 d2 ->
          ignore (push ~kind:Trace.Prefetch_op ~aux:addr ~ref_:ref_id d1 d2));
      e_branch =
        (fun d1 d2 -> ignore (push ~kind:Trace.Branch ~aux:1 ~ref_:0 d1 d2));
      e_barrier =
        (fun () ->
          if nprocs > 1 then begin
            incr barriers;
            let id = !barriers in
            let saved = !cur in
            for p = 0 to nprocs - 1 do
              cur := p;
              ignore (push ~kind:Trace.Barrier_op ~aux:id ~ref_:0 (-1) (-1))
            done;
            cur := saved
          end);
      e_set_proc = (fun p -> cur := min (nprocs - 1) (max 0 p));
    }
  in
  Exec.run ~emit ~nprocs p data;
  { traces; barriers = !barriers }

let total_instructions t =
  Array.fold_left (fun acc tr -> acc + Trace.length tr) 0 t.traces
