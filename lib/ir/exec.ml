open Ast

(* Dependence tokens are passed positionally (at most two per operation,
   [-1] = none) instead of as a list: the executor runs once per dynamic
   operation, and the per-op list allocation was measurable in both trace
   lowering and cache profiling. *)
type emitter = {
  e_int : int -> int -> int;
  e_fp : lat:int -> int -> int -> int;
  e_load : ref_id:int -> addr:int -> int -> int -> int;
  e_store : ref_id:int -> addr:int -> int -> int -> int;
  e_prefetch : ref_id:int -> addr:int -> int -> int -> unit;
  e_branch : int -> int -> unit;
  e_barrier : unit -> unit;
  e_set_proc : int -> unit;
}

let null_emitter =
  {
    e_int = (fun _ _ -> -1);
    e_fp = (fun ~lat:_ _ _ -> -1);
    e_load = (fun ~ref_id:_ ~addr:_ _ _ -> -1);
    e_store = (fun ~ref_id:_ ~addr:_ _ _ -> -1);
    e_prefetch = (fun ~ref_id:_ ~addr:_ _ _ -> ());
    e_branch = (fun _ _ -> ());
    e_barrier = ignore;
    e_set_proc = ignore;
  }

exception Limit_exceeded

let fp_latency = function
  | Add | Sub | Min | Max -> 3
  | Mul -> 3
  | Div | Mod -> 16
  | Lt | Le | Eq -> 1

(* Numeric coercions: the value domain is deliberately loose — synthetic
   workloads index arrays with computed data, so we coerce rather than
   fail. Division by zero yields 0 to keep synthetic inputs total. *)

let to_float = function
  | Vfloat x -> x
  | Vint i -> float_of_int i
  | Vptr a -> float_of_int a

let to_int = function
  | Vint i -> i
  | Vfloat x -> int_of_float x
  | Vptr a -> a

let is_float = function Vfloat _ -> true | Vint _ | Vptr _ -> false

let apply_unop op v =
  match op with
  | Neg -> if is_float v then Vfloat (-.to_float v) else Vint (-to_int v)
  | Abs -> if is_float v then Vfloat (Float.abs (to_float v)) else Vint (abs (to_int v))
  | Sqrt -> Vfloat (sqrt (Float.abs (to_float v)))
  | Trunc -> Vint (to_int v)

let it_cmp a b fcmp icmp =
  let r =
    if is_float a || is_float b then fcmp (to_float a) (to_float b)
    else icmp (to_int a) (to_int b)
  in
  Vint (if r then 1 else 0)

let apply_binop op a b =
  let fl f = Vfloat (f (to_float a) (to_float b)) in
  let it f = Vint (f (to_int a) (to_int b)) in
  let numeric ffun ifun = if is_float a || is_float b then fl ffun else it ifun in
  match op with
  | Add -> (
      (* pointer arithmetic stays a pointer *)
      match (a, b) with
      | Vptr p, v | v, Vptr p -> Vptr (p + to_int v)
      | _ -> numeric ( +. ) ( + ))
  | Sub -> numeric ( -. ) ( - )
  | Mul -> numeric ( *. ) ( * )
  | Div ->
      if is_float a || is_float b then
        let d = to_float b in
        Vfloat (if d = 0.0 then 0.0 else to_float a /. d)
      else
        let d = to_int b in
        Vint (if d = 0 then 0 else to_int a / d)
  | Mod ->
      if is_float a || is_float b then
        let d = to_float b in
        Vfloat (if d = 0.0 then 0.0 else Float.rem (to_float a) d)
      else
        let d = to_int b in
        Vint (if d = 0 then 0 else to_int a mod d)
  | Min -> numeric Float.min min
  | Max -> numeric Float.max max
  | Lt -> it_cmp a b ( < ) ( < )
  | Le -> it_cmp a b ( <= ) ( <= )
  | Eq -> it_cmp a b ( = ) ( = )

(* ------------------------------------------------------------------ *)
(* The executor compiles the (small, static) AST to a tree of closures
   once per run, then drives the closures through the (large, dynamic)
   iteration space. Compilation interns every loop index and scalar name
   to an integer slot, so the per-operation cost has no string hashing,
   no environment tuple allocation and no data-store name lookups — all
   of which dominated the interpreter this replaces. *)

(* Runtime state. Variables live in slot-indexed arrays; [*_bound] tracks
   dynamic scope (a slot exists for every name in the program, bound-ness
   changes as loops enter and leave). [tok] is the dependence token of the
   most recently evaluated expression — an out-parameter, replacing a
   (value, token) tuple allocated per expression node. *)
type rt = {
  emit : emitter;
  data : Data.t;
  nprocs : int;
  max_ops : int;
  mutable ops : int;
  ivar : int array;  (* loop indices and symbolic parameters *)
  ivar_bound : bool array;
  ivar_name : string array;
  sval : value array;  (* scalar variables: value and producing token *)
  stok : int array;
  sbound : bool array;
  svar_name : string array;
  mutable depth_parallel : int;  (* > 0 while inside a parallel loop *)
  mutable tok : int;
}

let tick rt =
  rt.ops <- rt.ops + 1;
  if rt.ops > rt.max_ops then raise Limit_exceeded

let ivar_get rt id =
  if rt.ivar_bound.(id) then rt.ivar.(id)
  else
    invalid_arg
      (Printf.sprintf "Exec: unbound index variable %s" rt.ivar_name.(id))

(* Compile-time environment: name -> slot interning tables. *)
type cenv = {
  ivar_ids : (string, int) Hashtbl.t;
  mutable n_ivars : int;
  svar_ids : (string, int) Hashtbl.t;
  mutable n_svars : int;
}

let ivar_id env v =
  match Hashtbl.find_opt env.ivar_ids v with
  | Some id -> id
  | None ->
      let id = env.n_ivars in
      Hashtbl.replace env.ivar_ids v id;
      env.n_ivars <- id + 1;
      id

let svar_id env v =
  match Hashtbl.find_opt env.svar_ids v with
  | Some id -> id
  | None ->
      let id = env.n_svars in
      Hashtbl.replace env.svar_ids v id;
      env.n_svars <- id + 1;
      id

(* Affine forms are evaluated in Smap (= sorted-name) term order, like the
   interpreter did, so an unbound-variable error surfaces on the same
   term. The common 0/1/2-term shapes get dedicated closures. *)
let compile_affine env a =
  let c0 = Affine.constant a in
  let terms =
    List.map (fun v -> (ivar_id env v, Affine.coeff a v)) (Affine.vars a)
  in
  match terms with
  | [] -> fun _ -> c0
  | [ (s, c) ] -> fun rt -> c0 + (c * ivar_get rt s)
  | [ (s1, c1); (s2, c2) ] ->
      fun rt -> c0 + (c1 * ivar_get rt s1) + (c2 * ivar_get rt s2)
  | l ->
      let arr = Array.of_list l in
      fun rt ->
        Array.fold_left (fun acc (s, c) -> acc + (c * ivar_get rt s)) c0 arr

(* Array / region handles are resolved on first use and cached for the
   rest of the run (the closure tree is rebuilt per run, so a cache never
   outlives its data store). First-use resolution keeps the interpreter's
   behaviour of raising on an unknown name only if the reference is
   actually executed. *)
let cached_handle array =
  let h = ref None in
  fun rt ->
    match !h with
    | Some a -> a
    | None ->
        let a = Data.handle rt.data array in
        h := Some a;
        a

let cached_rhandle region =
  let h = ref None in
  fun rt ->
    match !h with
    | Some r -> r
    | None ->
        let r = Data.rhandle rt.data region in
        h := Some r;
        r

(* Compile an expression to a closure returning its value; the producing
   token is left in [rt.tok]. *)
let rec compile_expr env e : rt -> value =
  match e with
  | Const v ->
      fun rt ->
        rt.tok <- -1;
        v
  | Ivar v ->
      let id = ivar_id env v in
      fun rt ->
        rt.tok <- -1;
        Vint (ivar_get rt id)
  | Scalar v ->
      let id = svar_id env v in
      fun rt ->
        if rt.sbound.(id) then begin
          rt.tok <- rt.stok.(id);
          rt.sval.(id)
        end
        else
          invalid_arg
            (Printf.sprintf "Exec: unbound scalar %s" rt.svar_name.(id))
  | Load r -> compile_load env r
  | Unop (op, a) ->
      let ca = compile_expr env a in
      let sqrt_ = op = Sqrt in
      let lat = if sqrt_ then 33 else 3 in
      fun rt ->
        let va = ca rt in
        let ta = rt.tok in
        tick rt;
        let v = apply_unop op va in
        rt.tok <-
          (if is_float v || sqrt_ then rt.emit.e_fp ~lat ta (-1)
           else rt.emit.e_int ta (-1));
        v
  | Binop (op, a, b) ->
      let ca = compile_expr env a in
      let cb = compile_expr env b in
      let lat = fp_latency op in
      fun rt ->
        let va = ca rt in
        let ta = rt.tok in
        let vb = cb rt in
        let tb = rt.tok in
        tick rt;
        let v = apply_binop op va vb in
        rt.tok <-
          (if is_float va || is_float vb then rt.emit.e_fp ~lat ta tb
           else rt.emit.e_int ta tb);
        v

(* Loads emit the same operation sequence as the interpreter: direct and
   indirect references pay one address-generation integer op, field
   references use register+offset addressing (no separate address op). *)
and compile_load env (r : mem_ref) : rt -> value =
  let ref_id = r.ref_id in
  match r.target with
  | Direct { array; index } ->
      let ci = compile_affine env index in
      let h = cached_handle array in
      fun rt ->
        let i = ci rt in
        let a = h rt in
        let addr = Data.h_addr a i in
        tick rt;
        let at = rt.emit.e_int (-1) (-1) in
        tick rt;
        rt.tok <- rt.emit.e_load ~ref_id ~addr at (-1);
        Data.h_get a i
  | Indirect { array; index } ->
      let ce = compile_expr env index in
      let h = cached_handle array in
      fun rt ->
        let vi = ce rt in
        let ti = rt.tok in
        let i = to_int vi in
        let a = h rt in
        let addr = Data.h_addr a i in
        tick rt;
        let at = rt.emit.e_int ti (-1) in
        tick rt;
        rt.tok <- rt.emit.e_load ~ref_id ~addr at (-1);
        Data.h_get a i
  | Field { region; ptr; field } ->
      let cp = compile_expr env ptr in
      let rh = cached_rhandle region in
      fun rt ->
        let vp = cp rt in
        let tp = rt.tok in
        let p = to_int vp in
        let r = rh rt in
        let addr = Data.rh_addr r ~ptr:p ~field in
        tick rt;
        rt.tok <- rt.emit.e_load ~ref_id ~addr tp (-1);
        Data.rh_get r ~ptr:p ~field

let rec compile_stmt env stmt : rt -> unit =
  match stmt with
  | Assign (Lscalar v, e) ->
      let id = svar_id env v in
      let ce = compile_expr env e in
      fun rt ->
        let value = ce rt in
        rt.sval.(id) <- value;
        rt.stok.(id) <- rt.tok;
        rt.sbound.(id) <- true
  | Assign (Lmem r, e) ->
      let ce = compile_expr env e in
      let cs = compile_store env r in
      fun rt ->
        let value = ce rt in
        let vtok = rt.tok in
        cs rt value vtok
  | Use e ->
      let ce = compile_expr env e in
      fun rt -> ignore (ce rt)
  | Barrier -> fun rt -> rt.emit.e_barrier ()
  | Prefetch r -> compile_prefetch env r
  | If (cond, then_, else_) ->
      let cc = compile_expr env cond in
      let ct = compile_stmts env then_ in
      let ce = compile_stmts env else_ in
      fun rt ->
        let v = cc rt in
        rt.emit.e_branch rt.tok (-1);
        if to_int v <> 0 then ct rt else ce rt
  | Loop l -> compile_loop env l
  | Chase c -> compile_chase env c

and compile_stmts env stmts : rt -> unit =
  match List.map (compile_stmt env) stmts with
  | [] -> fun _ -> ()
  | [ f ] -> f
  | fs ->
      let arr = Array.of_list fs in
      fun rt -> Array.iter (fun f -> f rt) arr

and compile_store env (r : mem_ref) : rt -> value -> int -> unit =
  let ref_id = r.ref_id in
  match r.target with
  | Direct { array; index } ->
      let ci = compile_affine env index in
      let h = cached_handle array in
      fun rt value vtok ->
        let i = ci rt in
        tick rt;
        let at = rt.emit.e_int (-1) (-1) in
        let a = h rt in
        let addr = Data.h_addr a i in
        tick rt;
        ignore (rt.emit.e_store ~ref_id ~addr vtok at);
        Data.h_set a i value
  | Indirect { array; index } ->
      let ce = compile_expr env index in
      let h = cached_handle array in
      fun rt value vtok ->
        let vi = ce rt in
        let ti = rt.tok in
        let i = to_int vi in
        tick rt;
        let at = rt.emit.e_int ti (-1) in
        let a = h rt in
        let addr = Data.h_addr a i in
        tick rt;
        ignore (rt.emit.e_store ~ref_id ~addr vtok at);
        Data.h_set a i value
  | Field { region; ptr; field } ->
      let cp = compile_expr env ptr in
      let rh = cached_rhandle region in
      fun rt value vtok ->
        let vp = cp rt in
        let tp = rt.tok in
        let p = to_int vp in
        let r = rh rt in
        let addr = Data.rh_addr r ~ptr:p ~field in
        tick rt;
        ignore (rt.emit.e_store ~ref_id ~addr vtok tp);
        Data.rh_set r ~ptr:p ~field value

(* A prefetch through a null or dangling pointer (or an unbound variable)
   is silently dropped, as hardware drops hint prefetches; the address
   computation's own operations still count when they were emitted. *)
and compile_prefetch env (r : mem_ref) : rt -> unit =
  let ref_id = r.ref_id in
  let addr_tok =
    match r.target with
    | Direct { array; index } ->
        let ci = compile_affine env index in
        let h = cached_handle array in
        fun rt ->
          let i = ci rt in
          let a = h rt in
          let addr = Data.h_addr a i in
          tick rt;
          (addr, rt.emit.e_int (-1) (-1))
    | Indirect { array; index } ->
        let ce = compile_expr env index in
        let h = cached_handle array in
        fun rt ->
          let vi = ce rt in
          let ti = rt.tok in
          let i = to_int vi in
          let a = h rt in
          let addr = Data.h_addr a i in
          tick rt;
          (addr, rt.emit.e_int ti (-1))
    | Field { region; ptr; field } ->
        let cp = compile_expr env ptr in
        let rh = cached_rhandle region in
        fun rt ->
          let vp = cp rt in
          let tp = rt.tok in
          let p = to_int vp in
          (Data.rh_addr (rh rt) ~ptr:p ~field, tp)
  in
  fun rt ->
    match addr_tok rt with
    | addr, tok -> rt.emit.e_prefetch ~ref_id ~addr tok (-1)
    | exception Invalid_argument _ -> ()

and compile_loop env (l : loop) : rt -> unit =
  let clo = compile_affine env l.lo in
  let chi = compile_affine env l.hi in
  let vid = ivar_id env l.var in
  let cbody = compile_stmts env l.body in
  let step = l.step in
  let parallel = l.parallel in
  fun rt ->
    let lo = clo rt and hi = chi rt in
    let distribute = parallel && rt.nprocs > 1 && rt.depth_parallel = 0 in
    let total = if hi > lo then (hi - lo + step - 1) / step else 0 in
    if distribute then rt.depth_parallel <- rt.depth_parallel + 1;
    let saved_v = rt.ivar.(vid) and saved_b = rt.ivar_bound.(vid) in
    rt.ivar_bound.(vid) <- true;
    let iter_num = ref 0 in
    let i = ref lo in
    while !i < hi do
      (* balanced block distribution: every processor gets ⌊total/n⌋ or
         ⌈total/n⌉ consecutive iterations *)
      if distribute && total > 0 then
        rt.emit.e_set_proc (min (rt.nprocs - 1) (!iter_num * rt.nprocs / total));
      rt.ivar.(vid) <- !i;
      cbody rt;
      (* loop overhead: induction increment + backward branch *)
      tick rt;
      let t = rt.emit.e_int (-1) (-1) in
      rt.emit.e_branch t (-1);
      incr iter_num;
      i := !i + step
    done;
    rt.ivar.(vid) <- saved_v;
    rt.ivar_bound.(vid) <- saved_b;
    if distribute then begin
      rt.depth_parallel <- rt.depth_parallel - 1;
      rt.emit.e_set_proc 0;
      rt.emit.e_barrier ()
    end

and compile_chase env (c : chase) : rt -> unit =
  let cinit = compile_expr env c.init in
  let climit = Option.map (compile_affine env) c.count in
  let vid = svar_id env c.cvar in
  let cbody = compile_stmts env c.cbody in
  let rh = cached_rhandle c.cregion in
  let next_field = c.next_field in
  let next_ref_id = c.next_ref_id in
  fun rt ->
    let v0 = cinit rt in
    let t0 = rt.tok in
    let limit = match climit with Some f -> Some (f rt) | None -> None in
    let saved_v = rt.sval.(vid)
    and saved_t = rt.stok.(vid)
    and saved_b = rt.sbound.(vid) in
    let p = ref (to_int v0) in
    let ptok = ref t0 in
    let n = ref 0 in
    let continue () =
      !p <> 0 && match limit with Some k -> !n < k | None -> true
    in
    while continue () do
      rt.sval.(vid) <- Vptr !p;
      rt.stok.(vid) <- !ptok;
      rt.sbound.(vid) <- true;
      cbody rt;
      (* advance: p = p->next — a load whose address depends on p *)
      let r = rh rt in
      let addr = Data.rh_addr r ~ptr:!p ~field:next_field in
      tick rt;
      let tok = rt.emit.e_load ~ref_id:next_ref_id ~addr !ptok (-1) in
      let next = Data.rh_get r ~ptr:!p ~field:next_field in
      rt.emit.e_branch tok (-1);
      p := to_int next;
      ptok := tok;
      incr n
    done;
    rt.sval.(vid) <- saved_v;
    rt.stok.(vid) <- saved_t;
    rt.sbound.(vid) <- saved_b

let run ?(emit = null_emitter) ?(nprocs = 1) ?(max_ops = 200_000_000)
    (p : program) data =
  let env =
    {
      ivar_ids = Hashtbl.create 16;
      n_ivars = 0;
      svar_ids = Hashtbl.create 16;
      n_svars = 0;
    }
  in
  (* intern parameters first so their slots exist before the body runs *)
  let param_ids = List.map (fun (name, v) -> (ivar_id env name, v)) p.params in
  let cbody = compile_stmts env p.body in
  let ni = max 1 env.n_ivars and ns = max 1 env.n_svars in
  let ivar_name = Array.make ni "" in
  Hashtbl.iter (fun k id -> ivar_name.(id) <- k) env.ivar_ids;
  let svar_name = Array.make ns "" in
  Hashtbl.iter (fun k id -> svar_name.(id) <- k) env.svar_ids;
  let rt =
    {
      emit;
      data;
      nprocs;
      max_ops;
      ops = 0;
      ivar = Array.make ni 0;
      ivar_bound = Array.make ni false;
      ivar_name;
      sval = Array.make ns (Vint 0);
      stok = Array.make ns (-1);
      sbound = Array.make ns false;
      svar_name;
      depth_parallel = 0;
      tok = -1;
    }
  in
  List.iter
    (fun (id, v) ->
      rt.ivar.(id) <- v;
      rt.ivar_bound.(id) <- true)
    param_ids;
  cbody rt
