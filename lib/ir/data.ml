open Ast

type array_store = {
  as_base : int;
  as_elem : int;
  as_data : value array;
}

type region_store = {
  rs_base : int;
  rs_node : int;  (* bytes per node *)
  rs_slots : int;  (* 8-byte field slots per node *)
  rs_data : value array;  (* node_count * rs_slots *)
}

type t = {
  arrays : (string, array_store) Hashtbl.t;
  regions : (string, region_store) Hashtbl.t;
  (* base address / byte size of every object in ascending base order, for
     home-node computation. Two parallel arrays so [home_of_addr] — called
     once per simulated L2 miss — can binary-search without allocating. *)
  ext_base : int array;
  ext_bytes : int array;
}

let round_up v align = (v + align - 1) / align * align

let create ?(base = 0x10000) ?(align = 64) (p : program) =
  let arrays = Hashtbl.create 16 in
  let regions = Hashtbl.create 16 in
  let cursor = ref base in
  let extents = ref [] in
  let alloc bytes =
    let b = round_up !cursor align in
    cursor := b + bytes;
    extents := (b, bytes) :: !extents;
    b
  in
  List.iter
    (fun a ->
      let bytes = a.length * a.elem_size in
      let as_base = alloc bytes in
      Hashtbl.replace arrays a.a_name
        { as_base; as_elem = a.elem_size; as_data = Array.make a.length (Vfloat 0.0) })
    p.arrays;
  List.iter
    (fun r ->
      let bytes = r.node_count * r.node_size in
      let rs_base = alloc bytes in
      let slots = r.node_size / 8 in
      Hashtbl.replace regions r.r_name
        {
          rs_base;
          rs_node = r.node_size;
          rs_slots = slots;
          rs_data = Array.make (r.node_count * slots) (Vint 0);
        })
    p.regions;
  (* [alloc]'s cursor only moves forward, so reversing the accumulation
     order yields ascending bases *)
  let exts = Array.of_list (List.rev !extents) in
  {
    arrays;
    regions;
    ext_base = Array.map fst exts;
    ext_bytes = Array.map snd exts;
  }

let find_array t name =
  match Hashtbl.find_opt t.arrays name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Data: unknown array %s" name)

let find_region t name =
  match Hashtbl.find_opt t.regions name with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Data: unknown region %s" name)

let clamp len i = if i < 0 then 0 else if i >= len then len - 1 else i

let get t name i =
  let a = find_array t name in
  a.as_data.(clamp (Array.length a.as_data) i)

let set t name i v =
  let a = find_array t name in
  a.as_data.(clamp (Array.length a.as_data) i) <- v

let addr_of t name i =
  let a = find_array t name in
  a.as_base + (clamp (Array.length a.as_data) i * a.as_elem)

type handle = array_store

let handle = find_array
let h_addr a i = a.as_base + (clamp (Array.length a.as_data) i * a.as_elem)
let h_get a i = a.as_data.(clamp (Array.length a.as_data) i)
let h_set a i v = a.as_data.(clamp (Array.length a.as_data) i) <- v

let array_base t name = (find_array t name).as_base

let array_bytes t name =
  let a = find_array t name in
  Array.length a.as_data * a.as_elem

let node_addr t name i =
  let r = find_region t name in
  r.rs_base + (i * r.rs_node)

let node_ptr t name i = Vptr (node_addr t name i)

let slot_of_r r name ~ptr ~field =
  if ptr = 0 then invalid_arg "Data: null pointer dereference";
  let off = ptr - r.rs_base in
  let node = off / r.rs_node in
  let count = Array.length r.rs_data / r.rs_slots in
  if off < 0 || node >= count || off mod r.rs_node <> 0 then
    invalid_arg
      (Printf.sprintf "Data: pointer %#x is not a node of region %s" ptr name);
  if field < 0 || field >= r.rs_slots then
    invalid_arg (Printf.sprintf "Data: field %d outside region %s nodes" field name);
  (node * r.rs_slots) + field

let slot_of t name ~ptr ~field =
  let r = find_region t name in
  (r, slot_of_r r name ~ptr ~field)

let field_get t name ~ptr ~field =
  let r, slot = slot_of t name ~ptr ~field in
  r.rs_data.(slot)

let field_set t name ~ptr ~field v =
  let r, slot = slot_of t name ~ptr ~field in
  r.rs_data.(slot) <- v

let field_addr t name ~ptr ~field =
  let r, _ = slot_of t name ~ptr ~field in
  ignore r;
  ptr + (field * 8)

type rhandle = { rh_name : string; rh : region_store }

let rhandle t name = { rh_name = name; rh = find_region t name }

let rh_get h ~ptr ~field =
  h.rh.rs_data.(slot_of_r h.rh h.rh_name ~ptr ~field)

let rh_set h ~ptr ~field v =
  h.rh.rs_data.(slot_of_r h.rh h.rh_name ~ptr ~field) <- v

let rh_addr h ~ptr ~field =
  ignore (slot_of_r h.rh h.rh_name ~ptr ~field);
  ptr + (field * 8)

let copy t =
  let arrays = Hashtbl.create (Hashtbl.length t.arrays) in
  Hashtbl.iter
    (fun k a -> Hashtbl.replace arrays k { a with as_data = Array.copy a.as_data })
    t.arrays;
  let regions = Hashtbl.create (Hashtbl.length t.regions) in
  Hashtbl.iter
    (fun k r -> Hashtbl.replace regions k { r with rs_data = Array.copy r.rs_data })
    t.regions;
  { arrays; regions; ext_base = t.ext_base; ext_bytes = t.ext_bytes }

let value_equal eps a b =
  match (a, b) with
  | Vfloat x, Vfloat y ->
      let scale = Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)) in
      Float.abs (x -. y) <= eps *. scale
  | Vint x, Vint y -> x = y
  | Vptr x, Vptr y -> x = y
  | _ -> false

let equal ?(eps = 1e-9) t1 t2 =
  let arrays_ok =
    Hashtbl.fold
      (fun k a acc ->
        acc
        &&
        match Hashtbl.find_opt t2.arrays k with
        | None -> false
        | Some b ->
            Array.length a.as_data = Array.length b.as_data
            && Array.for_all2 (value_equal eps) a.as_data b.as_data)
      t1.arrays true
  in
  let regions_ok =
    Hashtbl.fold
      (fun k r acc ->
        acc
        &&
        match Hashtbl.find_opt t2.regions k with
        | None -> false
        | Some s ->
            Array.length r.rs_data = Array.length s.rs_data
            && Array.for_all2 (value_equal eps) r.rs_data s.rs_data)
      t1.regions true
  in
  arrays_ok && regions_ok
  && Hashtbl.length t1.arrays = Hashtbl.length t2.arrays
  && Hashtbl.length t1.regions = Hashtbl.length t2.regions

let home_of_addr t ~nprocs addr =
  if nprocs <= 1 then 0
  else begin
    (* greatest extent with base <= addr; bases are ascending *)
    let lo = ref 0 and hi = ref (Array.length t.ext_base - 1) in
    let found = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if t.ext_base.(mid) <= addr then begin
        found := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    let i = !found in
    if i < 0 || addr >= t.ext_base.(i) + t.ext_bytes.(i) then 0
    else begin
      let base = t.ext_base.(i) and bytes = t.ext_bytes.(i) in
      let chunk = (bytes + nprocs - 1) / nprocs in
      min (nprocs - 1) ((addr - base) / max 1 chunk)
    end
  end
