(** Concrete data store backing a program's arrays and heap regions.

    The store assigns every array and region a base byte address (aligned
    to a cache line) in a flat synthetic address space, holds the current
    value of every element/field, and translates references to addresses.
    The executor reads and writes through it; the simulator only ever sees
    the byte addresses it produces. *)

open Ast

type t

val create : ?base:int -> ?align:int -> program -> t
(** Lay out the program's arrays and regions in declaration order starting
    at [base] (default 0x10000), aligning each object to [align] bytes
    (default 64, one cache line). *)

(** {1 Arrays} *)

val get : t -> string -> int -> value
(** [get t a i] is element [i] of array [a]. Out-of-range indices are
    clamped into range (synthetic workloads may compute indices from data;
    clamping keeps the run meaningful without aborting). *)

val set : t -> string -> int -> value -> unit
val addr_of : t -> string -> int -> int
(** Byte address of an element (index clamped like {!get}). *)

val array_base : t -> string -> int
val array_bytes : t -> string -> int

(** {2 Array handles}

    A resolved array, hoisting the name lookup out of access-per-element
    loops (the executor resolves each reference once and then reads the
    address and the value through the handle). *)

type handle

val handle : t -> string -> handle
(** Raises [Invalid_argument] on an unknown array, like {!get}. *)

val h_addr : handle -> int -> int
val h_get : handle -> int -> value
val h_set : handle -> int -> value -> unit

(** {1 Regions (heaps of fixed-size nodes)} *)

val node_addr : t -> string -> int -> int
(** Byte address of node [i]. *)

val node_ptr : t -> string -> int -> value
(** [Vptr] to node [i]; [Vptr 0] is null. *)

val field_get : t -> string -> ptr:int -> field:int -> value
(** Read a field through a node byte address. Raises [Invalid_argument] on
    a null or foreign pointer. *)

val field_set : t -> string -> ptr:int -> field:int -> value -> unit
val field_addr : t -> string -> ptr:int -> field:int -> int

(** {2 Region handles}

    Like array {!handle}s: a resolved region, hoisting the name lookup out
    of per-node access loops (pointer chases hit the same region every
    iteration). *)

type rhandle

val rhandle : t -> string -> rhandle
(** Raises [Invalid_argument] on an unknown region, like {!field_get}. *)

val rh_get : rhandle -> ptr:int -> field:int -> value
val rh_set : rhandle -> ptr:int -> field:int -> value -> unit
val rh_addr : rhandle -> ptr:int -> field:int -> int

(** {1 Whole-store operations} *)

val copy : t -> t

val equal : ?eps:float -> t -> t -> bool
(** Element-wise comparison of all arrays and regions; floats compared with
    relative tolerance [eps] (default 1e-9). Used by the semantics-
    preservation property tests. *)

val home_of_addr : t -> nprocs:int -> int -> int
(** Home processor of a byte address under block distribution: each array
    and region is split into [nprocs] contiguous chunks, chunk p living on
    processor p. Addresses outside any object map to processor 0. *)
