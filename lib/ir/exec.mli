(** Reference executor for IR programs.

    The executor interprets a program over a {!Data} store and, through an
    {!emitter}, reports every dynamic operation together with its register
    dataflow. Two uses:

    - with {!null_emitter} it is the semantics oracle (the property tests
      compare final stores of base vs transformed programs);
    - with a trace-building emitter (see [Memclust_codegen.Lower]) it
      produces the dynamic instruction stream consumed by the simulator,
      including the address dependences that serialize pointer chasing and
      indirect accesses.

    Dependence tokens are integers chosen by the emitter ([-1] = no
    dependence, i.e. the value is already available). *)

open Ast

type emitter = {
  e_int : int -> int -> int;
      (** 1-cycle integer/address operation; arguments = the (up to two)
          dependence tokens, [-1] = no dependence; result = token of the
          new operation. Every emission site passes its tokens positionally
          rather than as a list: the executor runs once per dynamic
          operation, so the per-op list allocation was measurable. *)
  e_fp : lat:int -> int -> int -> int;  (** floating-point operation *)
  e_load : ref_id:int -> addr:int -> int -> int -> int;
  e_store : ref_id:int -> addr:int -> int -> int -> int;
  e_prefetch : ref_id:int -> addr:int -> int -> int -> unit;
      (** non-binding prefetch hint *)
  e_branch : int -> int -> unit;  (** conditional branch / loop back-edge *)
  e_barrier : unit -> unit;  (** global synchronization *)
  e_set_proc : int -> unit;
      (** subsequent operations belong to this processor (parallel loops) *)
}

val null_emitter : emitter
(** Emits nothing; every token is [-1]. *)

exception Limit_exceeded
(** Raised when more than [max_ops] dynamic operations are executed. *)

val run :
  ?emit:emitter ->
  ?nprocs:int ->
  ?max_ops:int ->
  program ->
  Data.t ->
  unit
(** Execute the program, mutating the store. With [nprocs > 1] the
    iterations of each outermost [parallel] loop are block-distributed:
    operations from iteration chunks are attributed to their processor via
    [e_set_proc], and a barrier is emitted after the loop. [max_ops]
    (default 200 million) bounds runaway programs. *)

val fp_latency : binop -> int
(** Functional-unit latency used for each arithmetic operator (Table 1:
    1 cycle for ALU ops, 3 for most FPU ops, 16 for FP divide). *)
