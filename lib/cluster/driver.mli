(** End-to-end clustering driver: the compiler algorithm of paper §3,
    expressed as a declarative pipeline of named {!Pass.t} passes run by
    {!Pass.Pipeline.run}:

    + [uniquify] — make every loop variable unique (nests are addressed by
      variable from here on);
    + [analyze] — locality analysis, (optionally) miss-rate profiling, the
      memory-parallelism dependence graph and α/f of every innermost
      loop-like construct;
    + [fuse], [strip-mine] — optional comparison/extension transforms
      (disabled by default);
    + [unroll-jam] — if a loop has a recurrence and f < α·lp,
      binary-search the largest unroll-and-jam degree of an enclosing loop
      that keeps f ≤ α·lp (re-analyzing after each trial);
    + [window-unroll] — inner-loop unrolling when the misses of ⌈W/i⌉
      iterations cannot fill the MSHRs;
    + [scalar-replace], [prefetch] (optional), [schedule] — scalar
      replacement, prefetch insertion and miss-packing scheduling of every
      innermost body.

    The result is a transformed program plus a report of every decision
    and the pipeline's instrumentation trace (per-pass wall time, IR-size
    deltas, validation status). *)

open Memclust_ir

type action = Pass.action =
  | Unroll_jam of {
      target_var : string;
      factor : int;
      f_before : float;
      f_after : float;
      alpha : float;
    }
  | Inner_unroll of { inner_var : string; factor : int }
  | Rejected of { target_var : string; reason : string }

type nest_report = {
  nest_index : int;  (** position of the nest in the program body *)
  inner_desc : string;  (** innermost loop variable or chase pointer *)
  alpha : float;
  f_initial : float;
  actions : action list;
}

type report = {
  nests : nest_report list;
  scalar_replaced : int;  (** loads removed by scalar replacement *)
  trace : Pass.Pipeline.trace;  (** per-pass instrumentation *)
}

type scheduler = Pass.scheduler =
  | Pack_misses  (** the window-conscious packing of §3.3 (default) *)
  | Balanced  (** statement-level balanced scheduling (comparison baseline) *)
  | No_schedule

type chaos = Pass.chaos = {
  chaos_seed : int;
  chaos_rate : float;
  fail_pass : string option;
}
(** Deterministic pass sabotage for resilience testing (see
    {!Pass.chaos}). *)

type options = Pass.options = {
  machine : Machine_model.t;
  profile_pm : bool;  (** measure P_m by cache profiling (needs [init]) *)
  do_unroll_jam : bool;
  do_window : bool;  (** inner unrolling for window constraints *)
  do_scalar_replace : bool;
  do_schedule : bool;  (** run a local scheduler at all *)
  scheduler : scheduler;
  do_fuse : bool;  (** optional fusion pass (paper §6), default off *)
  do_strip_mine : bool;  (** optional strip-mine pass (§2.2), default off *)
  do_prefetch : bool;  (** optional prefetch-insertion pass, default off *)
  failsafe : bool;
      (** guard every pass, rolling back failures as degraded (default;
          see {!Pass.Pipeline.run}) *)
  chaos : chaos option;  (** sabotage injection (default [None]) *)
}

val default_options : options

val passes : Pass.t list
(** The registered pipeline, in execution order. *)

val pass_names : string list

val run :
  ?options:options ->
  ?init:(Data.t -> unit) ->
  ?only:string list ->
  ?observe:(string -> Ast.program -> unit) ->
  Ast.program ->
  Ast.program * report
(** Transform the program. [init] fills a fresh store with the workload's
    data (pointer chains, index arrays) so profiling sees real access
    patterns; without it, irregular references are assumed to always miss
    (P_m = 1). [only] restricts the pipeline to the named passes
    (overriding the option flags; [uniquify] always runs; unknown names
    raise [Invalid_argument]). [observe] is called with the pass name and
    program after every pass that ran. The returned program is renumbered
    and validated after every pass. *)

val pp_report : Format.formatter -> report -> unit
