open Memclust_ir
open Memclust_locality
open Memclust_depgraph
open Ast

(* ------------------------------------------------------------------ *)
(* Options shared by every pass                                        *)
(* ------------------------------------------------------------------ *)

type scheduler = Pack_misses | Balanced | No_schedule

(* Chaos testing: deterministically sabotage passes so the fail-safe
   guard's degradation path gets exercised end-to-end. *)
type chaos = {
  chaos_seed : int;
  chaos_rate : float;  (* per-pass sabotage probability *)
  fail_pass : string option;  (* always sabotage this pass *)
}

type options = {
  machine : Machine_model.t;
  profile_pm : bool;
  do_unroll_jam : bool;
  do_window : bool;
  do_scalar_replace : bool;
  do_schedule : bool;
  scheduler : scheduler;
  do_fuse : bool;
  do_strip_mine : bool;
  do_prefetch : bool;
  failsafe : bool;
  chaos : chaos option;
}

let default_options =
  {
    machine = Machine_model.base;
    profile_pm = true;
    do_unroll_jam = true;
    do_window = true;
    do_scalar_replace = true;
    do_schedule = true;
    scheduler = Pack_misses;
    do_fuse = false;
    do_strip_mine = false;
    do_prefetch = false;
    failsafe = true;
    chaos = None;
  }

(* "SEED[:RATE]" in MEMCLUST_CHAOS_PASSES (rate defaults to 0.25), plus
   MEMCLUST_FAIL_PASS naming one pass to sabotage unconditionally. The
   environment route exists so the repro CLI can reach pipelines built
   deep inside the harness, mirroring MEMCLUST_SIM_MODE. *)
let chaos_of_env () =
  let fail_pass =
    match Sys.getenv_opt "MEMCLUST_FAIL_PASS" with
    | None | Some "" -> None
    | Some s -> Some s
  in
  let spec =
    match Sys.getenv_opt "MEMCLUST_CHAOS_PASSES" with
    | None | Some "" -> None
    | Some s -> Some s
  in
  match (spec, fail_pass) with
  | None, None -> None
  | _ ->
      let chaos_seed, chaos_rate =
        match spec with
        | None -> (0, 0.0)
        | Some s -> (
            let bad () =
              invalid_arg
                (Printf.sprintf
                   "MEMCLUST_CHAOS_PASSES: expected SEED[:RATE] with RATE in \
                    [0,1], got %S"
                   s)
            in
            match String.split_on_char ':' (String.trim s) with
            | [ seed ] -> (
                match int_of_string_opt seed with
                | Some seed -> (seed, 0.25)
                | None -> bad ())
            | [ seed; rate ] -> (
                match (int_of_string_opt seed, float_of_string_opt rate) with
                | Some seed, Some rate when rate >= 0.0 && rate <= 1.0 ->
                    (seed, rate)
                | _ -> bad ())
            | _ -> bad ())
      in
      Some { chaos_seed; chaos_rate; fail_pass }

type ctx = { options : options; init : (Data.t -> unit) option }

(* ------------------------------------------------------------------ *)
(* Events: what a pass did, in terms the report can aggregate          *)
(* ------------------------------------------------------------------ *)

type action =
  | Unroll_jam of {
      target_var : string;
      factor : int;
      f_before : float;
      f_after : float;
      alpha : float;
    }
  | Inner_unroll of { inner_var : string; factor : int }
  | Rejected of { target_var : string; reason : string }

type event =
  | Nest_seen of {
      nest_index : int;
      inner_desc : string;
      key : string;
      alpha : float;
      f_initial : float;
    }
  | Nest_action of { key : string; action : action }
  | Count of { what : string; n : int }

let pp_action ppf = function
  | Unroll_jam { target_var; factor; f_before; f_after; alpha } ->
      Format.fprintf ppf "unroll-and-jam %s by %d (f %.2f -> %.2f, alpha %.2f)"
        target_var factor f_before f_after alpha
  | Inner_unroll { inner_var; factor } ->
      Format.fprintf ppf "inner-unroll %s by %d" inner_var factor
  | Rejected { target_var; reason } ->
      Format.fprintf ppf "no transform of %s (%s)" target_var reason

let event_label = function
  | Nest_seen { inner_desc; alpha; f_initial; _ } ->
      Printf.sprintf "nest %s: alpha=%.2f f=%.2f" inner_desc alpha f_initial
  | Nest_action { action; _ } -> Format.asprintf "%a" pp_action action
  | Count { what; n } -> Printf.sprintf "%s: %d" what n

(* ------------------------------------------------------------------ *)
(* The pass record                                                     *)
(* ------------------------------------------------------------------ *)

type t = {
  name : string;
  description : string;
  enabled : options -> bool;
  rewrite : ctx -> program -> program * event list;
}

(* ------------------------------------------------------------------ *)
(* Nest traversal helpers (shared by passes and the pipeline's own     *)
(* instrumentation)                                                    *)
(* ------------------------------------------------------------------ *)

type located = { inner : Depgraph.inner; enclosing : loop list }

let inner_desc = function
  | Depgraph.Counted l -> l.var
  | Depgraph.Chased c -> c.cvar

(* All innermost loop-like constructs under [l], each with its enclosing
   counted loops (outermost first). A loop directly containing a chase is
   not itself innermost — the chase is. *)
let locate_all (nest : loop) : located list =
  let acc = ref [] in
  let rec walk path (l : loop) =
    let nested =
      List.filter_map
        (function Loop l' -> Some (`L l') | Chase c -> Some (`C c) | _ -> None)
        l.body
    in
    if nested = [] then acc := { inner = Depgraph.Counted l; enclosing = path } :: !acc
    else
      List.iter
        (function
          | `L l' -> walk (path @ [ l ]) l'
          | `C c ->
              acc := { inner = Depgraph.Chased c; enclosing = path @ [ l ] } :: !acc)
        nested
  in
  walk [] nest;
  List.rev !acc

(* Innermost constructs are identified across transformations by their
   loop variable / chase pointer name (unroll-and-jam keeps both). *)
let inner_key = function
  | Depgraph.Counted l -> "L:" ^ l.var
  | Depgraph.Chased c -> "C:" ^ c.cvar

(* Top-level nests eligible for per-nest passes, identified by loop
   variable. After [uniquify] every loop variable in the program is
   unique, so a top-level loop whose variable already occurred anywhere
   earlier in the body is a rewrite artifact — an unroll-and-jam postlude
   reuses the original nest's variables — and is skipped, the role the old
   driver's shifting-index bookkeeping played. *)
let source_nest_vars p =
  let seen = Hashtbl.create 32 in
  let rec note stmt =
    match stmt with
    | Loop l ->
        Hashtbl.replace seen l.var ();
        List.iter note l.body
    | Chase c -> List.iter note c.cbody
    | If (_, t, e) ->
        List.iter note t;
        List.iter note e
    | Assign _ | Use _ | Barrier | Prefetch _ -> ()
  in
  List.filter_map
    (fun stmt ->
      match stmt with
      | Loop l ->
          let fresh = not (Hashtbl.mem seen l.var) in
          note stmt;
          if fresh then Some l.var else None
      | _ ->
          note stmt;
          None)
    p.body

let find_nest p var =
  let rec go i = function
    | [] -> None
    | Loop l :: _ when String.equal l.var var -> Some (i, l)
    | _ :: rest -> go (i + 1) rest
  in
  go 0 p.body

let replace_nest p ~var ~repl =
  let found = ref false in
  let body =
    List.concat_map
      (fun stmt ->
        match stmt with
        | Loop l when (not !found) && String.equal l.var var ->
            found := true;
            repl
        | _ -> [ stmt ])
      p.body
  in
  { p with body }

(* Replace the first loop (in program order) with variable [var] by the
   statement list [repl]. Exactly one replacement happens per call. *)
let replace_loop ~var ~repl stmt =
  let found = ref false in
  let rec go stmt =
    match stmt with
    | Loop l when (not !found) && String.equal l.var var ->
        found := true;
        repl
    | Loop l -> [ Loop { l with body = List.concat_map go l.body } ]
    | If (c, t, e) -> [ If (c, List.concat_map go t, List.concat_map go e) ]
    | Chase c -> [ Chase { c with cbody = List.concat_map go c.cbody } ]
    | Assign _ | Use _ | Barrier | Prefetch _ -> [ stmt ]
  in
  go stmt

(* ------------------------------------------------------------------ *)
(* The pipeline combinator                                             *)
(* ------------------------------------------------------------------ *)

module Pipeline = struct
  type nest_summary = { ns_inner : string; ns_alpha : float; ns_f : float }
  type ir_size = { stmts : int; static_refs : int }

  type entry = {
    pass_name : string;
    ran : bool;
    wall_ms : float;
    size_before : ir_size;
    size_after : ir_size;
    f_before : nest_summary list;
    f_after : nest_summary list;
    validated : bool;
    degraded : string option;
    events : event list;
  }

  type trace = { program_name : string; entries : entry list; total_ms : float }

  let degraded_passes trace =
    List.filter_map
      (fun e -> Option.map (fun r -> (e.pass_name, r)) e.degraded)
      trace.entries

  let measure p =
    let stmts = ref 0 in
    let rec walk stmt =
      incr stmts;
      match stmt with
      | Loop l -> List.iter walk l.body
      | Chase c -> List.iter walk c.cbody
      | If (_, t, e) ->
          List.iter walk t;
          List.iter walk e
      | Assign _ | Use _ | Barrier | Prefetch _ -> ()
    in
    List.iter walk p.body;
    { stmts = !stmts; static_refs = List.length (Program.refs p) }

  (* Static f/α per innermost construct of every source nest. Used for the
     trace only, so it deliberately skips miss-rate profiling (pm = 1):
     re-profiling the whole program after every pass would dominate
     pipeline time. Passes that need the profiled f compute it
     themselves. *)
  let nest_summaries options p =
    let loc =
      Locality.analyze ~line_size:options.machine.Machine_model.line_size p
    in
    List.concat_map
      (fun var ->
        match find_nest p var with
        | None -> []
        | Some (_, nest) ->
            List.map
              (fun located ->
                let graph = Depgraph.analyze loc located.inner in
                let fest =
                  Festimate.compute options.machine loc
                    ~pm:(fun _ -> 1.0)
                    ~graph located.inner
                in
                {
                  ns_inner = inner_desc located.inner;
                  ns_alpha = Depgraph.alpha graph;
                  ns_f = fest.Festimate.f;
                })
              (locate_all nest))
      (source_nest_vars p)

  let now_ms () = Unix.gettimeofday () *. 1000.0

  (* Differential-execution budgets. The reference run of the source
     program is bounded tightly — when the workload is too big to
     interpret cheaply, the guard falls back to structural validation
     and crash containment. Candidates get headroom (prefetch insertion
     and unrolling add some dynamic operations); a candidate that blows
     even that is degraded as a runaway. *)
  let diff_ref_max_ops = 64_000_000
  let diff_cand_max_ops = 128_000_000

  (* Chaos corruption: remove the first assignment, searching depth-first
     — most workloads are one big top-level nest, so dropping a top-level
     statement would usually be a no-op. The result stays structurally
     valid but is semantically wrong, which is exactly what the
     differential guard must catch. *)
  let corrupt_program (p : program) =
    let removed = ref false in
    let rec drop ss =
      match ss with
      | [] -> []
      | _ when !removed -> ss
      | Assign _ :: rest ->
          removed := true;
          rest
      | Loop l :: rest -> Loop { l with body = drop l.body } :: drop rest
      | Chase c :: rest -> Chase { c with cbody = drop c.cbody } :: drop rest
      | If (e, t, f) :: rest ->
          let t = drop t in
          let f = drop f in
          If (e, t, f) :: drop rest
      | s :: rest -> s :: drop rest
    in
    let body = drop p.body in
    if !removed then { p with body }
    else
      (* no assignment anywhere: drop whatever statement comes first *)
      match p.body with _ :: rest -> { p with body = rest } | [] -> p

  let run ?(summaries = true) ?observe ctx passes p =
    let t_start = now_ms () in
    let p0 = Program.renumber p in
    let current = ref p0 in
    let entries = ref [] in
    let failsafe = ctx.options.failsafe in
    let chaos =
      match ctx.options.chaos with Some c -> Some c | None -> chaos_of_env ()
    in
    let chaos_rng =
      Option.map
        (fun c -> Memclust_util.Rng.create (c.chaos_seed lxor Hashtbl.hash p.p_name))
        chaos
    in
    (* The reference store — the source program's final data state —
       computed lazily once per pipeline run. The paper's own methodology
       (§4) defines correctness as semantic identity to the source, so
       every pass is compared against the ORIGINAL program, not its
       predecessor: rollback restores a last-good IR that is itself
       equivalent to the source. *)
    let reference =
      lazy
        (match ctx.init with
        | None -> None
        | Some init -> (
            try
              let d = Data.create p0 in
              init d;
              Exec.run ~max_ops:diff_ref_max_ops p0 d;
              Some d
            with Exec.Limit_exceeded -> None))
    in
    let divergence candidate =
      match (Lazy.force reference, ctx.init) with
      | Some ref_store, Some init -> (
          try
            let d = Data.create candidate in
            init d;
            Exec.run ~max_ops:diff_cand_max_ops candidate d;
            if Data.equal ref_store d then None
            else Some "differential execution: final stores diverge from the source program"
          with Exec.Limit_exceeded ->
            Some "differential execution: dynamic-operation budget exceeded (runaway rewrite?)")
      | _ -> None
    in
    (* Chaos sabotage for this pass: [`Crash] raises mid-rewrite,
       [`Corrupt] ships a semantically wrong result; the guard must
       contain both. uniquify is never sabotaged — every later pass keys
       nests by the globally-unique loop variables it establishes. *)
    let sabotage name =
      if String.equal name "uniquify" then `None
      else
        match (chaos, chaos_rng) with
        | Some c, Some rng ->
            let forced =
              match c.fail_pass with
              | Some f -> String.equal f name
              | None -> false
            in
            (* fixed draw order keeps the stream deterministic per seed *)
            let hit =
              c.chaos_rate > 0.0
              && Memclust_util.Rng.float rng 1.0 < c.chaos_rate
            in
            let crash = Memclust_util.Rng.bool rng in
            if forced then `Corrupt
            else if hit then if crash then `Crash else `Corrupt
            else `None
        | _ -> `None
    in
    let record entry = entries := entry :: !entries in
    List.iter
      (fun pass ->
        if not (pass.enabled ctx.options) then begin
          let size = measure !current in
          record
            {
              pass_name = pass.name;
              ran = false;
              wall_ms = 0.0;
              size_before = size;
              size_after = size;
              f_before = [];
              f_after = [];
              validated = true;
              degraded = None;
              events = [];
            }
        end
        else begin
          let size_before = measure !current in
          let f_before =
            if summaries then nest_summaries ctx.options !current else []
          in
          let t0 = now_ms () in
          (* Roll back to the last-good IR: the program is untouched, the
             failure is recorded in the trace, and the pipeline continues —
             worst case the untransformed program ships. *)
          let degrade ~validated ~events reason =
            record
              {
                pass_name = pass.name;
                ran = true;
                wall_ms = now_ms () -. t0;
                size_before;
                size_after = size_before;
                f_before;
                f_after = [];
                validated;
                degraded = Some reason;
                events;
              }
          in
          let accept p' events =
            let size_after = measure p' in
            let f_after =
              if summaries then nest_summaries ctx.options p' else []
            in
            current := p';
            (match observe with Some f -> f pass.name p' | None -> ());
            record
              {
                pass_name = pass.name;
                ran = true;
                wall_ms = now_ms () -. t0;
                size_before;
                size_after;
                f_before;
                f_after;
                validated = true;
                degraded = None;
                events;
              }
          in
          let attempt () =
            match sabotage pass.name with
            | `None -> pass.rewrite ctx !current
            | `Crash ->
                failwith (Printf.sprintf "%s: chaos-injected crash" pass.name)
            | `Corrupt ->
                (* ship the real result minus one assignment: still
                   structurally plausible, semantically wrong *)
                let p', events = pass.rewrite ctx !current in
                (corrupt_program p', events)
          in
          match attempt () with
          | exception e ->
              let reason =
                Printf.sprintf "pass crashed: %s" (Printexc.to_string e)
              in
              if failsafe then degrade ~validated:true ~events:[] reason
              else
                Memclust_util.Error.raise_err
                  (Memclust_util.Error.Pass_failed
                     { pass = pass.name; reason })
          | p', events -> (
              let p' = Program.renumber p' in
              match Program.validate p' with
              | Error msg ->
                  let detail = "invalid IR: " ^ msg in
                  if failsafe then degrade ~validated:false ~events detail
                  else
                    Memclust_util.Error.raise_err
                      (Memclust_util.Error.Legality_violation
                         { pass = pass.name; detail })
              | Ok () -> (
                  match divergence p' with
                  | Some detail ->
                      if failsafe then degrade ~validated:false ~events detail
                      else
                        Memclust_util.Error.raise_err
                          (Memclust_util.Error.Legality_violation
                             { pass = pass.name; detail })
                  | None -> accept p' events))
        end)
      passes;
    ( !current,
      {
        program_name = p.p_name;
        entries = List.rev !entries;
        total_ms = now_ms () -. t_start;
      } )

  let run_result ?summaries ?observe ctx passes p =
    match run ?summaries ?observe ctx passes p with
    | v -> Ok v
    | exception Memclust_util.Error.Error e -> Error e

  (* ---------------------------- rendering --------------------------- *)

  let pp_trace ppf trace =
    Format.fprintf ppf "@[<v>pipeline %s (%.2f ms total)@," trace.program_name
      trace.total_ms;
    List.iter
      (fun e ->
        if not e.ran then Format.fprintf ppf "  %-14s (disabled)@," e.pass_name
        else begin
          Format.fprintf ppf
            "  %-14s %7.2f ms  stmts %d->%d  refs %d->%d  [%s]@," e.pass_name
            e.wall_ms e.size_before.stmts e.size_after.stmts
            e.size_before.static_refs e.size_after.static_refs
            (match e.degraded with
            | Some _ -> "DEGRADED"
            | None -> if e.validated then "ok" else "INVALID");
          (match e.degraded with
          | Some reason ->
              Format.fprintf ppf "      rolled back: %s@," reason
          | None -> ());
          List.iter
            (fun ev -> Format.fprintf ppf "      %s@," (event_label ev))
            e.events
        end)
      trace.entries;
    Format.fprintf ppf "@]"

  (* Minimal JSON emission — enough structure for external tooling without
     pulling in a JSON dependency. *)
  let json_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let json_float v =
    if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

  let summaries_to_json l =
    "["
    ^ String.concat ","
        (List.map
           (fun s ->
             Printf.sprintf "{\"inner\":\"%s\",\"alpha\":%s,\"f\":%s}"
               (json_escape s.ns_inner) (json_float s.ns_alpha)
               (json_float s.ns_f))
           l)
    ^ "]"

  let entry_to_json e =
    Printf.sprintf
      "{\"name\":\"%s\",\"ran\":%b,\"wall_ms\":%s,\"stmts_before\":%d,\"stmts_after\":%d,\"refs_before\":%d,\"refs_after\":%d,\"validated\":%b,\"degraded\":%s,\"f_before\":%s,\"f_after\":%s,\"events\":[%s]}"
      (json_escape e.pass_name) e.ran (json_float e.wall_ms)
      e.size_before.stmts e.size_after.stmts e.size_before.static_refs
      e.size_after.static_refs e.validated
      (match e.degraded with
      | Some r -> "\"" ^ json_escape r ^ "\""
      | None -> "null")
      (summaries_to_json e.f_before)
      (summaries_to_json e.f_after)
      (String.concat ","
         (List.map
            (fun ev -> "\"" ^ json_escape (event_label ev) ^ "\"")
            e.events))

  let trace_to_json trace =
    Printf.sprintf "{\"program\":\"%s\",\"total_ms\":%s,\"passes\":[%s]}"
      (json_escape trace.program_name)
      (json_float trace.total_ms)
      (String.concat ",\n  " (List.map entry_to_json trace.entries))
end
