(** Composable, instrumented transformation passes.

    The paper's method is a pipeline — analyze (locality, dependence
    graph, f/α per Equations 1–4), then rewrite (unroll-and-jam, inner
    unrolling, scalar replacement, miss-packing scheduling). This module
    gives each stage the shape of classic compiler infrastructure: a
    named {!t} with a rewrite function and an enabled-predicate, run by
    {!Pipeline.run}, which after {e every} pass renumbers and validates
    the program (failing fast with the offending pass named) and records
    wall-clock time, IR-size deltas and before/after f/α summaries into a
    structured {!Pipeline.trace}.

    The standard pipeline lives in {!Driver}; this module is the
    machinery plus the nest-traversal helpers the passes share. *)

open Memclust_ir
open Memclust_depgraph
open Ast

(** {1 Options} *)

type scheduler =
  | Pack_misses  (** the window-conscious packing of §3.3 (default) *)
  | Balanced  (** statement-level balanced scheduling (comparison baseline) *)
  | No_schedule

type chaos = {
  chaos_seed : int;
  chaos_rate : float;
      (** per-pass sabotage probability; each sabotage is a crash
          (exception mid-rewrite) or a corruption (semantically wrong
          result), drawn deterministically from the seed *)
  fail_pass : string option;
      (** a pass name to corrupt unconditionally ([uniquify] is never
          sabotaged: later passes key nests by its unique variables) *)
}
(** Chaos testing for the fail-safe pipeline: deterministic, seeded
    sabotage of passes, so graceful degradation is exercisable
    end-to-end. *)

type options = {
  machine : Machine_model.t;
  profile_pm : bool;  (** measure P_m by cache profiling (needs [init]) *)
  do_unroll_jam : bool;
  do_window : bool;  (** inner unrolling for window constraints *)
  do_scalar_replace : bool;
  do_schedule : bool;  (** run a local scheduler at all *)
  scheduler : scheduler;
  do_fuse : bool;  (** fuse adjacent top-level loops first (§6, off) *)
  do_strip_mine : bool;
      (** strip-mine-and-interchange top-level 2-nests (§2.2 comparison,
          off) *)
  do_prefetch : bool;  (** software prefetch insertion after clustering (off) *)
  failsafe : bool;
      (** guard every pass (default): a pass that crashes, produces
          invalid IR or changes program semantics is rolled back and
          recorded as degraded instead of failing the pipeline *)
  chaos : chaos option;  (** sabotage injection; [None] (default) also
                             consults {!chaos_of_env} at run time *)
}

val default_options : options

val chaos_of_env : unit -> chaos option
(** The [MEMCLUST_CHAOS_PASSES] ("SEED[:RATE]", rate defaulting to 0.25)
    and [MEMCLUST_FAIL_PASS] (a pass name) environment variables — how
    the repro CLI reaches pipelines constructed deep inside the harness.
    [None] when neither is set; raises [Invalid_argument] on malformed
    values. *)

type ctx = { options : options; init : (Data.t -> unit) option }
(** What every pass may consult: the machine/flag options and the
    workload's data initializer (for miss-rate profiling). *)

(** {1 Events} *)

(** One decision taken on a nest (reported per nest in {!Driver.report}). *)
type action =
  | Unroll_jam of {
      target_var : string;
      factor : int;
      f_before : float;
      f_after : float;
      alpha : float;
    }
  | Inner_unroll of { inner_var : string; factor : int }
  | Rejected of { target_var : string; reason : string }

(** What a pass did, in terms the driver's report can aggregate. *)
type event =
  | Nest_seen of {
      nest_index : int;  (** position of the nest in the program body *)
      inner_desc : string;
      key : string;  (** stable identity of the innermost construct *)
      alpha : float;
      f_initial : float;
    }
  | Nest_action of { key : string; action : action }
  | Count of { what : string; n : int }

val pp_action : Format.formatter -> action -> unit
val event_label : event -> string

(** {1 The pass record} *)

type t = {
  name : string;
  description : string;
  enabled : options -> bool;  (** consulted by {!Pipeline.run} *)
  rewrite : ctx -> program -> program * event list;
      (** must return a structurally valid program; the pipeline renumbers
          and validates after every pass *)
}

(** {1 Nest traversal}

    Shared helpers: top-level nests are addressed by loop variable, which
    [Driver]'s uniquify pass makes globally unique — stable against the
    top-level postlude statements unroll-and-jam splices in (which reuse
    existing variables and are therefore recognized and skipped). *)

type located = { inner : Depgraph.inner; enclosing : loop list }

val inner_desc : Depgraph.inner -> string
val inner_key : Depgraph.inner -> string

val locate_all : loop -> located list
(** All innermost loop-like constructs under a nest, each with its
    enclosing counted loops (outermost first). *)

val source_nest_vars : program -> string list
(** Variables of the top-level source nests, in program order; top-level
    loops whose variable already occurred earlier in the body (postlude
    artifacts) are excluded. *)

val find_nest : program -> string -> (int * loop) option
(** Current body position and loop of the first top-level nest with the
    given variable. *)

val replace_nest : program -> var:string -> repl:stmt list -> program
(** Splice [repl] in place of the first top-level loop with variable
    [var]. *)

val replace_loop : var:string -> repl:stmt list -> stmt -> stmt list
(** Replace the first loop (in program order) with variable [var] inside
    one statement by [repl]; exactly one replacement per call. *)

(** {1 The pipeline} *)

module Pipeline : sig
  type nest_summary = { ns_inner : string; ns_alpha : float; ns_f : float }
  type ir_size = { stmts : int; static_refs : int }

  type entry = {
    pass_name : string;
    ran : bool;  (** false: disabled by its predicate, program untouched *)
    wall_ms : float;
    size_before : ir_size;
    size_after : ir_size;
    f_before : nest_summary list;
    f_after : nest_summary list;
    validated : bool;
        (** false only on a degraded entry whose candidate failed
            validation or differential execution *)
    degraded : string option;
        (** [Some reason]: the pass failed its guard (crash, invalid IR,
            or semantic divergence) and was rolled back — the program
            shipped to the next pass is the last-good IR *)
    events : event list;
  }

  type trace = { program_name : string; entries : entry list; total_ms : float }

  val degraded_passes : trace -> (string * string) list
  (** [(pass, reason)] for every degraded entry, in pipeline order. *)

  val measure : program -> ir_size

  val nest_summaries : options -> program -> nest_summary list
  (** Static f/α per innermost construct of every source nest, with
      [pm = 1] (no profiling — this instruments every pass boundary, so it
      must stay cheap). *)

  val run :
    ?summaries:bool ->
    ?observe:(string -> program -> unit) ->
    ctx ->
    t list ->
    program ->
    program * trace
  (** Run the enabled passes in order, each under the fail-safe guard:
      the result is renumbered, re-validated and — when the context has a
      workload initializer and the source program fits the interpreter
      op budget — differentially executed against the {e original}
      program's final store. With [options.failsafe] (the default) a
      pass that crashes, produces invalid IR or diverges semantically is
      rolled back: the trace entry records [degraded] with the reason and
      the pipeline continues from the last-good IR, so the worst case
      ships the untransformed program, never a crash or wrong code. With
      [failsafe = false] the same detections raise
      [Memclust_util.Error.Error] ([Pass_failed] or
      [Legality_violation]) naming the pass.

      [observe] is called with the pass name and the accepted program
      after each pass that ran and was not rolled back.
      [summaries:false] skips the f/α trace summaries. *)

  val run_result :
    ?summaries:bool ->
    ?observe:(string -> program -> unit) ->
    ctx ->
    t list ->
    program ->
    (program * trace, Memclust_util.Error.t) result
  (** {!run} with the [failsafe = false] errors returned instead of
      raised. *)

  val pp_trace : Format.formatter -> trace -> unit

  val trace_to_json : trace -> string
  (** The trace as a self-contained JSON object (name, wall time, IR
      deltas, validation status and f/α summaries per pass). *)
end
