(** Composable, instrumented transformation passes.

    The paper's method is a pipeline — analyze (locality, dependence
    graph, f/α per Equations 1–4), then rewrite (unroll-and-jam, inner
    unrolling, scalar replacement, miss-packing scheduling). This module
    gives each stage the shape of classic compiler infrastructure: a
    named {!t} with a rewrite function and an enabled-predicate, run by
    {!Pipeline.run}, which after {e every} pass renumbers and validates
    the program (failing fast with the offending pass named) and records
    wall-clock time, IR-size deltas and before/after f/α summaries into a
    structured {!Pipeline.trace}.

    The standard pipeline lives in {!Driver}; this module is the
    machinery plus the nest-traversal helpers the passes share. *)

open Memclust_ir
open Memclust_depgraph
open Ast

(** {1 Options} *)

type scheduler =
  | Pack_misses  (** the window-conscious packing of §3.3 (default) *)
  | Balanced  (** statement-level balanced scheduling (comparison baseline) *)
  | No_schedule

type options = {
  machine : Machine_model.t;
  profile_pm : bool;  (** measure P_m by cache profiling (needs [init]) *)
  do_unroll_jam : bool;
  do_window : bool;  (** inner unrolling for window constraints *)
  do_scalar_replace : bool;
  do_schedule : bool;  (** run a local scheduler at all *)
  scheduler : scheduler;
  do_fuse : bool;  (** fuse adjacent top-level loops first (§6, off) *)
  do_strip_mine : bool;
      (** strip-mine-and-interchange top-level 2-nests (§2.2 comparison,
          off) *)
  do_prefetch : bool;  (** software prefetch insertion after clustering (off) *)
}

val default_options : options

type ctx = { options : options; init : (Data.t -> unit) option }
(** What every pass may consult: the machine/flag options and the
    workload's data initializer (for miss-rate profiling). *)

(** {1 Events} *)

(** One decision taken on a nest (reported per nest in {!Driver.report}). *)
type action =
  | Unroll_jam of {
      target_var : string;
      factor : int;
      f_before : float;
      f_after : float;
      alpha : float;
    }
  | Inner_unroll of { inner_var : string; factor : int }
  | Rejected of { target_var : string; reason : string }

(** What a pass did, in terms the driver's report can aggregate. *)
type event =
  | Nest_seen of {
      nest_index : int;  (** position of the nest in the program body *)
      inner_desc : string;
      key : string;  (** stable identity of the innermost construct *)
      alpha : float;
      f_initial : float;
    }
  | Nest_action of { key : string; action : action }
  | Count of { what : string; n : int }

val pp_action : Format.formatter -> action -> unit
val event_label : event -> string

(** {1 The pass record} *)

type t = {
  name : string;
  description : string;
  enabled : options -> bool;  (** consulted by {!Pipeline.run} *)
  rewrite : ctx -> program -> program * event list;
      (** must return a structurally valid program; the pipeline renumbers
          and validates after every pass *)
}

(** {1 Nest traversal}

    Shared helpers: top-level nests are addressed by loop variable, which
    [Driver]'s uniquify pass makes globally unique — stable against the
    top-level postlude statements unroll-and-jam splices in (which reuse
    existing variables and are therefore recognized and skipped). *)

type located = { inner : Depgraph.inner; enclosing : loop list }

val inner_desc : Depgraph.inner -> string
val inner_key : Depgraph.inner -> string

val locate_all : loop -> located list
(** All innermost loop-like constructs under a nest, each with its
    enclosing counted loops (outermost first). *)

val source_nest_vars : program -> string list
(** Variables of the top-level source nests, in program order; top-level
    loops whose variable already occurred earlier in the body (postlude
    artifacts) are excluded. *)

val find_nest : program -> string -> (int * loop) option
(** Current body position and loop of the first top-level nest with the
    given variable. *)

val replace_nest : program -> var:string -> repl:stmt list -> program
(** Splice [repl] in place of the first top-level loop with variable
    [var]. *)

val replace_loop : var:string -> repl:stmt list -> stmt -> stmt list
(** Replace the first loop (in program order) with variable [var] inside
    one statement by [repl]; exactly one replacement per call. *)

(** {1 The pipeline} *)

module Pipeline : sig
  type nest_summary = { ns_inner : string; ns_alpha : float; ns_f : float }
  type ir_size = { stmts : int; static_refs : int }

  type entry = {
    pass_name : string;
    ran : bool;  (** false: disabled by its predicate, program untouched *)
    wall_ms : float;
    size_before : ir_size;
    size_after : ir_size;
    f_before : nest_summary list;
    f_after : nest_summary list;
    validated : bool;
    events : event list;
  }

  type trace = { program_name : string; entries : entry list; total_ms : float }

  val measure : program -> ir_size

  val nest_summaries : options -> program -> nest_summary list
  (** Static f/α per innermost construct of every source nest, with
      [pm = 1] (no profiling — this instruments every pass boundary, so it
      must stay cheap). *)

  val run :
    ?summaries:bool ->
    ?observe:(string -> program -> unit) ->
    ctx ->
    t list ->
    program ->
    program * trace
  (** Run the enabled passes in order. After every pass the program is
      renumbered and validated — an invalid result raises
      [Invalid_argument] naming the pass. [observe] is called with the
      pass name and the (renumbered, validated) program after each pass
      that ran. [summaries:false] skips the f/α trace summaries. *)

  val pp_trace : Format.formatter -> trace -> unit

  val trace_to_json : trace -> string
  (** The trace as a self-contained JSON object (name, wall time, IR
      deltas, validation status and f/α summaries per pass). *)
end
