open Memclust_ir
open Memclust_locality
open Memclust_depgraph
open Memclust_transform
open Ast

(* Re-exported so existing callers keep their [Driver.Unroll_jam],
   [Driver.default_options] spellings. *)
type action = Pass.action =
  | Unroll_jam of {
      target_var : string;
      factor : int;
      f_before : float;
      f_after : float;
      alpha : float;
    }
  | Inner_unroll of { inner_var : string; factor : int }
  | Rejected of { target_var : string; reason : string }

type scheduler = Pass.scheduler = Pack_misses | Balanced | No_schedule
type chaos = Pass.chaos = {
  chaos_seed : int;
  chaos_rate : float;
  fail_pass : string option;
}

type options = Pass.options = {
  machine : Machine_model.t;
  profile_pm : bool;
  do_unroll_jam : bool;
  do_window : bool;
  do_scalar_replace : bool;
  do_schedule : bool;
  scheduler : scheduler;
  do_fuse : bool;
  do_strip_mine : bool;
  do_prefetch : bool;
  failsafe : bool;
  chaos : chaos option;
}

let default_options = Pass.default_options

type nest_report = {
  nest_index : int;
  inner_desc : string;
  alpha : float;
  f_initial : float;
  actions : action list;
}

type report = {
  nests : nest_report list;
  scalar_replaced : int;
  trace : Pass.Pipeline.trace;
}

(* ------------------------------------------------------------------ *)
(* Uniquify: rename loop variables so every counted loop is unique      *)
(* ------------------------------------------------------------------ *)

(* Sibling loops reusing a variable name (FFT's per-stage nests, Ocean's
   two sweeps) would otherwise be indistinguishable to the name-keyed
   nest traversal. *)
let uniquify_loops (p : program) =
  let taken = Hashtbl.create 32 in
  let fresh v =
    if not (Hashtbl.mem taken v) then begin
      Hashtbl.add taken v ();
      v
    end
    else begin
      let rec pick k =
        let cand = Printf.sprintf "%s$%d" v k in
        if Hashtbl.mem taken cand then pick (k + 1) else cand
      in
      let w = pick 1 in
      Hashtbl.add taken w ();
      w
    end
  in
  let rec walk stmt =
    match stmt with
    | Loop l ->
        let w = fresh l.var in
        let stmt' =
          if String.equal w l.var then Loop l
          else Memclust_transform.Subst.rename_var l.var w (Loop l)
        in
        (match stmt' with
        | Loop l' -> Loop { l' with body = List.map walk l'.body }
        | _ -> assert false)
    | Chase c -> Chase { c with cbody = List.map walk c.cbody }
    | If (cond, t, e) -> If (cond, List.map walk t, List.map walk e)
    | Assign _ | Use _ | Barrier | Prefetch _ -> stmt
  in
  { p with body = List.map walk p.body }

(* ------------------------------------------------------------------ *)
(* Analysis wrappers                                                   *)
(* ------------------------------------------------------------------ *)

(* Profiling interprets the whole program, and the same candidate program
   is profiled repeatedly — across binary-search steps, and across
   machine configurations that differ only in parameters the profile
   doesn't depend on (window, MSHR count). Memoize on a structural digest
   of the program plus the line size; [p_name] is part of the digest, so
   workloads with distinct initializers never collide. The returned
   closure reads an immutable profile, so sharing across domains is safe. *)
let pm_cache : (int -> float) Memclust_util.Analysis_cache.t =
  Memclust_util.Analysis_cache.create ~cap:512 ~name:"driver-profile-pm" ()

let make_pm options ~init p =
  if not options.profile_pm then fun _ -> 1.0
  else begin
    let line_size = options.machine.Machine_model.line_size in
    let key =
      Printf.sprintf "%d|%s|%s" line_size
        (match init with None -> "-" | Some _ -> "i")
        (Digest.to_hex (Digest.string (Marshal.to_string p [])))
    in
    Memclust_util.Analysis_cache.find_or_compute pm_cache key (fun () ->
        let data = Data.create p in
        (match init with Some f -> f data | None -> ());
        let prof = Profile.run ~line_size p data in
        fun id -> Profile.miss_rate prof id)
  end

(* Evaluate f for the innermost construct identified by [key] inside the
   top-level nest whose loop variable is [nest_var]. *)
let evaluate options ~init p ~nest_var ~key =
  let loc = Locality.analyze ~line_size:options.machine.Machine_model.line_size p in
  let pm = make_pm options ~init p in
  match Pass.find_nest p nest_var with
  | None -> None
  | Some (_, nest) -> (
      match
        List.find_opt
          (fun (l : Pass.located) -> String.equal (Pass.inner_key l.inner) key)
          (Pass.locate_all nest)
      with
      | None -> None
      | Some located ->
          let graph = Depgraph.analyze loc located.Pass.inner in
          let alpha = Depgraph.alpha graph in
          let fest =
            Festimate.compute options.machine loc ~pm ~graph located.Pass.inner
          in
          Some (loc, located, graph, alpha, fest))

(* ------------------------------------------------------------------ *)
(* Unroll-and-jam with binary search on the degree                     *)
(* ------------------------------------------------------------------ *)

let try_factor p ~nest_var (parent : loop) enclosing n =
  let outer_ranges =
    Legality.ranges_of_nest ~params:p.params
      (List.filter (fun (l : loop) -> not (String.equal l.var parent.var)) enclosing)
  in
  match Unroll_jam.apply ~params:p.params ~outer_ranges ~factor:n parent with
  | Error e -> Error (Format.asprintf "%a" Unroll_jam.pp_error e)
  | Ok repl -> (
      match Pass.find_nest p nest_var with
      | None -> Error "internal: nest vanished"
      | Some (_, nest) ->
          let nest' = Pass.replace_loop ~var:parent.var ~repl (Loop nest) in
          Ok (Program.renumber (Pass.replace_nest p ~var:nest_var ~repl:nest')))

let resolve_recurrences options ~init p ~nest_var ~key parent enclosing ~alpha ~f0
    =
  let lp = float_of_int options.machine.Machine_model.mshrs in
  let target = alpha *. lp in
  let u = options.machine.Machine_model.max_unroll in
  (* a loop whose iterations will be block-distributed (parallel, with no
     parallel ancestor) must keep at least max_procs chunks *)
  let u =
    let distributed =
      parent.parallel
      &&
      let rec outside = function
        | [] -> true
        | (l : loop) :: rest ->
            if String.equal l.var parent.var then true
            else (not l.parallel) && outside rest
      in
      outside enclosing
    in
    if not distributed then u
    else begin
      let env v =
        match List.assoc_opt v p.params with Some k -> k | None -> raise Exit
      in
      match (Affine.eval env parent.lo, Affine.eval env parent.hi) with
      | lo, hi ->
          let trip = max 1 ((hi - lo + parent.step - 1) / parent.step) in
          min u (max 1 (trip / options.machine.Machine_model.max_procs))
      | exception Exit -> u
    end
  in
  (* f is monotone in the unroll degree: binary-search the largest degree
     whose f stays within α·lp (the paper's contention-conscious rule) *)
  let f_of n =
    match try_factor p ~nest_var parent enclosing n with
    | Error msg -> Error msg
    | Ok p' -> (
        match evaluate options ~init p' ~nest_var ~key with
        | Some (_, _, _, _, fest) -> Ok (p', fest.Festimate.f)
        | None -> Error "internal: nest vanished")
  in
  let best = ref None in
  let last_error = ref "" in
  let lo = ref 2 and hi = ref u in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    match f_of mid with
    | Ok (p', f) when f <= target ->
        best := Some (mid, p', f);
        lo := mid + 1
    | Ok _ -> hi := mid - 1
    | Error msg ->
        last_error := msg;
        hi := mid - 1
  done;
  match !best with
  | Some (n, p', f) ->
      ( p',
        [ Unroll_jam
            { target_var = parent.var; factor = n; f_before = f0; f_after = f; alpha };
        ] )
  | None ->
      ( p,
        [ Rejected
            {
              target_var = parent.var;
              reason =
                (if String.equal !last_error "" then
                   "no degree improves f within alpha*lp"
                 else !last_error);
            };
        ] )

(* ------------------------------------------------------------------ *)
(* Window-constraint resolution                                        *)
(* ------------------------------------------------------------------ *)

let resolve_window options ~init p ~nest_var ~key =
  match evaluate options ~init p ~nest_var ~key with
  | None -> (p, [])
  | Some (_, located, graph, _, fest) -> (
      let lp = float_of_int options.machine.Machine_model.mshrs in
      let density = fest.Festimate.misses_per_iteration in
      match located.Pass.inner with
      | Depgraph.Counted l
        when graph.Depgraph.recurrences = []
             && density > 0.0
             && fest.Festimate.f < lp ->
          let k =
            min options.machine.Machine_model.max_unroll
              (max 2 (int_of_float (Float.ceil (lp /. density))))
          in
          (match Inner_unroll.apply ~params:p.params ~factor:k l with
          | Error _ -> (p, [])
          | Ok repl -> (
              match Pass.find_nest p nest_var with
              | None -> (p, [])
              | Some (_, nest) ->
                  let nest' = Pass.replace_loop ~var:l.var ~repl (Loop nest) in
                  let p' =
                    Program.renumber (Pass.replace_nest p ~var:nest_var ~repl:nest')
                  in
                  (p', [ Inner_unroll { inner_var = l.var; factor = k } ])))
      | _ -> (p, []))

(* ------------------------------------------------------------------ *)
(* Miss-packing scheduling of innermost bodies                         *)
(* ------------------------------------------------------------------ *)

let schedule_innermost options p =
  let loc = Locality.analyze ~line_size:options.machine.Machine_model.line_size p in
  let scheduled = ref 0 in
  let reorder body =
    let body' =
      match options.scheduler with
      | Pack_misses -> Schedule.pack_misses loc body
      | Balanced -> Balanced_sched.reorder loc body
      | No_schedule -> body
    in
    if body' != body && body' <> body then incr scheduled;
    body'
  in
  let rec walk stmt =
    match stmt with
    | Loop l ->
        let has_nested =
          List.exists (function Loop _ | Chase _ -> true | _ -> false) l.body
        in
        if has_nested then Loop { l with body = List.map walk l.body }
        else Loop { l with body = reorder l.body }
    | Chase c ->
        let has_nested =
          List.exists (function Loop _ | Chase _ -> true | _ -> false) c.cbody
        in
        if has_nested then Chase { c with cbody = List.map walk c.cbody }
        else Chase { c with cbody = reorder c.cbody }
    | If (c, t, e) -> If (c, List.map walk t, List.map walk e)
    | Assign _ | Use _ | Barrier | Prefetch _ -> stmt
  in
  let p' = { p with body = List.map walk p.body } in
  (p', !scheduled)

(* ------------------------------------------------------------------ *)
(* The registered passes                                               *)
(* ------------------------------------------------------------------ *)

let always _ = true

(* Chase pointer names are not uniquified, so an inner-construct key alone
   can repeat across nests; events qualify it with the nest variable so the
   report attaches each action to the right nest. *)
let qkey nest_var key = nest_var ^ "/" ^ key

(* Iterate the source nests and their innermost-construct keys, threading
   the program through [f] — the single nest-indexed traversal that
   replaces the old driver's shifting-index [while] loop. *)
let over_nest_keys p f =
  let events = ref [] in
  let p = ref p in
  List.iter
    (fun nest_var ->
      match Pass.find_nest !p nest_var with
      | None -> ()
      | Some (_, nest) ->
          let keys =
            List.map (fun (l : Pass.located) -> Pass.inner_key l.inner)
              (Pass.locate_all nest)
            |> List.sort_uniq String.compare
          in
          List.iter
            (fun key ->
              let p', evs = f !p ~nest_var ~key in
              p := p';
              events := !events @ evs)
            keys)
    (Pass.source_nest_vars !p);
  (!p, !events)

let uniquify_pass =
  {
    Pass.name = "uniquify";
    description = "rename loop variables so every counted loop is unique";
    enabled = always;
    rewrite = (fun _ p -> (uniquify_loops p, []));
  }

let analyze_pass =
  {
    Pass.name = "analyze";
    description =
      "per-nest locality/dependence analysis: records alpha and the \
       initial f of every innermost construct";
    enabled = always;
    rewrite =
      (fun { Pass.options; init } p ->
        over_nest_keys p (fun p ~nest_var ~key ->
            match evaluate options ~init p ~nest_var ~key with
            | None -> (p, [])
            | Some (_, located, _, alpha, fest) ->
                let nest_index =
                  match Pass.find_nest p nest_var with
                  | Some (i, _) -> i
                  | None -> -1
                in
                ( p,
                  [ Pass.Nest_seen
                      {
                        nest_index;
                        inner_desc = Pass.inner_desc located.Pass.inner;
                        key = qkey nest_var key;
                        alpha;
                        f_initial = fest.Festimate.f;
                      };
                  ] )));
  }

let fuse_pass =
  {
    Pass.name = "fuse";
    description =
      "fuse adjacent fusable top-level loops (paper §6: clusters the \
       misses of unnested loops)";
    enabled = (fun o -> o.do_fuse);
    rewrite =
      (fun _ p ->
        let p', n = Fuse.fuse_adjacent ~params:p.params p in
        (p', [ Pass.Count { what = "loops fused"; n } ]));
  }

let strip_mine_pass =
  {
    Pass.name = "strip-mine";
    description =
      "strip-mine-and-interchange top-level perfect 2-nests (paper §2.2 \
       comparison transform)";
    enabled = (fun o -> o.do_strip_mine);
    rewrite =
      (fun { Pass.options; _ } p ->
        let size = min 8 options.machine.Machine_model.max_unroll in
        let n = ref 0 in
        let p = ref p in
        List.iter
          (fun nest_var ->
            match Pass.find_nest !p nest_var with
            | None -> ()
            | Some (_, nest) -> (
                match
                  Strip_mine.strip_and_interchange ~params:!p.params ~size nest
                with
                | Error _ -> ()
                | Ok stmt ->
                    incr n;
                    p := Pass.replace_nest !p ~var:nest_var ~repl:[ stmt ]))
          (Pass.source_nest_vars !p);
        (!p, [ Pass.Count { what = "nests strip-mined"; n = !n } ]));
  }

let unroll_jam_pass =
  {
    Pass.name = "unroll-jam";
    description =
      "resolve memory-parallelism recurrences: binary-search the largest \
       unroll-and-jam degree keeping f <= alpha*lp (paper §3.2)";
    enabled = (fun o -> o.do_unroll_jam);
    rewrite =
      (fun { Pass.options; init } p ->
        let lp = float_of_int options.machine.Machine_model.mshrs in
        over_nest_keys p (fun p ~nest_var ~key ->
            match evaluate options ~init p ~nest_var ~key with
            | None -> (p, [])
            | Some (_, located, _, alpha, fest) ->
                if
                  alpha > 0.0
                  && fest.Festimate.f < alpha *. lp
                  && located.Pass.enclosing <> []
                then begin
                  (* try enclosing loops from the immediate parent outward
                     (the paper defers the deeper-nest choice to Carr &
                     Kennedy; nearest-first is their common case) *)
                  let candidates = List.rev located.Pass.enclosing in
                  let p = ref p in
                  let events = ref [] in
                  let rec attempt = function
                    | [] -> ()
                    | target :: rest ->
                        let p', acts =
                          resolve_recurrences options ~init !p ~nest_var ~key
                            target located.Pass.enclosing ~alpha
                            ~f0:fest.Festimate.f
                        in
                        let succeeded =
                          List.exists
                            (function Unroll_jam _ -> true | _ -> false)
                            acts
                        in
                        p := p';
                        events :=
                          !events
                          @ List.map
                              (fun action ->
                                Pass.Nest_action
                                  { key = qkey nest_var key; action })
                              acts;
                        if not succeeded then attempt rest
                  in
                  attempt candidates;
                  (!p, !events)
                end
                else (p, [])));
  }

let window_pass =
  {
    Pass.name = "window-unroll";
    description =
      "inner-loop unrolling when the misses of one window's worth of \
       iterations cannot fill the MSHRs (paper §3.3)";
    enabled = (fun o -> o.do_window);
    rewrite =
      (fun { Pass.options; init } p ->
        over_nest_keys p (fun p ~nest_var ~key ->
            let p', acts = resolve_window options ~init p ~nest_var ~key in
            ( p',
              List.map
                (fun action ->
                  Pass.Nest_action { key = qkey nest_var key; action })
                acts )));
  }

let scalar_replace_pass =
  {
    Pass.name = "scalar-replace";
    description =
      "lift regular array loads into scalars and forward stored values \
       (the reuse unroll-and-jam creates, paper §2.2)";
    enabled = (fun o -> o.do_scalar_replace);
    rewrite =
      (fun _ p ->
        let p', n = Scalar_replace.apply_innermost p in
        (p', [ Pass.Count { what = "scalar-replaced"; n } ]));
  }

let prefetch_insert_pass =
  {
    Pass.name = "prefetch";
    description =
      "Mowry-style software prefetch insertion into innermost counted \
       loops (paper §1 comparison technique)";
    enabled = (fun o -> o.do_prefetch);
    rewrite =
      (fun { Pass.options; _ } p ->
        let p', n =
          Prefetch_pass.insert
            ~line_size:options.machine.Machine_model.line_size p
        in
        (p', [ Pass.Count { what = "prefetches inserted"; n } ]));
  }

let schedule_pass =
  {
    Pass.name = "schedule";
    description =
      "miss-packing (or balanced) scheduling of every innermost body \
       (paper §3.3)";
    enabled =
      (fun o ->
        o.do_schedule
        && match o.scheduler with No_schedule -> false | _ -> true);
    rewrite =
      (fun { Pass.options; _ } p ->
        let p', n = schedule_innermost options p in
        (p', [ Pass.Count { what = "bodies rescheduled"; n } ]));
  }

let passes =
  [
    uniquify_pass;
    analyze_pass;
    fuse_pass;
    strip_mine_pass;
    unroll_jam_pass;
    window_pass;
    scalar_replace_pass;
    prefetch_insert_pass;
    schedule_pass;
  ]

let pass_names = List.map (fun p -> p.Pass.name) passes

(* ------------------------------------------------------------------ *)
(* Report assembly                                                     *)
(* ------------------------------------------------------------------ *)

let report_of_trace (trace : Pass.Pipeline.trace) =
  let nests : (string * nest_report) list ref = ref [] in
  let scalar_replaced = ref 0 in
  let handle = function
    | Pass.Nest_seen { nest_index; inner_desc; key; alpha; f_initial } ->
        nests :=
          !nests @ [ (key, { nest_index; inner_desc; alpha; f_initial; actions = [] }) ]
    | Pass.Nest_action { key; action } -> (
        match List.assoc_opt key !nests with
        | Some _ ->
            nests :=
              List.map
                (fun (k, nr) ->
                  if String.equal k key then (k, { nr with actions = nr.actions @ [ action ] })
                  else (k, nr))
                !nests
        | None ->
            (* the analyze pass was disabled: synthesize a bare nest entry.
               Keys look like "nestvar/L:innervar" — recover the inner name. *)
            let inner_desc =
              let tail =
                match String.index_opt key '/' with
                | Some i -> String.sub key (i + 1) (String.length key - i - 1)
                | None -> key
              in
              if String.length tail > 2 then
                String.sub tail 2 (String.length tail - 2)
              else tail
            in
            nests :=
              !nests
              @ [ ( key,
                    {
                      nest_index = -1;
                      inner_desc;
                      alpha = 0.0;
                      f_initial = 0.0;
                      actions = [ action ];
                    } );
                ])
    | Pass.Count { what; n } ->
        if String.equal what "scalar-replaced" then
          scalar_replaced := !scalar_replaced + n
  in
  List.iter
    (fun (e : Pass.Pipeline.entry) -> List.iter handle e.events)
    trace.entries;
  { nests = List.map snd !nests; scalar_replaced = !scalar_replaced; trace }

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let select_passes only =
  match only with
  | None -> passes
  | Some names ->
      List.iter
        (fun n ->
          if not (List.mem n pass_names) then
            invalid_arg
              (Printf.sprintf "Cluster.Driver: unknown pass %S (have: %s)" n
                 (String.concat ", " pass_names)))
        names;
      List.map
        (fun p ->
          (* uniquify underpins the name-keyed traversal of every other
             pass; it cannot be opted out of *)
          if String.equal p.Pass.name "uniquify" then p
          else
            let on = List.mem p.Pass.name names in
            { p with Pass.enabled = (fun _ -> on) })
        passes

let run ?(options = default_options) ?init ?only ?observe (p : program) =
  let ctx = { Pass.options; init } in
  let p', trace = Pass.Pipeline.run ?observe ctx (select_passes only) p in
  (p', report_of_trace trace)

let pp_action = Pass.pp_action

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun n ->
      Format.fprintf ppf "nest %d (inner %s): alpha=%.2f f=%.2f@," n.nest_index
        n.inner_desc n.alpha n.f_initial;
      List.iter (fun a -> Format.fprintf ppf "  %a@," pp_action a) n.actions)
    r.nests;
  Format.fprintf ppf "scalar loads eliminated: %d@]" r.scalar_replaced
