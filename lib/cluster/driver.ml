open Memclust_ir
open Memclust_locality
open Memclust_depgraph
open Memclust_transform
open Ast

type action =
  | Unroll_jam of {
      target_var : string;
      factor : int;
      f_before : float;
      f_after : float;
      alpha : float;
    }
  | Inner_unroll of { inner_var : string; factor : int }
  | Rejected of { target_var : string; reason : string }

type nest_report = {
  nest_index : int;
  inner_desc : string;
  alpha : float;
  f_initial : float;
  actions : action list;
}

type report = { nests : nest_report list; scalar_replaced : int }

type scheduler = Pack_misses | Balanced | No_schedule

type options = {
  machine : Machine_model.t;
  profile_pm : bool;
  do_unroll_jam : bool;
  do_window : bool;
  do_scalar_replace : bool;
  do_schedule : bool;
  scheduler : scheduler;
}

let default_options =
  {
    machine = Machine_model.base;
    profile_pm = true;
    do_unroll_jam = true;
    do_window = true;
    do_scalar_replace = true;
    do_schedule = true;
    scheduler = Pack_misses;
  }

(* ------------------------------------------------------------------ *)
(* Locating the innermost loop-like construct of a nest                *)
(* ------------------------------------------------------------------ *)

type located = { inner : Depgraph.inner; enclosing : loop list }

let inner_desc = function
  | Depgraph.Counted l -> l.var
  | Depgraph.Chased c -> c.cvar

(* All innermost loop-like constructs under [l], each with its enclosing
   counted loops (outermost first). A loop directly containing a chase is
   not itself innermost — the chase is. *)
let locate_all (nest : loop) : located list =
  let acc = ref [] in
  let rec walk path (l : loop) =
    let nested =
      List.filter_map
        (function Loop l' -> Some (`L l') | Chase c -> Some (`C c) | _ -> None)
        l.body
    in
    if nested = [] then acc := { inner = Depgraph.Counted l; enclosing = path } :: !acc
    else
      List.iter
        (function
          | `L l' -> walk (path @ [ l ]) l'
          | `C c ->
              acc := { inner = Depgraph.Chased c; enclosing = path @ [ l ] } :: !acc)
        nested
  in
  walk [] nest;
  List.rev !acc

(* Innermost constructs are identified across transformations by their
   loop variable / chase pointer name (unroll-and-jam keeps both). *)
let inner_key = function
  | Depgraph.Counted l -> "L:" ^ l.var
  | Depgraph.Chased c -> "C:" ^ c.cvar

(* Rename loop variables so every counted loop in the program has a unique
   variable. Sibling loops reusing a variable name (FFT's per-stage nests,
   Ocean's two sweeps) would otherwise be indistinguishable to the
   name-keyed replacement below. *)
let uniquify_loops (p : program) =
  let taken = Hashtbl.create 32 in
  let fresh v =
    if not (Hashtbl.mem taken v) then begin
      Hashtbl.add taken v ();
      v
    end
    else begin
      let rec pick k =
        let cand = Printf.sprintf "%s$%d" v k in
        if Hashtbl.mem taken cand then pick (k + 1) else cand
      in
      let w = pick 1 in
      Hashtbl.add taken w ();
      w
    end
  in
  let rec walk stmt =
    match stmt with
    | Loop l ->
        let w = fresh l.var in
        let stmt' =
          if String.equal w l.var then Loop l
          else Memclust_transform.Subst.rename_var l.var w (Loop l)
        in
        (match stmt' with
        | Loop l' -> Loop { l' with body = List.map walk l'.body }
        | _ -> assert false)
    | Chase c -> Chase { c with cbody = List.map walk c.cbody }
    | If (cond, t, e) -> If (cond, List.map walk t, List.map walk e)
    | Assign _ | Use _ | Barrier | Prefetch _ -> stmt
  in
  { p with body = List.map walk p.body }

(* Replace the first loop (in program order) with variable [var] by the
   statement list [repl]. Exactly one replacement happens per call. *)
let replace_loop ~var ~repl stmt =
  let found = ref false in
  let rec go stmt =
    match stmt with
    | Loop l when (not !found) && String.equal l.var var ->
        found := true;
        repl
    | Loop l -> [ Loop { l with body = List.concat_map go l.body } ]
    | If (c, t, e) -> [ If (c, List.concat_map go t, List.concat_map go e) ]
    | Chase c -> [ Chase { c with cbody = List.concat_map go c.cbody } ]
    | Assign _ | Use _ | Barrier | Prefetch _ -> [ stmt ]
  in
  go stmt

let replace_nth body idx repl =
  List.concat (List.mapi (fun i st -> if i = idx then repl else [ st ]) body)

(* ------------------------------------------------------------------ *)
(* Analysis wrappers                                                   *)
(* ------------------------------------------------------------------ *)

(* Profiling interprets the whole program, and the same candidate program
   is profiled repeatedly — across binary-search steps, and across
   machine configurations that differ only in parameters the profile
   doesn't depend on (window, MSHR count). Memoize on a structural digest
   of the program plus the line size; [p_name] is part of the digest, so
   workloads with distinct initializers never collide. The returned
   closure reads an immutable profile, so sharing across domains is safe. *)
let pm_cache : (string, int -> float) Hashtbl.t = Hashtbl.create 64
let pm_mutex = Mutex.create ()

let with_pm_lock f =
  Mutex.lock pm_mutex;
  match f () with
  | v ->
      Mutex.unlock pm_mutex;
      v
  | exception e ->
      Mutex.unlock pm_mutex;
      raise e

let make_pm options ~init p =
  if not options.profile_pm then fun _ -> 1.0
  else begin
    let line_size = options.machine.Machine_model.line_size in
    let key =
      Printf.sprintf "%d|%s|%s" line_size
        (match init with None -> "-" | Some _ -> "i")
        (Digest.to_hex (Digest.string (Marshal.to_string p [])))
    in
    match with_pm_lock (fun () -> Hashtbl.find_opt pm_cache key) with
    | Some pm -> pm
    | None ->
        let data = Data.create p in
        (match init with Some f -> f data | None -> ());
        let prof = Profile.run ~line_size p data in
        let pm id = Profile.miss_rate prof id in
        with_pm_lock (fun () -> Hashtbl.replace pm_cache key pm);
        pm
  end

(* Evaluate f for the innermost construct identified by [key] inside the
   nest at [idx] in [p]. *)
let evaluate options ~init p idx ~key =
  let loc = Locality.analyze ~line_size:options.machine.Machine_model.line_size p in
  let pm = make_pm options ~init p in
  match List.nth p.body idx with
  | Loop nest -> (
      match
        List.find_opt (fun l -> String.equal (inner_key l.inner) key)
          (locate_all nest)
      with
      | None -> None
      | Some located ->
          let graph = Depgraph.analyze loc located.inner in
          let alpha = Depgraph.alpha graph in
          let fest =
            Festimate.compute options.machine loc ~pm ~graph located.inner
          in
          Some (loc, located, graph, alpha, fest))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Unroll-and-jam with binary search on the degree                     *)
(* ------------------------------------------------------------------ *)

let try_factor p idx (parent : loop) enclosing n =
  let outer_ranges =
    Legality.ranges_of_nest ~params:p.params
      (List.filter (fun (l : loop) -> not (String.equal l.var parent.var)) enclosing)
  in
  match
    Unroll_jam.apply ~params:p.params ~outer_ranges ~factor:n parent
  with
  | Error e -> Error (Format.asprintf "%a" Unroll_jam.pp_error e)
  | Ok repl ->
      let nest_stmt = List.nth p.body idx in
      let nest' = replace_loop ~var:parent.var ~repl nest_stmt in
      let p' = Program.renumber { p with body = replace_nth p.body idx nest' } in
      Ok p'

let resolve_recurrences options ~init p idx ~key parent enclosing ~alpha ~f0 =
  let lp = float_of_int options.machine.Machine_model.mshrs in
  let target = alpha *. lp in
  let u = options.machine.Machine_model.max_unroll in
  (* a loop whose iterations will be block-distributed (parallel, with no
     parallel ancestor) must keep at least max_procs chunks *)
  let u =
    let distributed =
      parent.parallel
      &&
      let rec outside = function
        | [] -> true
        | (l : loop) :: rest ->
            if String.equal l.var parent.var then true
            else (not l.parallel) && outside rest
      in
      outside enclosing
    in
    if not distributed then u
    else begin
      let env v =
        match List.assoc_opt v p.params with Some k -> k | None -> raise Exit
      in
      match (Affine.eval env parent.lo, Affine.eval env parent.hi) with
      | lo, hi ->
          let trip = max 1 ((hi - lo + parent.step - 1) / parent.step) in
          min u (max 1 (trip / options.machine.Machine_model.max_procs))
      | exception Exit -> u
    end
  in
  (* f is monotone in the unroll degree: binary-search the largest degree
     whose f stays within α·lp (the paper's contention-conscious rule) *)
  let f_of n =
    match try_factor p idx parent enclosing n with
    | Error msg -> Error msg
    | Ok p' -> (
        match evaluate options ~init p' idx ~key with
        | Some (_, _, _, _, fest) -> Ok (p', fest.Festimate.f)
        | None -> Error "internal: nest vanished")
  in
  let best = ref None in
  let last_error = ref "" in
  let lo = ref 2 and hi = ref u in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    match f_of mid with
    | Ok (p', f) when f <= target ->
        best := Some (mid, p', f);
        lo := mid + 1
    | Ok _ -> hi := mid - 1
    | Error msg ->
        last_error := msg;
        hi := mid - 1
  done;
  match !best with
  | Some (n, p', f) ->
      ( p',
        [ Unroll_jam
            { target_var = parent.var; factor = n; f_before = f0; f_after = f; alpha };
        ] )
  | None ->
      ( p,
        [ Rejected
            {
              target_var = parent.var;
              reason =
                (if String.equal !last_error "" then
                   "no degree improves f within alpha*lp"
                 else !last_error);
            };
        ] )

(* ------------------------------------------------------------------ *)
(* Window-constraint resolution                                        *)
(* ------------------------------------------------------------------ *)

let resolve_window options ~init p idx ~key =
  match evaluate options ~init p idx ~key with
  | None -> (p, [])
  | Some (_, located, graph, _, fest) -> (
      let lp = float_of_int options.machine.Machine_model.mshrs in
      let density = fest.Festimate.misses_per_iteration in
      match located.inner with
      | Depgraph.Counted l
        when graph.Depgraph.recurrences = []
             && density > 0.0
             && fest.Festimate.f < lp ->
          let k =
            min options.machine.Machine_model.max_unroll
              (max 2 (int_of_float (Float.ceil (lp /. density))))
          in
          (match Inner_unroll.apply ~params:p.params ~factor:k l with
          | Error _ -> (p, [])
          | Ok repl ->
              let nest_stmt = List.nth p.body idx in
              let nest' = replace_loop ~var:l.var ~repl nest_stmt in
              let p' =
                Program.renumber { p with body = replace_nth p.body idx nest' }
              in
              (p', [ Inner_unroll { inner_var = l.var; factor = k } ]))
      | _ -> (p, []))

(* ------------------------------------------------------------------ *)
(* Miss-packing scheduling of innermost bodies                         *)
(* ------------------------------------------------------------------ *)

let schedule_innermost options p =
  let loc = Locality.analyze ~line_size:options.machine.Machine_model.line_size p in
  let reorder body =
    match options.scheduler with
    | Pack_misses -> Schedule.pack_misses loc body
    | Balanced -> Balanced_sched.reorder loc body
    | No_schedule -> body
  in
  let rec walk stmt =
    match stmt with
    | Loop l ->
        let has_nested =
          List.exists (function Loop _ | Chase _ -> true | _ -> false) l.body
        in
        if has_nested then Loop { l with body = List.map walk l.body }
        else Loop { l with body = reorder l.body }
    | Chase c ->
        let has_nested =
          List.exists (function Loop _ | Chase _ -> true | _ -> false) c.cbody
        in
        if has_nested then Chase { c with cbody = List.map walk c.cbody }
        else Chase { c with cbody = reorder c.cbody }
    | If (c, t, e) -> If (c, List.map walk t, List.map walk e)
    | Assign _ | Use _ | Barrier | Prefetch _ -> stmt
  in
  { p with body = List.map walk p.body }

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run ?(options = default_options) ?init (p : program) =
  let p = Program.renumber (uniquify_loops p) in
  let nests = ref [] in
  let p = ref p in
  let nest_count = List.length !p.body in
  (* indices shift as postludes are inserted; scan the original top-level
     statements in order, skipping statements our own transforms add *)
  let idx = ref 0 in
  let seen = ref 0 in
  while !seen < nest_count && !idx < List.length !p.body do
    (match List.nth !p.body !idx with
    | Loop nest ->
        let keys =
          List.map (fun l -> inner_key l.inner) (locate_all nest)
          |> List.sort_uniq String.compare
        in
        let before_len = List.length !p.body in
        List.iter
          (fun key ->
            match evaluate options ~init !p !idx ~key with
            | None -> ()
            | Some (_, located, _, alpha, fest) ->
                let actions = ref [] in
                let lp = float_of_int options.machine.Machine_model.mshrs in
                (if
                   options.do_unroll_jam && alpha > 0.0
                   && fest.Festimate.f < (alpha *. lp)
                   && located.enclosing <> []
                 then begin
                   (* try enclosing loops from the immediate parent outward
                      (the paper defers the deeper-nest choice to Carr &
                      Kennedy; nearest-first is their common case) *)
                   let candidates = List.rev located.enclosing in
                   let rec attempt = function
                     | [] -> ()
                     | target :: rest ->
                         let p', acts =
                           resolve_recurrences options ~init !p !idx ~key target
                             located.enclosing ~alpha ~f0:fest.Festimate.f
                         in
                         let succeeded =
                           List.exists
                             (function Unroll_jam _ -> true | _ -> false)
                             acts
                         in
                         p := p';
                         actions := !actions @ acts;
                         if not succeeded then attempt rest
                   in
                   attempt candidates
                 end);
                (if options.do_window then begin
                   let p', acts = resolve_window options ~init !p !idx ~key in
                   p := p';
                   actions := !actions @ acts
                 end);
                nests :=
                  {
                    nest_index = !idx;
                    inner_desc = inner_desc located.inner;
                    alpha;
                    f_initial = fest.Festimate.f;
                    actions = !actions;
                  }
                  :: !nests)
          keys;
        let after_len = List.length !p.body in
        (* skip over any postlude statements appended at top level *)
        idx := !idx + (after_len - before_len)
    | _ -> ());
    incr idx;
    incr seen
  done;
  let p, replaced =
    if options.do_scalar_replace then Scalar_replace.apply_innermost !p else (!p, 0)
  in
  let p = if options.do_schedule then schedule_innermost options p else p in
  let p = Program.renumber p in
  (match Program.validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Cluster.Driver: transformed program invalid: " ^ msg));
  (p, { nests = List.rev !nests; scalar_replaced = replaced })

let pp_action ppf = function
  | Unroll_jam { target_var; factor; f_before; f_after; alpha } ->
      Format.fprintf ppf "unroll-and-jam %s by %d (f %.2f -> %.2f, alpha %.2f)"
        target_var factor f_before f_after alpha
  | Inner_unroll { inner_var; factor } ->
      Format.fprintf ppf "inner-unroll %s by %d" inner_var factor
  | Rejected { target_var; reason } ->
      Format.fprintf ppf "no transform of %s (%s)" target_var reason

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun n ->
      Format.fprintf ppf "nest %d (inner %s): alpha=%.2f f=%.2f@," n.nest_index
        n.inner_desc n.alpha n.f_initial;
      List.iter (fun a -> Format.fprintf ppf "  %a@," pp_action a) n.actions)
    r.nests;
  Format.fprintf ppf "scalar loads eliminated: %d@]" r.scalar_replaced
