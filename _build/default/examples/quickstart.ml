(* Quickstart: the whole pipeline on the paper's motivating kernel.

   Build the row-wise matrix traversal of Figure 2(a), let the framework
   decide the clustering transformation, and simulate both versions on the
   base machine.

   Run with: dune exec examples/quickstart.exe *)

open Memclust_ir
open Memclust_cluster
open Memclust_codegen
open Memclust_sim

let rows = 128
let cols = 128

(* for (j) for (i) s[j] += a[j][i]  — maximal spatial locality, minimal
   read-miss clustering *)
let total = rows * cols

let base_program =
  let open Builder in
  program "quickstart"
    ~arrays:[ array_decl "a" total; array_decl "s" rows ]
    [
      loop "j" (cst 0) (cst rows)
        [
          loop "i" (cst 0) (cst cols)
            [
              store (aref "s" (ix "j"))
                (arr "s" (ix "j") + arr "a" (idx2 ~cols (ix "j") (ix "i")));
            ];
        ];
    ]

let init data =
  for i = 0 to (rows * cols) - 1 do
    Data.set data "a" i (Ast.Vfloat (float_of_int i *. 0.001))
  done

let simulate label program =
  let data = Data.create program in
  init data;
  let lowered = Lower.build ~nprocs:1 program data in
  let result = Machine.run Config.base ~home:(fun _ -> 0) lowered in
  Format.printf "%-10s %a@.@." label Machine.pp_result result;
  result

let () =
  Format.printf "=== base program ===@.%a@.@." Pretty.pp_program base_program;

  (* the paper's Section 3 algorithm end to end *)
  let clustered, report = Driver.run ~init base_program in
  Format.printf "=== clustering decisions ===@.%a@.@." Driver.pp_report report;
  Format.printf "=== clustered program ===@.%a@.@." Pretty.pp_program clustered;

  (* confirm the rewrite is semantics-preserving *)
  let d1 = Data.create base_program and d2 = Data.create clustered in
  init d1;
  init d2;
  Exec.run base_program d1;
  Exec.run clustered d2;
  Format.printf "semantics preserved: %b@.@." (Data.equal d1 d2);

  let rb = simulate "base" base_program in
  let rc = simulate "clustered" clustered in
  Format.printf "speedup: %.2fx (exec time reduced %.1f%%)@."
    (float_of_int rb.Machine.cycles /. float_of_int rc.Machine.cycles)
    (100.0 *. (1.0 -. (float_of_int rc.Machine.cycles /. float_of_int rb.Machine.cycles)))
