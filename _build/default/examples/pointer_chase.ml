(* Pointer chasing and address recurrences (the paper's Latbench, §4.2/5.1).

   Shows the dependence analysis on a linked-list walk — the address
   recurrence that makes each miss wait for the previous one — and how
   jamming several independent chains overlaps their misses.

   Run with: dune exec examples/pointer_chase.exe *)

open Memclust_ir
open Memclust_locality
open Memclust_depgraph
open Memclust_cluster
open Memclust_codegen
open Memclust_sim
open Memclust_workloads

let () =
  let w = Latbench.make ~chains:32 ~derefs:256 () in
  let p = w.Workload.program in
  Format.printf "=== base kernel ===@.%a@.@." Pretty.pp_program p;

  (* the dependence framework's view of the inner loop *)
  let loc = Locality.analyze ~line_size:64 p in
  let chase = List.hd (Program.chases p) in
  let graph = Depgraph.analyze loc (Depgraph.Chased chase) in
  Format.printf "=== dependence graph of the chase ===@.%a@.@." Depgraph.pp graph;
  Format.printf "alpha = %.2f, address recurrence = %b@.@." (Depgraph.alpha graph)
    graph.Depgraph.has_address_recurrence;

  (* f before clustering: one serialized chain *)
  let fest =
    Festimate.compute Machine_model.base loc ~pm:(fun _ -> 1.0) ~graph
      (Depgraph.Chased chase)
  in
  Format.printf "f estimate before transformation: %a@.@." Festimate.pp fest;

  (* cluster and simulate *)
  let clustered, report = Driver.run ~init:w.Workload.init p in
  Format.printf "=== driver decisions ===@.%a@.@." Driver.pp_report report;

  let simulate label prog =
    let data = Data.create prog in
    w.Workload.init data;
    let lowered = Lower.build ~nprocs:1 prog data in
    let r = Machine.run Config.base ~home:(fun _ -> 0) lowered in
    let ns = Machine.ns_per_cycle Config.base in
    Format.printf
      "%-10s: %7d cycles, %5d read misses, stall %.1f ns/miss, bus util %.0f%%@."
      label r.Machine.cycles r.Machine.read_misses
      (ns *. r.Machine.breakdown.Breakdown.data_stall
      /. float_of_int (max 1 r.Machine.read_misses))
      (100.0 *. r.Machine.bus_utilization);
    r
  in
  let rb = simulate "base" p in
  let rc = simulate "clustered" clustered in
  Format.printf "@.speedup %.2fx (paper's Latbench: 5.34x on the simulated system)@."
    (float_of_int rb.Machine.cycles /. float_of_int rc.Machine.cycles)
