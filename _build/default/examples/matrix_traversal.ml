(* The paper's Figures 1 and 2: four traversals of the same matrix.

   (a) row-wise          — locality, no clustering
   (b) column-wise       — clustering, no locality (loop interchange)
   (c) strip-mine + interchange — both
   (d) unroll-and-jam    — both, plus scalar-replacement opportunities

   For each, report L2 misses (locality), the read-MSHR occupancy reached
   (clustering), and execution time.

   Run with: dune exec examples/matrix_traversal.exe *)

open Memclust_util
open Memclust_ir
open Memclust_transform
open Memclust_codegen
open Memclust_sim

let rows = 120
let cols = 128

let total = rows * cols

let make_nest () =
  let open Builder in
  program "traversal"
    ~arrays:[ array_decl "a" total; array_decl "s" rows ]
    [
      loop "j" (cst 0) (cst rows)
        [
          loop "i" (cst 0) (cst cols)
            [
              store (aref "s" (ix "j"))
                (arr "s" (ix "j") + arr "a" (idx2 ~cols (ix "j") (ix "i")));
            ];
        ];
    ]

let outer_of p = match p.Ast.body with [ Ast.Loop l ] -> l | _ -> assert false

let variant name stmts =
  let p = make_nest () in
  (name, Program.renumber { p with Ast.body = stmts })

let variants () =
  let base = make_nest () in
  let j_loop = outer_of base in
  let interchange =
    match Interchange.apply j_loop with
    | Ok st -> st
    | Error e -> failwith ("interchange: " ^ e)
  in
  let strip =
    match Strip_mine.strip_and_interchange ~size:10 j_loop with
    | Ok st -> st
    | Error e -> failwith ("strip-mine: " ^ e)
  in
  let uj =
    match Unroll_jam.apply ~factor:10 j_loop with
    | Ok stmts -> stmts
    | Error e -> Format.kasprintf failwith "unroll-and-jam: %a" Unroll_jam.pp_error e
  in
  [
    ("(a) row-wise", Program.renumber base);
    variant "(b) interchange" [ interchange ];
    variant "(c) strip+interchange" [ strip ];
    variant "(d) unroll-and-jam" uj;
  ]

let init data =
  for i = 0 to (rows * cols) - 1 do
    Data.set data "a" i (Ast.Vfloat (float_of_int i))
  done

let () =
  let reference = ref None in
  let rows_out =
    List.map
      (fun (name, p) ->
        let data = Data.create p in
        init data;
        let lowered = Lower.build ~nprocs:1 p data in
        let r = Machine.run Config.base ~home:(fun _ -> 0) lowered in
        (* check all variants compute the same result *)
        (match !reference with
        | None -> reference := Some data
        | Some d -> assert (Data.equal d data));
        let clustering =
          (* fraction of time with 2+ outstanding read misses *)
          Stats.Histogram.fraction_at_least r.Machine.read_mshr_hist 2
        in
        [
          name;
          string_of_int r.Machine.cycles;
          string_of_int r.Machine.l2_misses;
          Table.fmt_float r.Machine.avg_read_miss_latency;
          Table.fmt_pct clustering;
          Table.fmt_float ~decimals:1
            r.Machine.breakdown.Breakdown.data_stall;
        ])
      (variants ())
  in
  print_endline
    "Figure 1/2: the locality-vs-clustering trade-off on one matrix traversal\n";
  Table.print
    ~header:
      [ "traversal"; "cycles"; "L2 misses"; "avg miss lat"; ">=2 misses"; "data stall" ]
    rows_out;
  print_endline
    "\n(a) keeps misses minimal but serial; (b) overlaps misses but loses\n\
     all spatial locality (8x the misses); (c) and (d) get both, as the\n\
     paper argues; (d) additionally enables scalar replacement."
