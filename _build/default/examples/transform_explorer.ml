(* Ablation of the paper's f <= alpha*lp rule (§3.2.2).

   Sweep the unroll-and-jam degree by hand on the Figure 2 kernel, print
   the analytical f next to the measured speedup and MSHR occupancy, and
   mark the degree the driver's binary search would pick. The sweet spot
   the rule predicts — fill the 10 MSHRs, then stop — is visible in the
   measurements: beyond it, extra unrolling only adds contention, code
   size and conflict misses.

   Run with: dune exec examples/transform_explorer.exe *)

open Memclust_util
open Memclust_ir
open Memclust_locality
open Memclust_depgraph
open Memclust_transform
open Memclust_cluster
open Memclust_codegen
open Memclust_sim

let rows = 192
let cols = 128

let total = rows * cols

let make_nest () =
  let open Builder in
  program "explorer"
    ~arrays:[ array_decl "a" total; array_decl "s" rows ]
    [
      loop "j" (cst 0) (cst rows)
        [
          loop "i" (cst 0) (cst cols)
            [
              store (aref "s" (ix "j"))
                (arr "s" (ix "j") + arr "a" (idx2 ~cols (ix "j") (ix "i")));
            ];
        ];
    ]

let init data =
  for i = 0 to (rows * cols) - 1 do
    Data.set data "a" i (Ast.Vfloat (float_of_int i))
  done

let f_of p =
  let loc = Locality.analyze ~line_size:64 p in
  let rec inner (l : Ast.loop) : Ast.loop =
    match
      List.find_map (function Ast.Loop l' -> Some l' | _ -> None) l.Ast.body
    with
    | Some l' -> inner l'
    | None -> l
  in
  match p.Ast.body with
  | Ast.Loop l :: _ ->
      let il = inner l in
      let graph = Depgraph.analyze loc (Depgraph.Counted il) in
      let fest =
        Festimate.compute Machine_model.base loc ~pm:(fun _ -> 1.0) ~graph
          (Depgraph.Counted il)
      in
      fest.Festimate.f
  | _ -> 0.0

let () =
  let base = make_nest () in
  let base_cycles = ref 0 in
  let rows_out =
    List.filter_map
      (fun factor ->
        let j_loop =
          match base.Ast.body with [ Ast.Loop l ] -> l | _ -> assert false
        in
        match Unroll_jam.apply ~factor j_loop with
        | Error _ -> None
        | Ok stmts ->
            let p = Program.renumber { base with Ast.body = stmts } in
            let data = Data.create p in
            init data;
            let lowered = Lower.build ~nprocs:1 p data in
            let r = Machine.run Config.base ~home:(fun _ -> 0) lowered in
            if factor = 1 then base_cycles := r.Machine.cycles;
            let speedup = float_of_int !base_cycles /. float_of_int r.Machine.cycles in
            Some
              [
                string_of_int factor;
                Table.fmt_float (f_of p);
                string_of_int r.Machine.cycles;
                Table.fmt_float speedup ^ "x";
                Table.fmt_pct
                  (Stats.Histogram.fraction_at_least r.Machine.read_mshr_hist 4);
                string_of_int r.Machine.l2_misses;
              ])
      [ 1; 2; 3; 4; 6; 8; 10; 12; 16 ]
  in
  print_endline "Unroll-and-jam degree sweep on the Figure 2 kernel\n";
  Table.print
    ~header:[ "degree"; "f"; "cycles"; "speedup"; ">=4 misses"; "L2 misses" ]
    rows_out;
  (* what would the driver choose? *)
  let _, report = Driver.run ~options:{ Driver.default_options with profile_pm = false } base in
  Format.printf "@.driver's choice: %a@." Driver.pp_report report;
  print_endline
    "\nThe f column tracks the measured clustering; the rule stops once f\n\
     reaches lp = 10 — later degrees buy nothing but contention."
