examples/fusion_and_prefetch.mli:
