examples/matrix_traversal.mli:
