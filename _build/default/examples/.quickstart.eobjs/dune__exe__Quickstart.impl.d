examples/quickstart.ml: Ast Builder Config Data Driver Exec Format Lower Machine Memclust_cluster Memclust_codegen Memclust_ir Memclust_sim Pretty
