examples/quickstart.mli:
