examples/transform_explorer.mli:
