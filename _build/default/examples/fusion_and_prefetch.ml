(* The two extensions from the paper's future-work section (§6):

   1. Loop fusion for unnested loops — two separate streaming loops each
      carry a cache-line recurrence with f too small to fill the MSHRs;
      fusing them doubles the leading references per iteration, exactly
      like unroll-and-jam does for nested loops.
   2. Software prefetching [8] — on the fused kernel, compare prefetching
      alone, clustering alone, and both.

   Run with: dune exec examples/fusion_and_prefetch.exe *)

open Memclust_ir
open Memclust_transform
open Memclust_cluster
open Memclust_codegen
open Memclust_sim

let n = 32768

let base_program =
  let open Builder in
  program "two_streams"
    ~arrays:
      [
        array_decl "a" n;
        array_decl "b" n;
        array_decl "suma" 8;
        array_decl "sumb" 8;
      ]
    [
      loop "i" (cst 0) (cst n)
        [ store (aref "suma" (cst 0)) (arr "suma" (cst 0) + arr "a" (ix "i")) ];
      loop "i" (cst 0) (cst n)
        [ store (aref "sumb" (cst 0)) (arr "sumb" (cst 0) + arr "b" (ix "i")) ];
    ]

let init data =
  for i = 0 to n - 1 do
    Data.set data "a" i (Ast.Vfloat (float_of_int i *. 0.5));
    Data.set data "b" i (Ast.Vfloat (float_of_int i *. 0.25))
  done;
  Data.set data "suma" 0 (Ast.Vfloat 0.0);
  Data.set data "sumb" 0 (Ast.Vfloat 0.0)

let simulate label program =
  let data = Data.create program in
  init data;
  let lowered = Lower.build program data in
  let r = Machine.run Config.base ~home:(fun _ -> 0) lowered in
  Format.printf "%-22s %8d cycles, data stall %8.0f, prefetches %d (late %d)@."
    label r.Machine.cycles r.Machine.breakdown.Breakdown.data_stall
    r.Machine.prefetches r.Machine.late_prefetches;
  r

let () =
  Format.printf "=== two separate streaming loops ===@.%a@.@." Pretty.pp_program
    base_program;
  let rb = simulate "base (two loops)" base_program in

  (* fusion: one loop, two leading streams *)
  let fused_program, nfused = Fuse.fuse_adjacent base_program in
  Format.printf "@.fused %d pair(s):@.%a@.@." nfused Pretty.pp_program fused_program;
  ignore (simulate "fused" fused_program);

  (* clustering on top of fusion *)
  let clustered, _ = Driver.run ~init fused_program in
  let rc = simulate "fused + clustered" clustered in

  (* prefetching variants *)
  let prefetched, _ = Prefetch_pass.insert base_program in
  ignore (simulate "prefetch only" prefetched);
  let both, _ = Prefetch_pass.insert clustered in
  ignore (simulate "everything" both);

  Format.printf "@.fusion+clustering speedup over base: %.2fx@."
    (float_of_int rb.Machine.cycles /. float_of_int rc.Machine.cycles);

  (* the oracle agrees throughout *)
  let check p =
    let d1 = Data.create base_program and d2 = Data.create p in
    init d1;
    init d2;
    Exec.run base_program d1;
    Exec.run p d2;
    assert (Data.equal d1 d2)
  in
  List.iter check [ fused_program; clustered; prefetched; both ];
  Format.printf "all variants verified against the interpreter oracle@."
