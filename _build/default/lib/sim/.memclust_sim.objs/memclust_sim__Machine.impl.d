lib/sim/machine.ml: Array Breakdown Config Core Format Lower Memclust_codegen Memclust_util Memsys Printf Stats
