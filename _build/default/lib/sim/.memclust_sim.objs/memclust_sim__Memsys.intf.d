lib/sim/memsys.mli: Config
