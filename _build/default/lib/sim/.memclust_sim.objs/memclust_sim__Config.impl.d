lib/sim/config.ml: Format Printf
