lib/sim/memsys.ml: Array Config Float
