lib/sim/machine.mli: Breakdown Config Format Lower Memclust_codegen Memclust_util Stats
