lib/sim/cache.ml: Array
