lib/sim/core.mli: Breakdown Config Hashtbl Memclust_codegen Memsys Trace
