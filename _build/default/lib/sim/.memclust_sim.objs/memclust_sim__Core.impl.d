lib/sim/core.ml: Array Breakdown Cache Config Hashtbl List Memclust_codegen Memsys Option Queue Trace
