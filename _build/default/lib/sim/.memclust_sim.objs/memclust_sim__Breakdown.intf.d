lib/sim/breakdown.mli: Format
