lib/sim/cache.mli:
