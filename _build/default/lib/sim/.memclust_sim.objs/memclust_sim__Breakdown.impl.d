lib/sim/breakdown.ml: Format
