(** Set-associative LRU cache with coherence version tags.

    Each cached line remembers the global version it was fetched at; a
    lookup only hits when the global version is unchanged (another
    processor's intervening write invalidates the copy — an
    invalidation-based protocol at trace granularity). *)

type t

val create : bytes:int -> assoc:int -> line:int -> t

val lookup : t -> version:int -> addr:int -> bool
(** [lookup c ~version ~addr] — true on a coherent hit; updates LRU. *)

val fill : t -> version:int -> addr:int -> unit
(** Insert the line (evicting LRU), tagged with [version]. *)

val line_of : t -> int -> int
(** Line number of a byte address. *)
