(** Execution-time breakdown, following the paper's retire-slot attribution
    (§5.2): each cycle contributes retired/retire_width to busy time and
    the remainder to the stall category of the first instruction that
    could not retire. *)

type t = {
  mutable busy : float;
  mutable cpu_stall : float;  (** functional-unit / pipeline stalls *)
  mutable data_stall : float;  (** read-miss (and write-buffer) stalls *)
  mutable sync_stall : float;  (** barrier waiting *)
}

val create : unit -> t
val total : t -> float

val cpu : t -> float
(** busy + cpu_stall — the paper's "CPU" component. *)

val add : t -> t -> unit
val scale : t -> float -> t
val pp : Format.formatter -> t -> unit
