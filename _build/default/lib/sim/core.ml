open Memclust_codegen

type shared = {
  cfg : Config.t;
  mem : Memsys.t;
  versions : (int, int * int) Hashtbl.t;
  home : int -> int;
  reached : int array;
  nprocs : int;
}

type mshr_entry = {
  mutable ready : int;
  mutable has_read : bool;
  mutable has_write : bool;
  mutable prefetch_only : bool;  (* allocated by a prefetch, no demand yet *)
}

type t = {
  proc : int;
  trace : Trace.t;
  sh : shared;
  l1 : Cache.t;
  l2 : Cache.t option;
  mshrs : (int, mshr_entry) Hashtbl.t;
  (* reorder buffer: ring over trace indices [head, tail) *)
  state : int array;  (* 0 = waiting, 1 = scheduled/completed *)
  done_at : int array;
  mutable head : int;
  mutable tail : int;
  mutable branches : int;
  (* write buffer *)
  wpending : int Queue.t;
  mutable winflight : int list;
  (* statistics *)
  bd : Breakdown.t;
  mutable l2_miss_count : int;
  mutable read_miss_count : int;
  mutable read_miss_lat : float;
  mutable retired_count : int;
  mutable l1_miss_count : int;
  mutable mshr_full_events : int;
  mutable wbuf_full_events : int;
  mutable prefetch_count : int;
  mutable prefetch_miss_count : int;  (* prefetches that went to memory *)
  mutable late_prefetch_count : int;  (* demand loads catching an in-flight prefetch *)
}

let make_shared cfg ~nprocs ~home =
  {
    cfg;
    mem = Memsys.create cfg ~nprocs;
    versions = Hashtbl.create 4096;
    home;
    reached = Array.make nprocs 0;
    nprocs;
  }

let create sh ~proc trace =
  let cfg = sh.cfg in
  {
    proc;
    trace;
    sh;
    l1 = Cache.create ~bytes:cfg.Config.l1_bytes ~assoc:cfg.Config.l1_assoc
        ~line:cfg.Config.line;
    l2 =
      Option.map
        (fun bytes ->
          Cache.create ~bytes ~assoc:cfg.Config.l2_assoc ~line:cfg.Config.line)
        cfg.Config.l2_bytes;
    mshrs = Hashtbl.create 32;
    state = Array.make cfg.Config.window 0;
    done_at = Array.make cfg.Config.window 0;
    head = 0;
    tail = 0;
    branches = 0;
    wpending = Queue.create ();
    winflight = [];
    bd = Breakdown.create ();
    l2_miss_count = 0;
    read_miss_count = 0;
    read_miss_lat = 0.0;
    retired_count = 0;
    l1_miss_count = 0;
    mshr_full_events = 0;
    wbuf_full_events = 0;
    prefetch_count = 0;
    prefetch_miss_count = 0;
    late_prefetch_count = 0;
  }

let slot t i = i mod t.sh.cfg.Config.window

let line_of t addr = addr / t.sh.cfg.Config.line

let version t line =
  match Hashtbl.find_opt t.sh.versions line with
  | Some vw -> vw
  | None -> (0, -1)

let miss_kind t ~writer addr =
  if t.sh.nprocs = 1 then Memsys.Local
  else if writer >= 0 && writer <> t.proc then Memsys.Dirty_remote
  else if t.sh.home addr = t.proc then Memsys.Local
  else Memsys.Remote

(* Demand load: [Some ready] or [None] when no MSHR is available. *)
let access_read t ~now addr =
  let cfg = t.sh.cfg in
  let line = line_of t addr in
  match Hashtbl.find_opt t.mshrs line with
  | Some e ->
      if e.prefetch_only then begin
        (* the prefetch launched the line but too late to hide it fully *)
        t.late_prefetch_count <- t.late_prefetch_count + 1;
        e.prefetch_only <- false
      end;
      e.has_read <- true;
      Some e.ready
  | None ->
      let v, w = version t line in
      if Cache.lookup t.l1 ~version:v ~addr then Some (now + cfg.Config.l1_lat)
      else begin
        t.l1_miss_count <- t.l1_miss_count + 1;
        let l2_hit =
          match t.l2 with
          | Some l2 when Cache.lookup l2 ~version:v ~addr ->
              Cache.fill t.l1 ~version:v ~addr;
              true
          | _ -> false
        in
        if l2_hit then Some (now + cfg.Config.l2_lat)
        else if Hashtbl.length t.mshrs >= cfg.Config.mshrs then begin
          t.mshr_full_events <- t.mshr_full_events + 1;
          None
        end
        else begin
          let kind = miss_kind t ~writer:w addr in
          let home = t.sh.home addr in
          let ready = Memsys.request t.sh.mem ~proc:t.proc ~home ~kind ~line ~now in
          Hashtbl.add t.mshrs line
            { ready; has_read = true; has_write = false; prefetch_only = false };
          Cache.fill t.l1 ~version:v ~addr;
          Option.iter (fun l2 -> Cache.fill l2 ~version:v ~addr) t.l2;
          t.l2_miss_count <- t.l2_miss_count + 1;
          t.read_miss_count <- t.read_miss_count + 1;
          t.read_miss_lat <- t.read_miss_lat +. float_of_int (ready - now);
          Some ready
        end
      end

(* Write-buffer drain access (write-allocate). *)
let access_write t ~now addr =
  let cfg = t.sh.cfg in
  let line = line_of t addr in
  let v, w = version t line in
  (* coherence: a write by a new owner invalidates all other copies *)
  let v' = if w <> t.proc && w >= 0 then v + 1 else v in
  let commit () = Hashtbl.replace t.sh.versions line (v', t.proc) in
  match Hashtbl.find_opt t.mshrs line with
  | Some e ->
      e.has_write <- true;
      commit ();
      Cache.fill t.l1 ~version:v' ~addr;
      Option.iter (fun l2 -> Cache.fill l2 ~version:v' ~addr) t.l2;
      Some e.ready
  | None ->
      let owned = w = t.proc || w < 0 in
      let l1_hit = owned && Cache.lookup t.l1 ~version:v ~addr in
      let l2_hit =
        owned
        &&
        match t.l2 with
        | Some l2 -> Cache.lookup l2 ~version:v ~addr
        | None -> false
      in
      if l1_hit || l2_hit then begin
        commit ();
        Cache.fill t.l1 ~version:v' ~addr;
        Option.iter (fun l2 -> Cache.fill l2 ~version:v' ~addr) t.l2;
        Some (now + if l1_hit then cfg.Config.l1_lat else cfg.Config.l2_lat)
      end
      else if Hashtbl.length t.mshrs >= cfg.Config.mshrs then None
      else begin
        let kind = miss_kind t ~writer:w addr in
        let home = t.sh.home addr in
        let ready = Memsys.request t.sh.mem ~proc:t.proc ~home ~kind ~line ~now in
        Hashtbl.add t.mshrs line
          { ready; has_read = false; has_write = true; prefetch_only = false };
        commit ();
        Cache.fill t.l1 ~version:v' ~addr;
        Option.iter (fun l2 -> Cache.fill l2 ~version:v' ~addr) t.l2;
        t.l2_miss_count <- t.l2_miss_count + 1;
        Some ready
      end

(* Non-binding prefetch: fills the caches if it can get an MSHR, is
   dropped when the line is already present/in flight or when no MSHR is
   available (as hardware drops hint prefetches under pressure). *)
let access_prefetch t ~now addr =
  let cfg = t.sh.cfg in
  let line = line_of t addr in
  t.prefetch_count <- t.prefetch_count + 1;
  match Hashtbl.find_opt t.mshrs line with
  | Some _ -> ()
  | None ->
      let v, w = version t line in
      let l1_hit = Cache.lookup t.l1 ~version:v ~addr in
      let l2_hit =
        (not l1_hit)
        &&
        match t.l2 with
        | Some l2 when Cache.lookup l2 ~version:v ~addr ->
            Cache.fill t.l1 ~version:v ~addr;
            true
        | _ -> false
      in
      if (not l1_hit) && (not l2_hit)
         && Hashtbl.length t.mshrs < cfg.Config.mshrs
      then begin
        let kind = miss_kind t ~writer:w addr in
        let home = t.sh.home addr in
        let ready = Memsys.request t.sh.mem ~proc:t.proc ~home ~kind ~line ~now in
        Hashtbl.add t.mshrs line
          { ready; has_read = false; has_write = false; prefetch_only = true };
        Cache.fill t.l1 ~version:v ~addr;
        Option.iter (fun l2 -> Cache.fill l2 ~version:v ~addr) t.l2;
        t.prefetch_miss_count <- t.prefetch_miss_count + 1
      end

(* ------------------------------------------------------------------ *)

let cleanup_mshrs t ~now =
  let expired =
    Hashtbl.fold (fun line e acc -> if e.ready <= now then line :: acc else acc)
      t.mshrs []
  in
  List.iter (Hashtbl.remove t.mshrs) expired

let drain_wbuf t ~now =
  t.winflight <- List.filter (fun c -> c > now) t.winflight;
  if not (Queue.is_empty t.wpending) then begin
    let addr = Queue.peek t.wpending in
    match access_write t ~now addr with
    | Some completion ->
        ignore (Queue.pop t.wpending);
        t.winflight <- completion :: t.winflight
    | None -> ()
  end

let wbuf_occupancy t = Queue.length t.wpending + List.length t.winflight

let barrier_satisfied t aux =
  let ok = ref true in
  Array.iter (fun r -> if r < aux then ok := false) t.sh.reached;
  !ok

let retire t ~now =
  let cfg = t.sh.cfg in
  let width = cfg.Config.retire_width in
  let r = ref 0 in
  let stall_category = ref None in
  let continue_ = ref true in
  while !continue_ && !r < width && t.head < t.tail do
    let i = t.head in
    let s = slot t i in
    match Trace.kind t.trace i with
    | Trace.Barrier_op ->
        let b = Trace.aux t.trace i in
        if t.sh.reached.(t.proc) < b then t.sh.reached.(t.proc) <- b;
        if barrier_satisfied t b then begin
          t.head <- i + 1;
          t.retired_count <- t.retired_count + 1;
          incr r
        end
        else begin
          stall_category := Some `Sync;
          continue_ := false
        end
    | kind ->
        if t.state.(s) = 1 && t.done_at.(s) <= now then begin
          t.head <- i + 1;
          t.retired_count <- t.retired_count + 1;
          incr r
        end
        else begin
          stall_category :=
            Some
              (match kind with
              | Trace.Load | Trace.Store -> `Data
              | Trace.Int_op | Trace.Fp_op | Trace.Branch | Trace.Prefetch_op ->
                  `Cpu
              | Trace.Barrier_op -> `Sync);
          continue_ := false
        end
  done;
  let busy_frac = float_of_int !r /. float_of_int width in
  t.bd.Breakdown.busy <- t.bd.Breakdown.busy +. busy_frac;
  let stall_frac = 1.0 -. busy_frac in
  if stall_frac > 0.0 then begin
    match !stall_category with
    | Some `Data -> t.bd.Breakdown.data_stall <- t.bd.Breakdown.data_stall +. stall_frac
    | Some `Sync -> t.bd.Breakdown.sync_stall <- t.bd.Breakdown.sync_stall +. stall_frac
    | Some `Cpu | None ->
        t.bd.Breakdown.cpu_stall <- t.bd.Breakdown.cpu_stall +. stall_frac
  end

let dep_done t ~now d =
  d < 0 || d < t.head || (t.state.(slot t d) = 1 && t.done_at.(slot t d) <= now)

let issue t ~now =
  let cfg = t.sh.cfg in
  let issued = ref 0 in
  let alu = ref 0 and fpu = ref 0 and mem_u = ref 0 in
  let i = ref t.head in
  while !i < t.tail && !issued < cfg.Config.issue_width do
    let s = slot t !i in
    if t.state.(s) = 0
       && dep_done t ~now (Trace.dep1 t.trace !i)
       && dep_done t ~now (Trace.dep2 t.trace !i)
    then begin
      (match Trace.kind t.trace !i with
      | Trace.Int_op ->
          if !alu < cfg.Config.alus then begin
            incr alu;
            t.state.(s) <- 1;
            t.done_at.(s) <- now + 1;
            incr issued
          end
      | Trace.Branch ->
          if !alu < cfg.Config.alus then begin
            incr alu;
            t.state.(s) <- 1;
            t.done_at.(s) <- now + 1;
            t.branches <- max 0 (t.branches - 1);
            incr issued
          end
      | Trace.Fp_op ->
          if !fpu < cfg.Config.fpus then begin
            incr fpu;
            t.state.(s) <- 1;
            t.done_at.(s) <- now + Trace.aux t.trace !i;
            incr issued
          end
      | Trace.Load ->
          if !mem_u < cfg.Config.addr_units then begin
            match access_read t ~now (Trace.aux t.trace !i) with
            | Some ready ->
                incr mem_u;
                t.state.(s) <- 1;
                t.done_at.(s) <- ready;
                incr issued
            | None -> () (* MSHRs full: retry next cycle *)
          end
      | Trace.Store ->
          if !mem_u < cfg.Config.addr_units
             && wbuf_occupancy t >= cfg.Config.write_buffer
          then t.wbuf_full_events <- t.wbuf_full_events + 1;
          if !mem_u < cfg.Config.addr_units
             && wbuf_occupancy t < cfg.Config.write_buffer
          then begin
            incr mem_u;
            Queue.push (Trace.aux t.trace !i) t.wpending;
            t.state.(s) <- 1;
            t.done_at.(s) <- now;
            incr issued
          end
      | Trace.Prefetch_op ->
          if !mem_u < cfg.Config.addr_units then begin
            incr mem_u;
            access_prefetch t ~now (Trace.aux t.trace !i);
            t.state.(s) <- 1;
            t.done_at.(s) <- now;
            incr issued
          end
      | Trace.Barrier_op ->
          t.state.(s) <- 1;
          t.done_at.(s) <- now);
      ()
    end;
    incr i
  done

let fetch t =
  let cfg = t.sh.cfg in
  let len = Trace.length t.trace in
  let fetched = ref 0 in
  while
    t.tail < len
    && t.tail - t.head < cfg.Config.window
    && !fetched < cfg.Config.fetch_width
    && t.branches < cfg.Config.max_branches
  do
    let s = slot t t.tail in
    t.state.(s) <- 0;
    t.done_at.(s) <- 0;
    (match Trace.kind t.trace t.tail with
    | Trace.Branch -> t.branches <- t.branches + 1
    | _ -> ());
    t.tail <- t.tail + 1;
    incr fetched
  done

let finished t =
  t.head >= Trace.length t.trace
  && Queue.is_empty t.wpending
  && t.winflight = []

let step t ~now =
  cleanup_mshrs t ~now;
  drain_wbuf t ~now;
  if t.head < Trace.length t.trace then retire t ~now;
  issue t ~now;
  fetch t

let breakdown t = t.bd

let mshr_read_occupancy t =
  Hashtbl.fold (fun _ e acc -> if e.has_read then acc + 1 else acc) t.mshrs 0

let mshr_total_occupancy t = Hashtbl.length t.mshrs

let l2_misses t = t.l2_miss_count
let read_misses t = t.read_miss_count
let read_miss_latency_sum t = t.read_miss_lat
let retired_instructions t = t.retired_count

let l1_misses t = t.l1_miss_count
let mshr_full_events t = t.mshr_full_events
let wbuf_full_events t = t.wbuf_full_events

let prefetches t = t.prefetch_count
let prefetch_misses t = t.prefetch_miss_count
let late_prefetches t = t.late_prefetch_count
