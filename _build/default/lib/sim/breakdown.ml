type t = {
  mutable busy : float;
  mutable cpu_stall : float;
  mutable data_stall : float;
  mutable sync_stall : float;
}

let create () = { busy = 0.0; cpu_stall = 0.0; data_stall = 0.0; sync_stall = 0.0 }

let total t = t.busy +. t.cpu_stall +. t.data_stall +. t.sync_stall

let cpu t = t.busy +. t.cpu_stall

let add t u =
  t.busy <- t.busy +. u.busy;
  t.cpu_stall <- t.cpu_stall +. u.cpu_stall;
  t.data_stall <- t.data_stall +. u.data_stall;
  t.sync_stall <- t.sync_stall +. u.sync_stall

let scale t k =
  {
    busy = t.busy *. k;
    cpu_stall = t.cpu_stall *. k;
    data_stall = t.data_stall *. k;
    sync_stall = t.sync_stall *. k;
  }

let pp ppf t =
  Format.fprintf ppf "busy %.0f / cpu-stall %.0f / data %.0f / sync %.0f" t.busy
    t.cpu_stall t.data_stall t.sync_stall
