(** LU (SPLASH-2, paper §4.2): blocked dense LU factorization without
    pivoting. Per pivot block: factor the diagonal block (sequential),
    update the perimeter panels, then the interior blocks in parallel —
    the interior daxpy nest is the clustering target (two self-spatial
    leading streams per iteration, α = 1 cache-line recurrence). *)

val make : ?n:int -> ?block:int -> unit -> Workload.t
(** Defaults: 96×96 matrix, 16×16 blocks. [block] must divide [n]. *)
