(** Em3d (Split-C / paper §4.2): electromagnetic wave propagation on a
    bipartite graph. Each E node gathers from [degree] H nodes through an
    index array (and vice versa) — regular index/coefficient streams with
    cache-line recurrences feeding irregular value loads through address
    dependences. A fraction of the neighbor indices point outside the
    node's own partition ("remote" edges). *)

val make : ?nodes:int -> ?degree:int -> ?remote_pct:int -> unit -> Workload.t
(** Defaults: 8192 nodes per side, degree 10, 20% remote edges. *)
