open Memclust_ir
open Memclust_util

(* node: f0 = next, f1 = key, f2 = data, f3 = pad (32 bytes) *)
let f_next = 0
let f_data = 2

let make ?(vertices = 2048) ?(buckets = 512) ?(nodes = 16384) () =
  let program =
    let open Builder in
    program "mst"
      ~arrays:
        [
          array_decl "bucket_of" vertices;  (* precomputed hash of each vertex *)
          array_decl "heads" buckets;
          array_decl "dist" vertices;
        ]
      ~regions:[ region_decl ~node_size:32 "hnodes" nodes ]
      [
        (* outer loop explicitly identified as parallel (paper §4.2) to
           permit the transformation despite the pointer references *)
        loop ~parallel:true "v" (cst 0) (cst vertices)
          [
            assign "s" (flt 0.0);
            chase "p"
              ~init:(ld (iref "heads" (arr "bucket_of" (ix "v"))))
              ~region:"hnodes" ~next:f_next
              [ assign "s" (sc "s" + ld (fref "hnodes" (sc "p") f_data)) ];
            store (aref "dist" (ix "v")) (sc "s");
          ];
      ]
  in
  let init data =
    let rng = Rng.create 0x3157_ab in
    (* shuffled node placement: chain order is uncorrelated with memory
       order, so every dereference is a fresh line *)
    let perm = Rng.permutation rng nodes in
    let cursor = ref 0 in
    for b = 0 to buckets - 1 do
      (* leave room so every bucket gets at least one node *)
      let remaining = nodes - !cursor in
      let max_extra =
        max 0 (min (remaining - (buckets - b)) ((2 * nodes / buckets) - 1))
      in
      let len = 1 + if max_extra > 0 then Rng.int rng (max_extra + 1) else 0 in
      let len = min len remaining in
      let first = perm.(!cursor) in
      Data.set data "heads" b (Data.node_ptr data "hnodes" first);
      for k = 0 to len - 1 do
        let cur = perm.(!cursor + k) in
        let addr = Data.node_addr data "hnodes" cur in
        let next =
          if k = len - 1 then Ast.Vptr 0
          else Data.node_ptr data "hnodes" perm.(!cursor + k + 1)
        in
        Data.field_set data "hnodes" ~ptr:addr ~field:f_next next;
        Data.field_set data "hnodes" ~ptr:addr ~field:1 (Ast.Vint cur);
        Data.field_set data "hnodes" ~ptr:addr ~field:f_data
          (Ast.Vfloat (Rng.float rng 1.0))
      done;
      cursor := !cursor + len
    done;
    for v = 0 to vertices - 1 do
      Data.set data "bucket_of" v (Ast.Vint (Rng.int rng buckets));
      Data.set data "dist" v (Ast.Vfloat 0.0)
    done
  in
  {
    Workload.name = "MST";
    program;
    init;
    l2_bytes = Workload.big_l2;
    mp_procs = 1;
    description =
      Printf.sprintf "%d hash lookups, %d buckets, %d chained nodes" vertices
        buckets nodes;
  }
