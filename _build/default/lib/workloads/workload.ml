open Memclust_ir

type t = {
  name : string;
  program : Ast.program;
  init : Data.t -> unit;
  l2_bytes : int;
  mp_procs : int;
  description : string;
}

let small_l2 = 64 * 1024
let big_l2 = 256 * 1024
