open Memclust_ir
open Memclust_util

let procs = 16

let make ?(nodes = 8192) ?(degree = 10) ?(remote_pct = 20) () =
  let edges = nodes * degree in
  let program =
    let open Builder in
    let gather ~out ~src ~idx ~coef =
      (* parallel for n: out[n] -= sum_k coef[n*d+k] * src[idx[n*d+k]] *)
      loop ~parallel:true "n" (cst 0) (cst nodes)
        [
          assign "s" (flt 0.0);
          loop "k" (cst 0) (cst degree)
            [
              assign "s"
                (sc "s"
                + (arr coef ((degree *: ix "n") +: ix "k")
                  * ld (iref src (arr idx ((degree *: ix "n") +: ix "k")))));
            ];
          store (aref out (ix "n")) (arr out (ix "n") - sc "s");
        ]
    in
    program "em3d"
      ~arrays:
        [
          array_decl "evalue" nodes;
          array_decl "hvalue" nodes;
          array_decl "eidx" edges;
          array_decl "hidx" edges;
          array_decl "ecoef" edges;
          array_decl "hcoef" edges;
        ]
      [
        gather ~out:"evalue" ~src:"hvalue" ~idx:"eidx" ~coef:"ecoef";
        gather ~out:"hvalue" ~src:"evalue" ~idx:"hidx" ~coef:"hcoef";
      ]
  in
  let init data =
    let rng = Rng.create 0xe3d_177 in
    let chunk = (nodes + procs - 1) / procs in
    let pick_neighbor n =
      if Rng.int rng 100 < remote_pct then Rng.int rng nodes
      else begin
        (* within the node's own partition *)
        let base = n / chunk * chunk in
        min (nodes - 1) (base + Rng.int rng chunk)
      end
    in
    for n = 0 to nodes - 1 do
      Data.set data "evalue" n (Ast.Vfloat (Rng.float rng 1.0));
      Data.set data "hvalue" n (Ast.Vfloat (Rng.float rng 1.0))
    done;
    for e = 0 to edges - 1 do
      let n = e / degree in
      Data.set data "eidx" e (Ast.Vint (pick_neighbor n));
      Data.set data "hidx" e (Ast.Vint (pick_neighbor n));
      Data.set data "ecoef" e (Ast.Vfloat (Rng.float rng 0.1));
      Data.set data "hcoef" e (Ast.Vfloat (Rng.float rng 0.1))
    done
  in
  {
    Workload.name = "Em3d";
    program;
    init;
    l2_bytes = Workload.big_l2;
    mp_procs = procs;
    description =
      Printf.sprintf "%d nodes/side, degree %d, %d%% remote edges" nodes degree
        remote_pct;
  }
