(** Latbench (paper §4.2): the lat_mem_rd pointer-chasing kernel of
    lmbench, wrapped in an outer loop over independent pointer chains with
    no locality within or across chains. Every dereference misses; the
    base version serializes them (inner-loop address recurrence), and
    unroll-and-jam across chains overlaps up to lp of them. *)

val make : ?chains:int -> ?derefs:int -> unit -> Workload.t
(** Defaults: 64 chains of 512 dereferences over 64-byte nodes (2 MB
    footprint, far beyond the scaled cache). *)
