let latbench () = Latbench.make ()

let applications () =
  [
    Em3d.make ();
    Erlebacher.make ();
    Fft.make ();
    Lu.make ();
    Mp3d.make ();
    Mst.make ();
    Ocean.make ();
  ]

let by_name name =
  let want = String.lowercase_ascii name in
  List.find_opt
    (fun w -> String.equal (String.lowercase_ascii w.Workload.name) want)
    (latbench () :: applications ())
