open Memclust_ir
open Memclust_util

let make ?(n = 40) () =
  let n3 = n * n * n in
  let nm1 = n - 1 in
  let program =
    let open Builder in
    let at k j i = idx3 ~dim2:n ~dim3:n k j i in
    program "erlebacher"
      ~arrays:
        [
          array_decl "x" n3;
          array_decl "lo" n3;
          array_decl "up" n3;
          array_decl "dg" n3;
        ]
      [
        (* forward elimination along z *)
        loop "k" (cst 1) (cst n)
          [
            loop ~parallel:true "j" (cst 0) (cst n)
              [
                loop "i" (cst 0) (cst n)
                  [
                    store
                      (aref "x" (at (ix "k") (ix "j") (ix "i")))
                      (arr "x" (at (ix "k") (ix "j") (ix "i"))
                      - (arr "lo" (at (ix "k") (ix "j") (ix "i"))
                        * arr "x" (at (ix "k" -: cst 1) (ix "j") (ix "i"))));
                  ];
              ];
          ];
        (* backward substitution: kk counts up, plane index is n-1-kk *)
        loop "kk" (cst 1) (cst n)
          [
            loop ~parallel:true "j" (cst 0) (cst n)
              [
                loop "i" (cst 0) (cst n)
                  [
                    store
                      (aref "x" (at (cst nm1 -: ix "kk") (ix "j") (ix "i")))
                      ((arr "x" (at (cst nm1 -: ix "kk") (ix "j") (ix "i"))
                       - (arr "up" (at (cst nm1 -: ix "kk") (ix "j") (ix "i"))
                         * arr "x" (at (cst n -: ix "kk") (ix "j") (ix "i"))))
                      * arr "dg" (at (cst nm1 -: ix "kk") (ix "j") (ix "i")));
                  ];
              ];
          ];
      ]
  in
  let init data =
    let rng = Rng.create 0xe71e_bac4 in
    for i = 0 to n3 - 1 do
      Data.set data "x" i (Ast.Vfloat (Rng.float rng 1.0));
      Data.set data "lo" i (Ast.Vfloat (Rng.float rng 0.5));
      Data.set data "up" i (Ast.Vfloat (Rng.float rng 0.5));
      Data.set data "dg" i (Ast.Vfloat (0.5 +. Rng.float rng 0.5))
    done
  in
  {
    Workload.name = "Erlebacher";
    program;
    init;
    l2_bytes = Workload.small_l2;
    mp_procs = 8;
    description = Printf.sprintf "%dx%dx%d cube, z-direction tridiagonal sweeps" n n n;
  }
