(** MST (Olden, paper §4.2): the minimum-spanning-tree kernel is dominated
    by hash-table lookups that walk linked bucket chains — pointer-chase
    address recurrences of variable length. Unroll-and-jam fuses the
    common prefix of several lookups (guarded, since chain lengths differ)
    and finishes each leftover chain separately, exactly the paper's MST
    treatment. Uniprocessor-only, as in the paper. *)

val make : ?vertices:int -> ?buckets:int -> ?nodes:int -> unit -> Workload.t
(** Defaults: 2048 lookups over a 512-bucket hash table with 16384 chained
    nodes (32-byte nodes, shuffled placement). *)
