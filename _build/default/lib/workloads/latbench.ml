open Memclust_ir
open Memclust_util

let make ?(chains = 64) ?(derefs = 512) () =
  let nodes = chains * derefs in
  let program =
    let open Builder in
    program "latbench"
      ~arrays:[ array_decl "starts" chains ]
      ~regions:[ region_decl ~node_size:64 "nodes" nodes ]
      [
        loop "j" (cst 0) (cst chains)
          [
            chase "p"
              ~init:(ld (aref "starts" (ix "j")))
              ~region:"nodes" ~next:0 ~count:(cst derefs) [];
          ];
      ]
  in
  let init data =
    let rng = Rng.create 0x1a7b_e4c8 in
    (* a random global order of all nodes kills spatial locality both
       within and across chains, as in lat_mem_rd with a large stride *)
    let perm = Rng.permutation rng nodes in
    for j = 0 to chains - 1 do
      let base = j * derefs in
      Data.set data "starts" j (Data.node_ptr data "nodes" perm.(base));
      for k = 0 to derefs - 1 do
        let cur = perm.(base + k) in
        let next =
          if k = derefs - 1 then Ast.Vptr 0
          else Data.node_ptr data "nodes" perm.(base + k + 1)
        in
        Data.field_set data "nodes" ~ptr:(Data.node_addr data "nodes" cur) ~field:0
          next
      done
    done
  in
  {
    Workload.name = "Latbench";
    program;
    init;
    l2_bytes = Workload.small_l2;
    mp_procs = 1;
    description =
      Printf.sprintf "%d chains x %d pointer dereferences, no locality" chains
        derefs;
  }
