open Memclust_ir
open Memclust_util

(* particle record layout: 8 fields of 8 bytes = one 64-byte line *)
let fields = 8

let f_x = 0
and f_y = 1
and f_z = 2
and f_vx = 3
and f_vy = 4
and f_vz = 5

let make ?(particles = 8192) ?(cells_per_side = 16) ?(steps = 2) () =
  let cells = cells_per_side * cells_per_side * cells_per_side in
  let cps2 = cells_per_side * cells_per_side in
  let side = float_of_int cells_per_side in
  let slots = particles * fields in
  let program =
    let open Builder in
    let part f = aref "part" ((fields *: ix "i") +: cst f) in
    let wrap v =
      (* reflect into [0, side): |v mod 2*side - side| stays in range and
         reverses direction at the walls *)
      Ast.Unop (Ast.Abs, Ast.Binop (Ast.Sub, Ast.Binop (Ast.Mod, v, flt (2.0 *. side)), flt side))
    in
    program "mp3d"
      ~arrays:[ array_decl "part" slots; array_decl "cellstate" cells ]
      [
        loop "step" (cst 0) (cst steps)
          [
            loop ~parallel:true "i" (cst 0) (cst particles)
              [
                assign "x" (ld (part f_x));
                assign "y" (ld (part f_y));
                assign "z" (ld (part f_z));
                assign "vx" (ld (part f_vx));
                assign "vy" (ld (part f_vy));
                assign "vz" (ld (part f_vz));
                assign "nx" (wrap (sc "x" + (sc "vx" * flt 0.05)));
                assign "ny" (wrap (sc "y" + (sc "vy" * flt 0.05)));
                assign "nz" (wrap (sc "z" + (sc "vz" * flt 0.05)));
                assign "cell"
                  ((Ast.Unop (Ast.Trunc, sc "nx") * num cps2)
                  + (Ast.Unop (Ast.Trunc, sc "ny") * num cells_per_side)
                  + Ast.Unop (Ast.Trunc, sc "nz"));
                assign "occ" (ld (iref "cellstate" (sc "cell")));
                store (iref "cellstate" (sc "cell")) (sc "occ" + flt 1.0);
                (* collision-like perturbation, data-dependent *)
                if_
                  (flt 4.0 < sc "occ")
                  [
                    assign "vx" ((sc "vx" * flt 0.9) + (sc "vy" * flt 0.1));
                    assign "vy" ((sc "vy" * flt 0.9) + (sc "vz" * flt 0.1));
                    assign "vz" ((sc "vz" * flt 0.9) + (sc "vx" * flt 0.1));
                  ]
                  [];
                store (part f_x) (sc "nx");
                store (part f_y) (sc "ny");
                store (part f_z) (sc "nz");
                store (part f_vx) (sc "vx");
                store (part f_vy) (sc "vy");
                store (part f_vz) (sc "vz");
              ];
          ];
      ]
  in
  let init data =
    let rng = Rng.create 0x3d_2001 in
    for i = 0 to particles - 1 do
      let set f v = Data.set data "part" ((i * fields) + f) (Ast.Vfloat v) in
      set f_x (Rng.float rng side);
      set f_y (Rng.float rng side);
      set f_z (Rng.float rng side);
      set f_vx (Rng.float rng 2.0 -. 1.0);
      set f_vy (Rng.float rng 2.0 -. 1.0);
      set f_vz (Rng.float rng 2.0 -. 1.0)
    done;
    for c = 0 to cells - 1 do
      Data.set data "cellstate" c (Ast.Vfloat 0.0)
    done
  in
  {
    Workload.name = "Mp3d";
    program;
    init;
    l2_bytes = Workload.small_l2;
    mp_procs = 8;
    description =
      Printf.sprintf "%d padded particles, %d cells, %d steps" particles cells steps;
  }
