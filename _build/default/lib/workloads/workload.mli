(** Common shape of an evaluation workload (paper Table 2).

    Each workload provides its base (unclustered) program, a deterministic
    data initializer, and the machine-scaling knobs the paper associates
    with it: the scaled external-cache size (Woo et al. methodology) and
    the multiprocessor configuration it runs with. *)

open Memclust_ir

type t = {
  name : string;
  program : Ast.program;  (** base version; clustering is applied by the driver *)
  init : Data.t -> unit;  (** fills arrays/regions; same data every call *)
  l2_bytes : int;  (** scaled external cache (Table 1: 64 KB or 1 MB class) *)
  mp_procs : int;  (** processors for the multiprocessor experiment; 1 =
                       uniprocessor-only (Latbench, MST; Mp3d on the
                       Exemplar) *)
  description : string;
}

val small_l2 : int
(** 64 KB — Erlebacher, FFT, LU, Mp3d class. *)

val big_l2 : int
(** 256 KB — Em3d, MST, Ocean class (the paper's 1 MB, scaled down with
    our smaller inputs). *)
