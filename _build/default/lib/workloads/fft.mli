(** FFT (SPLASH-2, paper §4.2): radix-2 one-dimensional FFTs applied to the
    rows of a √n × √n matrix, separated by transpose phases (the six-step
    algorithm). Butterfly loops are regular self-spatial streams with
    cache-line recurrences; the transpose reads rows and writes columns. *)

val make : ?m:int -> unit -> Workload.t
(** [m] is the matrix side (power of two); n = m² points. Default 64
    (4096 points). *)
