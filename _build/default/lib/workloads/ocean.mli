(** Ocean (SPLASH-2, paper §4.2): the multigrid relaxation stencils that
    dominate Ocean's time. Five-point Jacobi-style sweeps between two
    grids: the base version already clusters somewhat (several leading
    streams per iteration), so the transformations gain little — and on a
    multiprocessor extra conflict misses can make clustering a slight
    loss, as the paper observes. *)

val make : ?n:int -> ?iters:int -> unit -> Workload.t
(** Defaults: 130×130 grid (128×128 interior), 2 relaxation rounds. *)
