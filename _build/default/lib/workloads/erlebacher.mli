(** Erlebacher (ICASE, paper §4.2): 3-D tridiagonal solver. The dominant
    phase sweeps planes along Z with a forward-elimination and a
    backward-substitution recurrence carried by the plane loop, fully
    parallel over the other two dimensions — regular self-spatial streams
    whose misses the base traversal serializes one line at a time. *)

val make : ?n:int -> unit -> Workload.t
(** Default: 32x32x32 cube. *)
