lib/workloads/fft.ml: Ast Builder Data Float List Memclust_ir Memclust_util Printf Rng Stdlib Workload
