lib/workloads/lu.mli: Workload
