lib/workloads/latbench.mli: Workload
