lib/workloads/mst.mli: Workload
