lib/workloads/workload.mli: Ast Data Memclust_ir
