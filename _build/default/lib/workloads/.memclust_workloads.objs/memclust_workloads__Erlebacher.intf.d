lib/workloads/erlebacher.mli: Workload
