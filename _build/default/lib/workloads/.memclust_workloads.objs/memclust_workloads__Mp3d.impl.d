lib/workloads/mp3d.ml: Ast Builder Data Memclust_ir Memclust_util Printf Rng Workload
