lib/workloads/ocean.mli: Workload
