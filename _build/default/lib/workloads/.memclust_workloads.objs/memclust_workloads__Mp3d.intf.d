lib/workloads/mp3d.mli: Workload
