lib/workloads/workload.ml: Ast Data Memclust_ir
