lib/workloads/latbench.ml: Array Ast Builder Data Memclust_ir Memclust_util Printf Rng Workload
