lib/workloads/registry.ml: Em3d Erlebacher Fft Latbench List Lu Mp3d Mst Ocean String Workload
