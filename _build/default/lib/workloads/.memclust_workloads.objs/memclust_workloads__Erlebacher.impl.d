lib/workloads/erlebacher.ml: Ast Builder Data Memclust_ir Memclust_util Printf Rng Workload
