lib/workloads/fft.mli: Workload
