lib/workloads/mst.ml: Array Ast Builder Data Memclust_ir Memclust_util Printf Rng Workload
