open Memclust_ir
open Memclust_util

let make ?(n = 130) ?(iters = 2) () =
  (* rows are padded to a whole number of cache lines (as the SPLASH-2
     sources do), so the five-point streams of neighboring rows cross line
     boundaries at the same inner iteration and their misses can cluster *)
  let pitch = (n + 7) / 8 * 8 in
  let nn = pitch * n in
  let nm1 = n - 1 in
  let program =
    let open Builder in
    let at r c = (pitch *: r) +: c in
    let sweep ~src ~dst =
      loop ~parallel:true "i" (cst 1) (cst nm1)
        [
          loop "j" (cst 1) (cst nm1)
            [
              store
                (aref dst (at (ix "i") (ix "j")))
                ((flt 0.6 * arr src (at (ix "i") (ix "j")))
                + (flt 0.1
                  * (arr src (at (ix "i" -: cst 1) (ix "j"))
                    + arr src (at (ix "i" +: cst 1) (ix "j"))
                    + arr src (at (ix "i") (ix "j" -: cst 1))
                    + arr src (at (ix "i") (ix "j" +: cst 1))))
                - (flt 0.01 * arr "rhs" (at (ix "i") (ix "j"))));
            ];
        ]
    in
    program "ocean"
      ~arrays:
        [
          array_decl "q" nn;
          (* inter-array padding (as in the SPLASH-2 sources) keeps the
             streams of the three grids in disjoint direct-mapped L1 sets
             even when clustering widens each stream to several rows *)
          array_decl "padA" 360;
          array_decl "qt" nn;
          array_decl "padB" 200;
          array_decl "rhs" nn;
        ]
      [
        loop "t" (cst 0) (cst iters)
          [ sweep ~src:"q" ~dst:"qt"; sweep ~src:"qt" ~dst:"q" ];
      ]
  in
  let init data =
    let rng = Rng.create 0x0cea_11 in
    for i = 0 to nn - 1 do
      Data.set data "q" i (Ast.Vfloat (Rng.float rng 1.0));
      Data.set data "qt" i (Ast.Vfloat 0.0);
      Data.set data "rhs" i (Ast.Vfloat (Rng.float rng 1.0))
    done
  in
  {
    Workload.name = "Ocean";
    program;
    init;
    l2_bytes = Workload.big_l2;
    mp_procs = 8;
    description = Printf.sprintf "%dx%d grids, %d red/black-style rounds" n n iters;
  }
