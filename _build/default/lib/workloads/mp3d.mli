(** Mp3d (SPLASH, paper §4.2): rarefied-fluid-flow Monte Carlo. The
    dominant move loop advances padded particle records (one cache line
    each — no self-spatial reuse, matching the paper's false-sharing
    padding) and scatters into a cell-state array through computed
    (irregular) indices. No memory-parallelism recurrences: the loop body
    is simply too large for one instruction window, so clustering comes
    from inner-loop unrolling plus miss-packing scheduling (§3.3). *)

val make : ?particles:int -> ?cells_per_side:int -> ?steps:int -> unit -> Workload.t
(** Defaults: 8192 particles, 16³ cells, 2 time steps. *)
