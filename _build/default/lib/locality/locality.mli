(** Locality analysis (paper §3.1).

    For every static memory reference, relative to its innermost enclosing
    loop, determine:

    - whether it is a {e leading reference} — a reference whose dynamic
      instances can miss in the external cache — or a follower whose data is
      brought in by another reference's miss (group reuse within one cache
      line), or invariant in the inner loop;
    - for regular leading references, whether it has {e inner-loop
      self-spatial locality} and the sharing degree [L_m] (successive
      iterations touching the same line);
    - regular (affine subscript) vs irregular (indirect / pointer) class.

    The implicit [p->next] load of each pointer-chase loop is reported as an
    irregular leading reference under its [next_ref_id]. *)

open Memclust_ir

type ref_kind =
  | Leading_regular of { lm : int; self_spatial : bool }
      (** [lm] = iterations of the innermost loop sharing one line (1 when
          no self-spatial reuse) *)
  | Leading_irregular
      (** miss pattern unanalyzable; weight with a profiled miss rate *)
  | Follower of { leader : int; distance : int }
      (** same-line group reuse: data brought in by [leader], [distance]
          inner iterations earlier *)
  | Inner_invariant
      (** address constant in the innermost loop: at most one miss per
          inner-loop pass; ignored for miss parallelism *)

type info = {
  id : int;
  kind : ref_kind;
  is_store : bool;
  array : string option;  (** None for region (pointer) references *)
  inner_var : string option;  (** innermost counted-loop variable *)
  in_chase : bool;  (** innermost enclosing loop is a pointer chase *)
  stride_bytes : int;  (** signed byte stride per inner iteration (regular) *)
}

type t

val analyze : line_size:int -> Ast.program -> t
(** Classify every reference of the (renumbered) program. *)

val info : t -> int -> info
(** Lookup by [ref_id]. Raises [Not_found] for unknown ids. *)

val infos : t -> info list
(** All references, in increasing id order. *)

val leading : t -> info list
(** Only the leading references (regular and irregular). *)

val pp : Format.formatter -> t -> unit
