(** Per-reference miss-rate profiling.

    The paper weights irregular leading references by their overall miss
    rate [P_m], "measured through cache simulation or profiling" (§3.2.2).
    This module runs the program once and plays its memory-access trace
    through a set-associative LRU cache (configured like the external
    cache), counting accesses and misses per static reference id. *)

open Memclust_ir

type t

val run :
  ?cache_bytes:int ->
  ?assoc:int ->
  ?line_size:int ->
  Ast.program ->
  Data.t ->
  t
(** Execute the program over a private copy of [data] (the caller's store
    is not modified) and profile it. Defaults: 64 KB, 4-way, 64 B lines —
    the paper's scaled L2. *)

val accesses : t -> int -> int
val misses : t -> int -> int

val miss_rate : t -> int -> float
(** [P_m] for reference [m]; 1.0 when the reference was never executed
    (the conservative assumption for unprofiled irregulars). *)

val total_misses : t -> int
