open Memclust_ir
open Ast

type ref_kind =
  | Leading_regular of { lm : int; self_spatial : bool }
  | Leading_irregular
  | Follower of { leader : int; distance : int }
  | Inner_invariant

type info = {
  id : int;
  kind : ref_kind;
  is_store : bool;
  array : string option;
  inner_var : string option;
  in_chase : bool;
  stride_bytes : int;
}

type t = (int, info) Hashtbl.t

let info t id =
  match Hashtbl.find_opt t id with Some i -> i | None -> raise Not_found

let infos t =
  Hashtbl.fold (fun _ i acc -> i :: acc) t []
  |> List.sort (fun a b -> Int.compare a.id b.id)

let leading t =
  List.filter
    (fun i ->
      match i.kind with
      | Leading_regular _ | Leading_irregular -> true
      | Follower _ | Inner_invariant -> false)
    (infos t)

(* --------------------------------------------------------------- *)

let loop_key (path : loop list) = String.concat ">" (List.map (fun l -> l.var) path)

(* Regular (Direct) references: group same-array references in the same
   innermost loop whose subscripts differ by a constant and share a stride.
   The group leader is the reference that touches new cache lines first
   (largest offset for a positive stride); everyone else's data is brought
   in by the leader's misses. *)

type direct_entry = {
  de_id : int;
  de_store : bool;
  de_array : string;
  de_index : Affine.t;
  de_stride_elems : int;  (* per inner-loop iteration, in elements *)
  de_elem : int;
  de_inner : string option;
  de_loops : loop list;  (* enclosing counted loops, outermost first *)
}

(* Upper bound on a loop's trip count: bounds are evaluated by interval
   arithmetic over the enclosing loops' own bound intervals (seeded with
   the program parameters), so triangular loops like [kk+1 .. kk+B] still
   get a tight bound of B-1 rather than "unknown". *)
let trip_of params (path : loop list) (l : loop) =
  let ranges = Hashtbl.create 8 in
  List.iter (fun (v, k) -> Hashtbl.replace ranges v (k, k)) params;
  let eval_range a =
    List.fold_left
      (fun (lo, hi) v ->
        let c = Affine.coeff a v in
        match Hashtbl.find_opt ranges v with
        | Some (vlo, vhi) ->
            if c >= 0 then (lo + (c * vlo), hi + (c * vhi))
            else (lo + (c * vhi), hi + (c * vlo))
        | None -> (lo - 100_000_000, hi + 100_000_000))
      (Affine.constant a, Affine.constant a)
      (Affine.vars a)
  in
  List.iter
    (fun (outer : loop) ->
      let llo, _ = eval_range outer.lo in
      let _, hhi = eval_range outer.hi in
      Hashtbl.replace ranges outer.var (llo, max llo (hhi - 1)))
    path;
  let llo, _ = eval_range l.lo in
  let _, hhi = eval_range l.hi in
  max 1 ((hhi - llo + l.step - 1) / l.step)

(* Does a reference at constant offset [delta] elements *behind* a group
   leader reuse the leader's cache lines?  Three ways (paper's group
   locality, made iteration-range aware):
   - same line outright (|delta| smaller than a line);
   - exact-address reuse within the innermost loop's extent;
   - reuse carried by up to [outer_cap] iterations of an enclosing loop
     (stencil rows), in which case the data is already cached (dist 0). *)
let reuse_distance ~stride ~elem ~trip ~outer_coeffs ~line_size delta =
  let line_elems = max 1 (line_size / elem) in
  let stride = if stride = 0 then 1 else stride in
  let try_rem rem =
    if abs rem < line_elems then Some (abs rem / abs stride)
    else if rem mod stride = 0 && abs (rem / stride) < trip then
      Some (abs (rem / stride))
    else None
  in
  match try_rem delta with
  | Some d -> Some d
  | None ->
      let outer_cap = 8 in
      let found = ref None in
      List.iter
        (fun c ->
          if !found = None && c <> 0 then
            for d_out = 1 to outer_cap do
              if !found = None then
                match try_rem (delta - (d_out * c)) with
                | Some _ -> found := Some 0
                | None -> ()
            done)
        outer_coeffs;
      !found

let analyze ~line_size (p : program) : t =
  let out : t = Hashtbl.create 64 in
  let put i = Hashtbl.replace out i.id i in
  let refs = Program.refs p in
  (* --- regular references, bucketed by innermost loop --- *)
  let buckets : (string, direct_entry list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (ri : Program.ref_info) ->
      match ri.ref_.target with
      | Direct { array; index } when ri.chase_path = [] ->
          let inner = match List.rev ri.loop_path with [] -> None | l :: _ -> Some l in
          let decl = Program.find_array p array in
          let stride_elems =
            match inner with
            | None -> 0
            | Some l -> Affine.coeff index l.var * l.step
          in
          let e =
            {
              de_id = ri.ref_.ref_id;
              de_store = ri.is_store;
              de_array = array;
              de_index = index;
              de_stride_elems = stride_elems;
              de_elem = decl.elem_size;
              de_inner = Option.map (fun (l : loop) -> l.var) inner;
              de_loops = ri.loop_path;
            }
          in
          let key = loop_key ri.loop_path in
          (match Hashtbl.find_opt buckets key with
          | Some cell -> cell := e :: !cell
          | None -> Hashtbl.add buckets key (ref [ e ]))
      | Direct { array; index = _ } ->
          (* regular reference inside a pointer-chase body: its address is
             fixed while the chase runs *)
          put
            {
              id = ri.ref_.ref_id;
              kind = Inner_invariant;
              is_store = ri.is_store;
              array = Some array;
              inner_var = None;
              in_chase = true;
              stride_bytes = 0;
            }
      | Indirect { array; _ } ->
          put
            {
              id = ri.ref_.ref_id;
              kind = Leading_irregular;
              is_store = ri.is_store;
              array = Some array;
              inner_var =
                (match List.rev ri.loop_path with
                | [] -> None
                | l :: _ -> Some l.var);
              in_chase = ri.chase_path <> [];
              stride_bytes = 0;
            }
      | Field _ ->
          (* classified below, together with its chase loop when inside
             one; otherwise irregular *)
          ())
    refs;
  (* classify each bucket of regular references *)
  Hashtbl.iter
    (fun _key cell ->
      let entries = List.rev !cell in
      (* group by (array, subscript shape without constant, stride) *)
      let tbl : (string, direct_entry list ref) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let shape =
            Affine.sub e.de_index (Affine.const (Affine.constant e.de_index))
          in
          let key =
            Printf.sprintf "%s|%s|%d" e.de_array (Affine.to_string shape)
              e.de_stride_elems
          in
          match Hashtbl.find_opt tbl key with
          | Some c -> c := e :: !c
          | None -> Hashtbl.add tbl key (ref [ e ]))
        entries;
      Hashtbl.iter
        (fun _ gcell ->
          let group = List.rev !gcell in
          match group with
          | [] -> ()
          | first :: _ ->
              let stride = first.de_stride_elems in
              let elem = first.de_elem in
              let stride_bytes = stride * elem in
              if stride = 0 then
                List.iter
                  (fun e ->
                    put
                      {
                        id = e.de_id;
                        kind = Inner_invariant;
                        is_store = e.de_store;
                        array = Some e.de_array;
                        inner_var = e.de_inner;
                        in_chase = false;
                        stride_bytes = 0;
                      })
                  group
              else begin
                let offset e = Affine.constant e.de_index in
                (* earliest toucher of any given line first *)
                let sorted =
                  List.sort
                    (fun a b ->
                      if stride > 0 then compare (offset b) (offset a)
                      else compare (offset a) (offset b))
                    group
                in
                let trip =
                  match List.rev first.de_loops with
                  | [] -> 1
                  | l :: outers_rev -> trip_of p.params (List.rev outers_rev) l
                in
                let outer_coeffs =
                  match List.rev first.de_loops with
                  | [] -> []
                  | _ :: outers ->
                      List.filter_map
                        (fun (l : loop) ->
                          let c = Affine.coeff first.de_index l.var * l.step in
                          if c = 0 then None else Some c)
                        outers
                in
                let abs_sb = abs stride_bytes in
                let lm = max 1 (line_size / abs_sb) in
                let self_spatial = abs_sb < line_size in
                let leaders = ref [] in
                List.iter
                  (fun e ->
                    let attach =
                      List.find_map
                        (fun ldr ->
                          match
                            reuse_distance ~stride ~elem ~trip ~outer_coeffs
                              ~line_size
                              (offset ldr - offset e)
                          with
                          | Some d -> Some (ldr, d)
                          | None -> None)
                        !leaders
                    in
                    match attach with
                    | Some (ldr, distance) ->
                        put
                          {
                            id = e.de_id;
                            kind = Follower { leader = ldr.de_id; distance };
                            is_store = e.de_store;
                            array = Some e.de_array;
                            inner_var = e.de_inner;
                            in_chase = false;
                            stride_bytes;
                          }
                    | None ->
                        leaders := !leaders @ [ e ];
                        put
                          {
                            id = e.de_id;
                            kind = Leading_regular { lm; self_spatial };
                            is_store = e.de_store;
                            array = Some e.de_array;
                            inner_var = e.de_inner;
                            in_chase = false;
                            stride_bytes;
                          })
                  sorted
              end)
        tbl)
    buckets;
  (* --- pointer-chase loops --- *)
  let chases = Program.chases p in
  List.iter
    (fun (c : chase) ->
      let line_of_field f = f * 8 / line_size in
      let next_line = line_of_field c.next_field in
      (* field references on the chased node, in body order *)
      let body_refs = Program.refs_in_stmts c.cbody in
      let on_node (ri : Program.ref_info) =
        match ri.ref_.target with
        | Field { region = r; ptr = Scalar v; field }
          when String.equal r c.cregion && String.equal v c.cvar ->
            Some field
        | _ -> None
      in
      (* leader per node line: syntactically first field reference; the
         implicit next load joins the group of its line *)
      let line_leader : (int, int) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun ri ->
          match on_node ri with
          | None -> (
              (* a field ref through some other pointer: irregular *)
              match ri.ref_.target with
              | Field _ ->
                  put
                    {
                      id = ri.ref_.ref_id;
                      kind = Leading_irregular;
                      is_store = ri.is_store;
                      array = None;
                      inner_var = None;
                      in_chase = true;
                      stride_bytes = 0;
                    }
              | Direct _ | Indirect _ -> ())
          | Some field ->
              let ln = line_of_field field in
              (match Hashtbl.find_opt line_leader ln with
              | None ->
                  Hashtbl.add line_leader ln ri.ref_.ref_id;
                  put
                    {
                      id = ri.ref_.ref_id;
                      kind = Leading_irregular;
                      is_store = ri.is_store;
                      array = None;
                      inner_var = None;
                      in_chase = true;
                      stride_bytes = 0;
                    }
              | Some leader ->
                  put
                    {
                      id = ri.ref_.ref_id;
                      kind = Follower { leader; distance = 0 };
                      is_store = ri.is_store;
                      array = None;
                      inner_var = None;
                      in_chase = true;
                      stride_bytes = 0;
                    }))
        body_refs;
      (* the implicit next load *)
      (match Hashtbl.find_opt line_leader next_line with
      | Some leader ->
          put
            {
              id = c.next_ref_id;
              kind = Follower { leader; distance = 0 };
              is_store = false;
              array = None;
              inner_var = None;
              in_chase = true;
              stride_bytes = 0;
            }
      | None ->
          put
            {
              id = c.next_ref_id;
              kind = Leading_irregular;
              is_store = false;
              array = None;
              inner_var = None;
              in_chase = true;
              stride_bytes = 0;
            }))
    chases;
  (* field refs outside any chase: irregular *)
  List.iter
    (fun (ri : Program.ref_info) ->
      match ri.ref_.target with
      | Field _ when not (Hashtbl.mem out ri.ref_.ref_id) ->
          put
            {
              id = ri.ref_.ref_id;
              kind = Leading_irregular;
              is_store = ri.is_store;
              array = None;
              inner_var =
                (match List.rev ri.loop_path with
                | [] -> None
                | l :: _ -> Some l.var);
              in_chase = ri.chase_path <> [];
              stride_bytes = 0;
            }
      | _ -> ())
    refs;
  out

let kind_to_string = function
  | Leading_regular { lm; self_spatial } ->
      Printf.sprintf "leading-regular (Lm=%d%s)" lm
        (if self_spatial then ", self-spatial" else "")
  | Leading_irregular -> "leading-irregular"
  | Follower { leader; distance } ->
      Printf.sprintf "follower of #%d (dist %d)" leader distance
  | Inner_invariant -> "inner-invariant"

let pp ppf t =
  List.iter
    (fun i ->
      Format.fprintf ppf "#%d %s%s %s@." i.id
        (match i.array with Some a -> a | None -> "<region>")
        (if i.is_store then " (store)" else "")
        (kind_to_string i.kind))
    (infos t)
