lib/locality/locality.ml: Affine Ast Format Hashtbl Int List Memclust_ir Option Printf Program String
