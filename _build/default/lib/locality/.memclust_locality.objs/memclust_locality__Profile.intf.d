lib/locality/profile.mli: Ast Data Memclust_ir
