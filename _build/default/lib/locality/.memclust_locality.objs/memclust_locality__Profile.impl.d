lib/locality/profile.ml: Array Data Exec Memclust_ir Program
