lib/locality/locality.mli: Ast Format Memclust_ir
