(** Syntactic substitutions used by the loop transformations. *)

open Memclust_ir
open Ast

val shift_var : string -> int -> stmt -> stmt
(** [shift_var v k s] rewrites [s] so that every occurrence of loop
    variable [v] reads [v + k]: affine subscripts are shifted and run-time
    [Ivar v] uses become [v + k]. Used to build the k-th copy of an
    unrolled body. *)

val rename_var : string -> string -> stmt -> stmt
(** Rename a loop variable everywhere (subscripts, [Ivar], loop headers). *)

val rename_scalars : (string -> string) -> stmt -> stmt
(** Rename scalar variables (reads, writes and chase pointer variables).
    Unrolled body copies rename their locally-written scalars so the
    copies stay independent. *)

val subst_var_affine : string -> Affine.t -> stmt -> stmt
(** Replace a loop variable by an affine expression in all subscripts and
    loop bounds. [Ivar] uses are rewritten only when the replacement is a
    plain [variable + constant]; otherwise they are left untouched (the
    caller must ensure no run-time uses exist). *)
