open Memclust_ir
open Memclust_locality
open Ast

let is_leading loc id =
  match Locality.info loc id with
  | exception Not_found -> false
  | info -> (
      match info.Locality.kind with
      | Locality.Leading_regular _ | Locality.Leading_irregular -> true
      | Locality.Follower _ | Locality.Inner_invariant -> false)

let is_miss_load loc = function
  | Assign (Lscalar _, Load r) -> is_leading loc r.ref_id
  | _ -> false

(* -------- per-statement read/write summaries -------- *)

(* A memory location: array/region name plus the affine subscript when the
   access is regular ([None] = irregular, may touch anything in that
   object). Two regular accesses with the same subscript shape but
   different constants never alias. *)
type mem_site = string * Affine.t option

type summary = {
  s_reads : string list;  (* scalars read *)
  s_writes : string list;  (* scalars written *)
  s_mem_reads : mem_site list;
  s_mem_writes : mem_site list;
  s_barrier : bool;  (* control flow: fixed relative to everything *)
}

let sites_alias (a1, i1) (a2, i2) =
  String.equal a1 a2
  &&
  match (i1, i2) with
  | Some x, Some y ->
      let shape a = Affine.sub a (Affine.const (Affine.constant a)) in
      if Affine.equal (shape x) (shape y) then
        Affine.constant x = Affine.constant y
      else true
  | _ -> true

let summarize stmt =
  let reads = ref [] and writes = ref [] in
  let mreads = ref [] and mwrites = ref [] in
  let barrier = ref false in
  let add l v = if not (List.mem v !l) then l := v :: !l in
  let rec expr e =
    match e with
    | Const _ | Ivar _ -> ()
    | Scalar v -> add reads v
    | Load r -> ref_ false r
    | Unop (_, a) -> expr a
    | Binop (_, a, b) ->
        expr a;
        expr b
  and ref_ is_store r =
    let target = if is_store then mwrites else mreads in
    match r.target with
    | Direct { array; index } -> add target (array, Some index)
    | Indirect { array; index } ->
        add target (array, None);
        expr index
    | Field { region; ptr; _ } ->
        add target (region, None);
        expr ptr
  in
  let rec walk s =
    match s with
    | Assign (Lscalar v, e) ->
        expr e;
        add writes v
    | Assign (Lmem r, e) ->
        expr e;
        ref_ true r
    | Use e -> expr e
    | Prefetch r -> ref_ false r (* reads only: freely hoistable *)
    | Barrier -> barrier := true
    | If (c, t, e) ->
        (* not a barrier: its summary covers both branches, and hoisting a
           side-effect-free load across a conditional is always sound *)
        expr c;
        List.iter walk t;
        List.iter walk e
    | Loop l ->
        barrier := true;
        List.iter walk l.body
    | Chase c ->
        barrier := true;
        expr c.init;
        add writes c.cvar;
        List.iter walk c.cbody
  in
  walk stmt;
  {
    s_reads = !reads;
    s_writes = !writes;
    s_mem_reads = !mreads;
    s_mem_writes = !mwrites;
    s_barrier = !barrier;
  }

let conflicts a b =
  a.s_barrier || b.s_barrier
  || List.exists (fun v -> List.mem v b.s_reads || List.mem v b.s_writes) a.s_writes
  || List.exists (fun v -> List.mem v b.s_writes) a.s_reads
  || List.exists
       (fun m ->
         List.exists (sites_alias m) b.s_mem_reads
         || List.exists (sites_alias m) b.s_mem_writes)
       a.s_mem_writes
  || List.exists (fun m -> List.exists (sites_alias m) b.s_mem_writes) a.s_mem_reads

let stmts_conflict a b = conflicts (summarize a) (summarize b)

let pack_misses loc stmts =
  let n = List.length stmts in
  if n <= 1 then stmts
  else begin
    let arr = Array.of_list stmts in
    let sums = Array.map summarize arr in
    (* preds.(i): statements that must stay before i *)
    let preds = Array.make n [] in
    for i = 0 to n - 1 do
      for j = 0 to i - 1 do
        if conflicts sums.(j) sums.(i) then preds.(i) <- j :: preds.(i)
      done
    done;
    let emitted = Array.make n false in
    let out = ref [] in
    let ready i =
      (not emitted.(i)) && List.for_all (fun j -> emitted.(j)) preds.(i)
    in
    for _ = 0 to n - 1 do
      (* prefer a ready miss load; otherwise the first ready statement *)
      let pick = ref (-1) in
      (try
         for i = 0 to n - 1 do
           if ready i && is_miss_load loc arr.(i) then begin
             pick := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !pick < 0 then begin
        try
          for i = 0 to n - 1 do
            if ready i then begin
              pick := i;
              raise Exit
            end
          done
        with Exit -> ()
      end;
      assert (!pick >= 0);
      emitted.(!pick) <- true;
      out := arr.(!pick) :: !out
    done;
    List.rev !out
  end
