lib/transform/schedule.ml: Affine Array Ast List Locality Memclust_ir Memclust_locality String
