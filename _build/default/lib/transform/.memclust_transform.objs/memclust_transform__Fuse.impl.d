lib/transform/fuse.ml: Affine Ast Format Legality List Memclust_ir Printf Program String Subst
