lib/transform/strip_mine.ml: Affine Ast Interchange List Memclust_ir
