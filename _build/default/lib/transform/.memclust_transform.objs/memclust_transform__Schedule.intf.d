lib/transform/schedule.mli: Ast Locality Memclust_ir Memclust_locality
