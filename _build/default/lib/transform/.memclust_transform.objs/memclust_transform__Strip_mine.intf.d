lib/transform/strip_mine.mli: Ast Legality Memclust_ir
