lib/transform/subst.mli: Affine Ast Memclust_ir
