lib/transform/interchange.mli: Ast Legality Memclust_ir
