lib/transform/fuse.mli: Ast Format Legality Memclust_ir
