lib/transform/unroll_jam.mli: Ast Format Legality Memclust_ir
