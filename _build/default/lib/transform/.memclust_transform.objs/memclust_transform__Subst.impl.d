lib/transform/subst.ml: Affine Ast Fun List Memclust_ir Option String
