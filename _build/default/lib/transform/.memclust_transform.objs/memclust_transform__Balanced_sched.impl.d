lib/transform/balanced_sched.ml: Array List Locality Memclust_locality Schedule
