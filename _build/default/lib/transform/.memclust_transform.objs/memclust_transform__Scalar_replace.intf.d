lib/transform/scalar_replace.mli: Ast Memclust_ir
