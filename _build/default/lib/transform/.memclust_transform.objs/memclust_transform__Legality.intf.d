lib/transform/legality.mli: Ast Memclust_ir
