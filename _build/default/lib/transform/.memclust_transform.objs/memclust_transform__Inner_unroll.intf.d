lib/transform/inner_unroll.mli: Ast Memclust_ir
