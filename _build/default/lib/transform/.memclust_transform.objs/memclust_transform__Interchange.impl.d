lib/transform/interchange.ml: Affine Ast Legality List Memclust_ir
