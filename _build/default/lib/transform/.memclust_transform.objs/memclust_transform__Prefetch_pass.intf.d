lib/transform/prefetch_pass.mli: Ast Locality Memclust_ir Memclust_locality
