lib/transform/balanced_sched.mli: Ast Locality Memclust_ir Memclust_locality
