lib/transform/legality.ml: Affine Ast Hashtbl List Memclust_ir Program String
