lib/transform/prefetch_pass.ml: Affine Ast List Locality Measure Memclust_ir Memclust_locality Program String
