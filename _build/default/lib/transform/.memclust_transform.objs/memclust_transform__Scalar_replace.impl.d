lib/transform/scalar_replace.ml: Affine Ast List Memclust_ir Printf Program String
