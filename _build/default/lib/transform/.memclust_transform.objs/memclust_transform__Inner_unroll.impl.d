lib/transform/inner_unroll.ml: Affine Ast Hashtbl List Memclust_ir Printf Program Subst
