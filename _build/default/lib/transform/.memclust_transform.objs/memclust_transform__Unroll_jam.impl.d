lib/transform/unroll_jam.ml: Affine Ast Format Hashtbl Legality List Memclust_ir Printf Program String Subst
