(** Loop interchange (paper Figure 2(b)): swap a perfectly nested pair of
    loops. Used on its own it trades all spatial locality for maximal miss
    clustering; the framework mostly uses it on postludes and in the
    motivating examples. *)

open Memclust_ir
open Ast

val apply :
  ?params:(string * int) list ->
  ?outer_ranges:(string * Legality.var_range) list ->
  loop ->
  (stmt, string) result
(** [apply l] requires [l.body = [Loop inner]] with bounds independent of
    each other's variables, and no dependence with direction (<, >). The
    result is the interchanged nest. *)
