open Memclust_ir
open Ast

let apply ?(params = []) ?(outer_ranges = []) (l : loop) =
  match l.body with
  | [ Loop inner ] ->
      if List.mem l.var (Affine.vars inner.lo) || List.mem l.var (Affine.vars inner.hi)
      then Error "inner bounds depend on the outer variable"
      else if
        List.mem inner.var (Affine.vars l.lo) || List.mem inner.var (Affine.vars l.hi)
      then Error "outer bounds depend on the inner variable"
      else if
        not (Legality.interchange_legal ~params ~outer_ranges ~outer:l ~inner)
      then Error "a dependence with direction (<,>) forbids interchange"
      else
        Ok
          (Loop
             {
               inner with
               parallel = l.parallel;
               body = [ Loop { l with parallel = false; body = inner.body } ];
             })
  | _ -> Error "not a perfect loop nest"
