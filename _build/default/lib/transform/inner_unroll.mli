(** Inner-loop unrolling (paper §3.3, first stage of window-constraint
    resolution): replicate the innermost body so that the independent
    misses of several iterations are exposed to the local scheduler inside
    one instruction window. Copies share scalars (sequential semantics of
    the same loop), so loop-carried scalar recurrences remain correct. *)

open Memclust_ir
open Ast

val apply :
  ?params:(string * int) list -> factor:int -> loop -> (stmt list, string) result
(** [apply ~factor l] unrolls [l] in place by [factor]; returns main loop
    plus postlude. Requires constant bounds under [params] and at least
    [factor] iterations. The caller renumbers afterwards. *)
