(** Loop fusion (paper §6, future work): "resolve memory-parallelism
    recurrences for unnested loops by fusing otherwise unrelated loops".

    Two adjacent loops with identical iteration spaces fuse into one whose
    body interleaves both — each fused iteration then carries both loops'
    leading references, clustering their misses the way unroll-and-jam
    does for nested loops.

    Legality: for every pair of a store in one loop and an access to the
    same array in the other, no dependence may point {e backwards} across
    the fusion (the second loop's iteration i touching an element the
    first loop produces only at some iteration j > i, or symmetrically):
    all dependence distances must be non-negative. Scalars written by both
    loops are renamed apart when each loop's use is privatizable. *)

open Memclust_ir
open Ast

type error =
  | Shape_mismatch of string  (** different variables, bounds or steps *)
  | Illegal of string  (** a backward dependence crosses the fusion *)
  | Scalar_conflict of string  (** a shared scalar cannot be privatized *)

val pp_error : Format.formatter -> error -> unit

val apply :
  ?params:(string * int) list ->
  ?outer_ranges:(string * Legality.var_range) list ->
  loop ->
  loop ->
  (stmt, error) result
(** [apply l1 l2] fuses two adjacent loops ([l1] immediately before
    [l2]). The second loop's variable is renamed to the first's when the
    names differ but the spaces match. The caller renumbers afterwards. *)

val fuse_adjacent : ?params:(string * int) list -> program -> program * int
(** Fuse every adjacent fusable pair of top-level loops, left to right;
    returns the renumbered program and the number of fusions performed. *)
