(** Software prefetch insertion (Mowry-style, simplified) — the latency
    tolerance technique the paper compares against (§1) and whose
    interaction with clustering it flags as ongoing work (§6, [8]).

    For every innermost counted loop, insert a non-binding prefetch for
    each leading reference, targeting the iteration [distance] ahead:

    - regular references prefetch [A(i + distance·step)] (no predication:
      redundant same-line hints are issued and dropped by the cache, the
      usual cost of unpredicated prefetching);
    - irregular (indirect) references prefetch [A(index(i + distance))],
      re-evaluating the index expression one distance ahead — the index
      stream load this adds is usually a cache hit;
    - pointer chases are left alone (the next address is not computable
      ahead of time — the classic limit of prefetching on recursive
      structures).

    The default distance is ⌈latency / (body_ops / issue_width)⌉
    iterations, Mowry's rule with our static body size estimate. *)

open Memclust_ir
open Memclust_locality
open Ast

val distance_for : latency:int -> issue_width:int -> stmt list -> int
(** The prefetch distance for one loop body. At least 1. *)

val insert :
  ?latency:int ->
  ?issue_width:int ->
  ?line_size:int ->
  program ->
  program * int
(** Insert prefetches into every innermost counted loop; returns the
    renumbered program and the number of prefetch statements added.
    Defaults: latency 85, issue width 4, 64-byte lines. *)

val insert_in_body :
  Locality.t -> distance:int -> loop -> stmt list * int
(** The per-loop worker (exposed for tests): returns the new body. *)
