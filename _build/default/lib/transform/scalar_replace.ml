open Memclust_ir
open Ast

(* Available-value map: (array, subscript) -> scalar holding the value. *)
module Key = struct
  type t = string * Affine.t

  let equal (a1, i1) (a2, i2) = String.equal a1 a2 && Affine.equal i1 i2
end

type env = {
  mutable avail : (Key.t * string) list;
  fresh : int ref;  (* shared across nested blocks: names never collide *)
  mutable out : stmt list;  (* reversed output statements *)
  saved : int ref;
}

let lookup env k = List.find_opt (fun (k', _) -> Key.equal k k') env.avail

let invalidate_array env a =
  env.avail <- List.filter (fun ((a', _), _) -> not (String.equal a a')) env.avail

let define env k name =
  env.avail <- (k, name) :: List.filter (fun (k', _) -> not (Key.equal k k')) env.avail

let fresh_name env =
  incr env.fresh;
  Printf.sprintf "sr$%d" !(env.fresh)

let has_irregular_store stmts =
  List.exists
    (fun (ri : Program.ref_info) ->
      ri.is_store
      && match ri.ref_.target with Direct _ -> false | Indirect _ | Field _ -> true)
    (Program.refs_in_stmts stmts)

(* Rewrite an expression, lifting Direct loads to temporaries. *)
let rec rw_expr env e =
  match e with
  | Const _ | Ivar _ | Scalar _ -> e
  | Load ({ target = Direct { array; index }; _ } as r) -> (
      let k = (array, index) in
      match lookup env k with
      | Some (_, name) ->
          incr env.saved;
          Scalar name
      | None ->
          let name = fresh_name env in
          env.out <- Assign (Lscalar name, Load r) :: env.out;
          define env k name;
          Scalar name)
  | Load { target = Indirect { array; index }; ref_id } ->
      (* irregular loads cannot be value-numbered (unknown aliasing), but
         lifting them to a temporary exposes them to the miss-packing
         scheduler *)
      let index' = rw_expr env index in
      let name = fresh_name env in
      env.out <-
        Assign (Lscalar name, Load { ref_id; target = Indirect { array; index = index' } })
        :: env.out;
      Scalar name
  | Load { target = Field { region; ptr; field }; ref_id } ->
      Load { ref_id; target = Field { region; ptr = rw_expr env ptr; field } }
  | Unop (op, a) -> Unop (op, rw_expr env a)
  | Binop (op, a, b) ->
      let a' = rw_expr env a in
      let b' = rw_expr env b in
      Binop (op, a', b')

let rec rw_stmt env stmt =
  match stmt with
  | Assign (Lscalar v, e) ->
      let e' = rw_expr env e in
      env.out <- Assign (Lscalar v, e') :: env.out
  | Assign (Lmem ({ target = Direct { array; index }; _ } as r), e) ->
      let e' = rw_expr env e in
      let k = (array, index) in
      let name =
        match e' with
        | Scalar v -> v
        | _ ->
            let name = fresh_name env in
            env.out <- Assign (Lscalar name, e') :: env.out;
            name
      in
      invalidate_array env array;
      define env k name;
      env.out <- Assign (Lmem r, Scalar name) :: env.out
  | Assign (Lmem r, e) ->
      let e' = rw_expr env e in
      (* unknown aliasing: drop everything *)
      env.avail <- [];
      env.out <- Assign (Lmem r, e') :: env.out
  | Use e ->
      let e' = rw_expr env e in
      env.out <- Use e' :: env.out
  | Barrier ->
      env.avail <- [];
      env.out <- Barrier :: env.out
  | Prefetch r -> env.out <- Prefetch r :: env.out
  | If (c, t, e) ->
      let c' = rw_expr env c in
      let t' = sub_block env t in
      let e' = sub_block env e in
      (* conservatively forget values after a branch *)
      env.avail <- [];
      env.out <- If (c', t', e') :: env.out
  | Loop l ->
      let body' = sub_block env l.body in
      env.avail <- [];
      env.out <- Loop { l with body = body' } :: env.out
  | Chase c ->
      let body' = sub_block env c.cbody in
      env.avail <- [];
      env.out <- Chase { c with cbody = body' } :: env.out

(* a nested block starts with no available values and keeps its rewrites
   local (it may execute zero or many times) *)
and sub_block env stmts =
  if has_irregular_store stmts then stmts
  else begin
    let child = { avail = []; fresh = env.fresh; out = []; saved = env.saved } in
    List.iter (rw_stmt child) stmts;
    List.rev child.out
  end

let apply_body stmts =
  if has_irregular_store stmts then (stmts, 0)
  else begin
    let env = { avail = []; fresh = ref 0; out = []; saved = ref 0 } in
    List.iter (rw_stmt env) stmts;
    (List.rev env.out, !(env.saved))
  end

let apply_innermost (p : program) =
  let total = ref 0 in
  let rec walk stmt =
    match stmt with
    | Loop l ->
        let has_nested =
          List.exists (function Loop _ | Chase _ -> true | _ -> false) l.body
        in
        if has_nested then Loop { l with body = List.map walk l.body }
        else begin
          let body', n = apply_body l.body in
          total := !total + n;
          Loop { l with body = body' }
        end
    | Chase c -> Chase { c with cbody = List.map walk c.cbody }
    | If (c, t, e) -> If (c, List.map walk t, List.map walk e)
    | Assign _ | Use _ | Barrier | Prefetch _ -> stmt
  in
  let p' = { p with body = List.map walk p.body } in
  (Program.renumber p', !total)
