open Memclust_ir
open Ast

(* Generic expression rewriter that also maps affine subscripts and loop
   bounds. [fe] rewrites leaf expressions ([Ivar]/[Scalar]); [fa] rewrites
   affine forms. *)
let rec rw_expr ~fe ~fa e =
  match e with
  | Const _ -> e
  | Ivar _ | Scalar _ -> fe e
  | Load r -> Load (rw_ref ~fe ~fa r)
  | Unop (op, a) -> Unop (op, rw_expr ~fe ~fa a)
  | Binop (op, a, b) -> Binop (op, rw_expr ~fe ~fa a, rw_expr ~fe ~fa b)

and rw_ref ~fe ~fa r =
  let target =
    match r.target with
    | Direct { array; index } -> Direct { array; index = fa index }
    | Indirect { array; index } -> Indirect { array; index = rw_expr ~fe ~fa index }
    | Field { region; ptr; field } ->
        Field { region; ptr = rw_expr ~fe ~fa ptr; field }
  in
  { r with target }

let rec rw_stmt ~fe ~fa ~floop stmt =
  match stmt with
  | Assign (Lscalar v, e) -> Assign (Lscalar v, rw_expr ~fe ~fa e)
  | Assign (Lmem r, e) -> Assign (Lmem (rw_ref ~fe ~fa r), rw_expr ~fe ~fa e)
  | Use e -> Use (rw_expr ~fe ~fa e)
  | Barrier -> Barrier
  | Prefetch r -> Prefetch (rw_ref ~fe ~fa r)
  | If (c, t, e) ->
      If
        ( rw_expr ~fe ~fa c,
          List.map (rw_stmt ~fe ~fa ~floop) t,
          List.map (rw_stmt ~fe ~fa ~floop) e )
  | Loop l ->
      let l = { l with lo = fa l.lo; hi = fa l.hi } in
      let (l : loop) = floop l in
      Loop { l with body = List.map (rw_stmt ~fe ~fa ~floop) l.body }
  | Chase c ->
      Chase
        {
          c with
          init = rw_expr ~fe ~fa c.init;
          count = Option.map fa c.count;
          cbody = List.map (rw_stmt ~fe ~fa ~floop) c.cbody;
        }

let shift_var v k stmt =
  let fe = function
    | Ivar v' when String.equal v v' -> Binop (Add, Ivar v, Const (Vint k))
    | e -> e
  in
  let fa a = Affine.shift a v k in
  rw_stmt ~fe ~fa ~floop:Fun.id stmt

let rename_var v w stmt =
  let fe = function
    | Ivar v' when String.equal v v' -> Ivar w
    | e -> e
  in
  let fa a = Affine.subst a v (Affine.var w) in
  let floop l = if String.equal l.var v then { l with var = w } else l in
  rw_stmt ~fe ~fa ~floop stmt

let rename_scalars f stmt =
  let fe = function Scalar v -> Scalar (f v) | e -> e in
  let rec go stmt =
    match stmt with
    | Assign (Lscalar v, e) -> Assign (Lscalar (f v), rw_expr ~fe ~fa:Fun.id e)
    | Assign (Lmem r, e) ->
        Assign (Lmem (rw_ref ~fe ~fa:Fun.id r), rw_expr ~fe ~fa:Fun.id e)
    | Use e -> Use (rw_expr ~fe ~fa:Fun.id e)
    | Barrier -> Barrier
    | Prefetch r -> Prefetch (rw_ref ~fe ~fa:Fun.id r)
    | If (c, t, e) -> If (rw_expr ~fe ~fa:Fun.id c, List.map go t, List.map go e)
    | Loop l -> Loop { l with body = List.map go l.body }
    | Chase c ->
        Chase
          {
            c with
            cvar = f c.cvar;
            init = rw_expr ~fe ~fa:Fun.id c.init;
            cbody = List.map go c.cbody;
          }
  in
  go stmt

let subst_var_affine v repl stmt =
  let fe = function
    | Ivar v' when String.equal v v' ->
        (* run-time use: only expressible when repl = var + const *)
        (match (Affine.vars repl, Affine.constant repl) with
        | [ w ], c when Affine.coeff repl w = 1 ->
            if c = 0 then Ivar w else Binop (Add, Ivar w, Const (Vint c))
        | [], c -> Const (Vint c)
        | _ -> Ivar v')
    | e -> e
  in
  let fa a = Affine.subst a v repl in
  rw_stmt ~fe ~fa ~floop:Fun.id stmt
