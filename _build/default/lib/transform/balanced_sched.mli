(** Balanced scheduling (Kerns & Eggers; Lo & Eggers), at statement
    granularity — the local scheduling heuristic the paper used for its
    window-constraint codes before noting that it "may miss some
    opportunities since it does not explicitly consider window size"
    (§3.3). Provided as the comparison baseline for
    {!Schedule.pack_misses}.

    Instead of packing all miss loads first, balanced scheduling assigns
    each load a latency weight equal to the independent work available to
    hide it, and list-schedules by critical-path height — loads are pulled
    early only in proportion to the slack around them. *)

open Memclust_ir
open Memclust_locality
open Ast

val reorder : Locality.t -> stmt list -> stmt list
(** Reorder a loop body by balanced list scheduling. Dependences are the
    same conservative statement-level ones {!Schedule} uses; the result is
    always a permutation of the input. *)
