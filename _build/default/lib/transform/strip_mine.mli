(** Strip-mine and interchange (paper Figure 2(c)): split a loop into
    strips of a fixed size and interchange the strip loop inward, yielding
    a traversal that clusters misses across [strip] outer iterations while
    still revisiting cache lines soon enough to keep locality. Shown for
    comparison with unroll-and-jam (which the paper prefers, §2.2). *)

open Memclust_ir
open Ast

val strip : ?params:(string * int) list -> size:int -> loop -> (stmt, string) result
(** Strip-mining only: [for j in lo..hi] becomes
    [for jj in lo..hi step size*step { for j in jj..jj+size*step }].
    Requires constant bounds with trip count divisible by [size]. *)

val strip_and_interchange :
  ?params:(string * int) list ->
  ?outer_ranges:(string * Legality.var_range) list ->
  size:int ->
  loop ->
  (stmt, string) result
(** Strip-mine the outer loop of a perfect 2-nest and interchange the
    strip loop inside the original inner loop. *)
