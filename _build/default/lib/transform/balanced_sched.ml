open Memclust_locality

(* Load-latency weight: a load's schedulable weight grows with the
   independent work available to hide it, split among the competing loads
   (the Kerns & Eggers balance ratio, at statement granularity). *)
let weights (loc : Locality.t) stmts ancestors descendants =
  let n = Array.length stmts in
  let loads =
    Array.to_list stmts
    |> List.filteri (fun i _ -> ignore i; true)
    |> List.mapi (fun i s -> (i, Schedule.is_miss_load loc s))
    |> List.filter snd |> List.map fst
  in
  let nloads = max 1 (List.length loads) in
  Array.init n (fun i ->
      if Schedule.is_miss_load loc stmts.(i) then begin
        let independent = ref 0 in
        for j = 0 to n - 1 do
          if j <> i && (not ancestors.(i).(j)) && not descendants.(i).(j) then
            incr independent
        done;
        1 + (!independent / nloads)
      end
      else 1)

let reorder loc stmts =
  let n = List.length stmts in
  if n <= 1 then stmts
  else begin
    let arr = Array.of_list stmts in
    (* dependence edges in program order *)
    let edge = Array.make_matrix n n false in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Schedule.stmts_conflict arr.(i) arr.(j) then edge.(i).(j) <- true
      done
    done;
    (* transitive ancestor/descendant closures *)
    let anc = Array.make_matrix n n false in
    let desc = Array.make_matrix n n false in
    for j = 0 to n - 1 do
      for i = 0 to j - 1 do
        if edge.(i).(j) then begin
          anc.(j).(i) <- true;
          for k = 0 to n - 1 do
            if anc.(i).(k) then anc.(j).(k) <- true
          done
        end
      done
    done;
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if anc.(i).(j) then desc.(j).(i) <- true
      done
    done;
    let w = weights loc arr anc desc in
    (* critical-path height *)
    let height = Array.make n 0 in
    for i = n - 1 downto 0 do
      let best = ref 0 in
      for j = i + 1 to n - 1 do
        if edge.(i).(j) && height.(j) > !best then best := height.(j)
      done;
      height.(i) <- w.(i) + !best
    done;
    (* greedy list scheduling: ready statement with the tallest height *)
    let emitted = Array.make n false in
    let out = ref [] in
    for _ = 1 to n do
      let pick = ref (-1) in
      for i = 0 to n - 1 do
        if (not emitted.(i))
           && (let ok = ref true in
               for j = 0 to i - 1 do
                 if edge.(j).(i) && not emitted.(j) then ok := false
               done;
               !ok)
           && (!pick < 0 || height.(i) > height.(!pick))
        then pick := i
      done;
      emitted.(!pick) <- true;
      out := arr.(!pick) :: !out
    done;
    List.rev !out
  end
