open Memclust_ir
open Memclust_locality
open Ast

let distance_for ~latency ~issue_width body =
  let ops = Measure.body_ops body in
  let cycles = max 1 (ops / max 1 issue_width) in
  max 1 ((latency + cycles - 1) / cycles)

(* Shift every use of [var] in an expression by [k] iterations (the
   run-time Ivar form; affine subscripts go through Affine.shift). *)
let rec shift_expr var k e =
  match e with
  | Const _ | Scalar _ -> e
  | Ivar v when String.equal v var -> Binop (Add, Ivar v, Const (Vint k))
  | Ivar _ -> e
  | Load r -> Load (shift_ref var k r)
  | Unop (op, a) -> Unop (op, shift_expr var k a)
  | Binop (op, a, b) -> Binop (op, shift_expr var k a, shift_expr var k b)

and shift_ref var k r =
  match r.target with
  | Direct { array; index } ->
      { ref_id = 0; target = Direct { array; index = Affine.shift index var k } }
  | Indirect { array; index } ->
      { ref_id = 0; target = Indirect { array; index = shift_expr var k index } }
  | Field _ -> { r with ref_id = 0 }

let insert_in_body loc ~distance (l : loop) =
  let added = ref 0 in
  let hints =
    List.filter_map
      (fun (ri : Program.ref_info) ->
        if ri.loop_path <> [] || ri.chase_path <> [] then None
        else
          match Locality.info loc ri.ref_.ref_id with
          | exception Not_found -> None
          | info -> (
              match (info.Locality.kind, ri.ref_.target) with
              | (Locality.Leading_regular _ | Locality.Leading_irregular), Field _
                ->
                  None (* pointer dereference: address not computable ahead *)
              | ( (Locality.Leading_regular _ | Locality.Leading_irregular),
                  (Direct _ | Indirect _) ) ->
                  incr added;
                  Some (Prefetch (shift_ref l.var (distance * l.step) ri.ref_))
              | (Locality.Follower _ | Locality.Inner_invariant), _ -> None))
      (Program.refs_in_stmts l.body)
  in
  (hints @ l.body, !added)

let insert ?(latency = 85) ?(issue_width = 4) ?(line_size = 64) (p : program) =
  let loc = Locality.analyze ~line_size p in
  let total = ref 0 in
  let rec walk stmt =
    match stmt with
    | Loop l ->
        let has_nested =
          List.exists (function Loop _ | Chase _ -> true | _ -> false) l.body
        in
        if has_nested then Loop { l with body = List.map walk l.body }
        else begin
          let distance = distance_for ~latency ~issue_width l.body in
          let body, n = insert_in_body loc ~distance l in
          total := !total + n;
          Loop { l with body }
        end
    | Chase c -> Chase { c with cbody = List.map walk c.cbody }
    | If (c, t, e) -> If (c, List.map walk t, List.map walk e)
    | Assign _ | Use _ | Barrier | Prefetch _ -> stmt
  in
  let p' = { p with body = List.map walk p.body } in
  (Program.renumber p', !total)
