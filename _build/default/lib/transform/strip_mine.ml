open Memclust_ir
open Ast

let const_bounds ~params (l : loop) =
  let env v =
    match List.assoc_opt v params with Some k -> k | None -> raise Exit
  in
  match (Affine.eval env l.lo, Affine.eval env l.hi) with
  | lo, hi -> Some (lo, hi)
  | exception Exit -> None

let strip ?(params = []) ~size (l : loop) =
  if size <= 1 then Ok (Loop l)
  else begin
    match const_bounds ~params l with
    | None -> Error "loop bounds are not constant under the parameters"
    | Some (lo, hi) ->
        let s = l.step in
        let count = if hi > lo then (hi - lo + s - 1) / s else 0 in
        if count mod size <> 0 then
          Error "trip count is not divisible by the strip size"
        else begin
          let jj = l.var ^ "$strip" in
          let strip_loop =
            Loop
              {
                var = l.var;
                lo = Affine.var jj;
                hi = Affine.add (Affine.var jj) (Affine.const (size * s));
                step = s;
                parallel = false;
                body = l.body;
              }
          in
          Ok
            (Loop
               {
                 var = jj;
                 lo = l.lo;
                 hi = l.hi;
                 step = s * size;
                 parallel = l.parallel;
                 body = [ strip_loop ];
               })
        end
  end

let strip_and_interchange ?(params = []) ?(outer_ranges = []) ~size (l : loop) =
  match l.body with
  | [ Loop _ ] -> (
      match strip ~params ~size l with
      | Error _ as e -> e
      | Ok (Loop outer) -> (
          (* outer = jj-loop containing [strip_loop [inner]]; interchange
             the strip loop with the original inner loop *)
          match outer.body with
          | [ Loop strip_l ] -> (
              match Interchange.apply ~params ~outer_ranges strip_l with
              | Error _ as e -> e
              | Ok swapped -> Ok (Loop { outer with body = [ swapped ] }))
          | _ -> Error "internal: unexpected strip structure")
      | Ok _ -> Error "internal: unexpected strip result")
  | _ -> Error "not a perfect loop nest"
