(** Miss-packing local scheduling (paper §3.3, second stage of
    window-constraint resolution): reorder the statements of a large loop
    body so that independent leading-reference loads sit next to each other
    at the top of the body, inside one instruction window — a practical
    stand-in for balanced scheduling with explicit window awareness.

    Works at statement granularity on a dependence graph built from scalar
    def/use chains and conservative memory conflicts (same array, same
    region, or any irregular store). Run {!Scalar_replace.apply_body}
    first so leading loads are exposed as [tmp = load] statements. *)

open Memclust_ir
open Memclust_locality
open Ast

val pack_misses : Locality.t -> stmt list -> stmt list
(** Reorder the body, hoisting statements that are leading-miss loads as
    early as their dependences allow. Statement sets with control flow
    ([If], nested loops, chases, barriers) are kept in order relative to
    everything (scheduling barriers). *)

val is_miss_load : Locality.t -> stmt -> bool
(** [true] for [tmp = load r] where [r] is a leading reference. *)

val stmts_conflict : stmt -> stmt -> bool
(** The conservative statement-level dependence test used to build the
    scheduling DAG (scalar def/use chains plus affine-disambiguated memory
    conflicts); exposed for the alternative schedulers. *)
