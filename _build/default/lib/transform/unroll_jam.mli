(** Unroll-and-jam (paper §2.2, §3.2): unroll an outer loop by a factor n
    and fuse ("jam") the resulting copies of its inner loops, so that each
    inner-loop iteration carries independent leading references from n
    outer iterations — clustering their misses inside one instruction
    window while preserving the inner loop's spatial locality.

    Copies of the body have their privatizable scalars renamed so they stay
    independent; pointer-chase loops are jammed by advancing the extra
    chains inside the first chain's loop (guarded when chain lengths may
    differ, with postlude chases finishing the leftovers — the paper's MST
    treatment). A postlude covers leftover outer iterations; when the body
    is a perfect nest the postlude is interchanged so the leftovers still
    get some clustering (paper §2.2). *)

open Memclust_ir
open Ast

type error =
  | Not_unrollable of string
      (** structural obstacle (e.g. carried scalar, non-positive factor) *)
  | Illegal of string  (** a data dependence forbids the transformation *)

val pp_error : Format.formatter -> error -> unit

val apply :
  ?params:(string * int) list ->
  ?outer_ranges:(string * Legality.var_range) list ->
  ?interchange_postlude:bool ->
  factor:int ->
  loop ->
  (stmt list, error) result
(** [apply ~factor l] unrolls-and-jams loop [l]. Returns the replacement
    statement sequence (main loop, postlude bookkeeping, postlude).
    [params] and [outer_ranges] feed the legality tests; a loop marked
    [parallel] skips the array-dependence test but still requires its
    written scalars to be privatizable. [interchange_postlude] defaults to
    true. The caller must renumber the enclosing program afterwards. *)

val scalars_privatizable : loop -> bool
(** All scalars written in the loop body are written before read (looking
    only at the loop's own level of statements and descending through
    conditionals) — the condition for per-copy renaming to be sound. *)
