(** Scalar replacement within a loop body: lift regular array loads into
    scalar temporaries, forward stored values to later loads of the same
    element, and eliminate redundant loads of the same element (the reuse
    unroll-and-jam creates between fused copies — the paper's secondary
    benefit of unroll-and-jam over strip-mine-and-interchange, §2.2).

    Only applies to [Direct] references; a body containing an indirect or
    pointer store is left untouched (unknown aliasing). *)

open Memclust_ir
open Ast

val apply_body : stmt list -> stmt list * int
(** Returns the rewritten body and the number of loads eliminated
    (forwarded or deduplicated). Nested loops are processed recursively,
    each with a fresh value map. *)

val apply_innermost : program -> program * int
(** Apply to every innermost loop body of the program and renumber. *)
