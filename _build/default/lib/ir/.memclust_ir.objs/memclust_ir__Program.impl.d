lib/ir/program.ml: Ast Format Hashtbl List String
