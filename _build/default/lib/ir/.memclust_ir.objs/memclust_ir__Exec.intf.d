lib/ir/exec.mli: Ast Data
