lib/ir/ast.ml: Affine
