lib/ir/data.mli: Ast
