lib/ir/data.ml: Array Ast Float Hashtbl List Printf
