lib/ir/affine.ml: Format List Map Stdlib String
