lib/ir/builder.mli: Affine Ast
