lib/ir/pretty.mli: Ast Format
