lib/ir/measure.ml: Affine Ast List
