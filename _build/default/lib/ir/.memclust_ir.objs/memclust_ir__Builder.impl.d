lib/ir/builder.ml: Affine Ast Program
