lib/ir/program.mli: Ast
