lib/ir/exec.ml: Affine Ast Data Float Hashtbl List Option Printf
