lib/ir/pretty.ml: Affine Ast Format List
