lib/ir/measure.mli: Ast
