module Smap = Map.Make (String)

type t = { coeffs : int Smap.t; const : int }
(* Invariant: no zero coefficients are stored. *)

let norm coeffs = Smap.filter (fun _ c -> c <> 0) coeffs

let const c = { coeffs = Smap.empty; const = c }

let var v = { coeffs = Smap.singleton v 1; const = 0 }

let add a b =
  let coeffs =
    Smap.union (fun _ x y -> Some (x + y)) a.coeffs b.coeffs |> norm
  in
  { coeffs; const = a.const + b.const }

let scale k a =
  if k = 0 then const 0
  else { coeffs = Smap.map (fun c -> k * c) a.coeffs; const = k * a.const }

let neg a = scale (-1) a
let sub a b = add a (neg b)

let of_terms terms c =
  List.fold_left (fun acc (v, k) -> add acc (scale k (var v))) (const c) terms

let constant a = a.const
let coeff a v = match Smap.find_opt v a.coeffs with Some c -> c | None -> 0
let vars a = Smap.bindings a.coeffs |> List.map fst
let is_const a = Smap.is_empty a.coeffs

let subst a v b =
  match Smap.find_opt v a.coeffs with
  | None -> a
  | Some k ->
      let without = { a with coeffs = Smap.remove v a.coeffs } in
      add without (scale k b)

let shift a v k = subst a v (add (var v) (const k))

let eval env a =
  Smap.fold (fun v c acc -> acc + (c * env v)) a.coeffs a.const

let equal a b = a.const = b.const && Smap.equal ( = ) a.coeffs b.coeffs

let compare a b =
  let c = Stdlib.compare a.const b.const in
  if c <> 0 then c else Smap.compare Stdlib.compare a.coeffs b.coeffs

let pp ppf a =
  let terms = Smap.bindings a.coeffs in
  if terms = [] then Format.fprintf ppf "%d" a.const
  else begin
    List.iteri
      (fun i (v, c) ->
        if i = 0 then begin
          if c = 1 then Format.fprintf ppf "%s" v
          else if c = -1 then Format.fprintf ppf "-%s" v
          else Format.fprintf ppf "%d*%s" c v
        end
        else if c = 1 then Format.fprintf ppf " + %s" v
        else if c = -1 then Format.fprintf ppf " - %s" v
        else if c > 0 then Format.fprintf ppf " + %d*%s" c v
        else Format.fprintf ppf " - %d*%s" (-c) v)
      terms;
    if a.const > 0 then Format.fprintf ppf " + %d" a.const
    else if a.const < 0 then Format.fprintf ppf " - %d" (-a.const)
  end

let to_string a = Format.asprintf "%a" pp a
