(** Whole-program utilities: reference renumbering, traversals, lookup of
    declarations, and structural validation. *)

open Ast

val renumber : program -> program
(** Assign fresh, unique, dense [ref_id]s (from 1) to every static memory
    reference, in syntactic order. Analyses key their results by these ids,
    so renumbering must be re-run after any transformation (transformation
    entry points do this themselves). *)

val max_ref_id : program -> int

val map_stmts : (stmt -> stmt) -> program -> program
(** Bottom-up rewrite of every statement (children first). *)

val map_refs : (mem_ref -> mem_ref) -> stmt -> stmt
(** Rewrite every memory reference in a statement, including those nested
    in expressions and left-hand sides. *)

val iter_exprs_in_stmt : (expr -> unit) -> stmt -> unit
(** Apply to every top-level expression of the statement and recursively in
    children statements (the callback receives whole expressions; walk
    inside them yourself if needed). *)

(** A static reference together with its syntactic context. *)
type ref_info = {
  ref_ : mem_ref;
  is_store : bool;
  loop_path : loop list;  (** enclosing counted loops, outermost first *)
  chase_path : chase list;  (** enclosing pointer-chase loops, outermost first *)
}

val refs : program -> ref_info list
(** All static references in syntactic order. *)

val refs_in_stmts : stmt list -> ref_info list

val chases : program -> chase list
(** All pointer-chase loops, in syntactic order. *)

val find_array : program -> string -> array_decl
(** Raises [Not_found] for unknown arrays. *)

val find_region : program -> string -> region_decl

val array_exists : program -> string -> bool

val validate : program -> (unit, string) result
(** Structural checks: declared arrays/regions, positive steps and sizes,
    unique ref ids, unique loop variables along any nesting path, fields
    within node bounds. *)

val scalars_written : stmt list -> string list
(** Scalar variables assigned anywhere in the statements (no duplicates). *)
