open Ast

let pp_value ppf = function
  | Vfloat x -> Format.fprintf ppf "%g" x
  | Vint i -> Format.fprintf ppf "%d" i
  | Vptr 0 -> Format.fprintf ppf "null"
  | Vptr a -> Format.fprintf ppf "ptr:%#x" a

let unop_name = function
  | Neg -> "-"
  | Abs -> "abs"
  | Sqrt -> "sqrt"
  | Trunc -> "trunc"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Min -> "min"
  | Max -> "max"
  | Lt -> "<"
  | Le -> "<="
  | Eq -> "=="

let rec pp_expr ppf = function
  | Const v -> pp_value ppf v
  | Ivar v -> Format.fprintf ppf "%s" v
  | Scalar v -> Format.fprintf ppf "%s" v
  | Load r -> pp_target ppf r.target
  | Unop (Neg, e) -> Format.fprintf ppf "(-%a)" pp_expr e
  | Unop (op, e) -> Format.fprintf ppf "%s(%a)" (unop_name op) pp_expr e
  | Binop ((Min | Max) as op, a, b) ->
      Format.fprintf ppf "%s(%a, %a)" (binop_name op) pp_expr a pp_expr b
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b

and pp_target ppf = function
  | Direct { array; index } -> Format.fprintf ppf "%s[%a]" array Affine.pp index
  | Indirect { array; index } -> Format.fprintf ppf "%s[%a]" array pp_expr index
  | Field { region = _; ptr; field } ->
      Format.fprintf ppf "%a->f%d" pp_expr ptr field

let pp_lhs ppf = function
  | Lscalar v -> Format.fprintf ppf "%s" v
  | Lmem r -> pp_target ppf r.target

let rec pp_stmt ppf stmt =
  match stmt with
  | Assign (lhs, e) -> Format.fprintf ppf "@[<h>%a = %a;@]" pp_lhs lhs pp_expr e
  | Use e -> Format.fprintf ppf "@[<h>use(%a);@]" pp_expr e
  | Barrier -> Format.fprintf ppf "barrier;"
  | Prefetch r -> Format.fprintf ppf "@[<h>prefetch(%a);@]" pp_target r.target
  | Loop l ->
      Format.fprintf ppf "@[<v 2>%sfor (%s = %a; %s < %a; %s += %d) {@,%a@]@,}"
        (if l.parallel then "parallel " else "")
        l.var Affine.pp l.lo l.var Affine.pp l.hi l.var l.step pp_body l.body
  | Chase c ->
      let bound ppf = function
        | Some k -> Format.fprintf ppf "; %a times" Affine.pp k
        | None -> ()
      in
      Format.fprintf ppf "@[<v 2>for (%s = %a; %s != null; %s = %s->f%d%a) {@,%a@]@,}"
        c.cvar pp_expr c.init c.cvar c.cvar c.cvar c.next_field bound c.count
        pp_body c.cbody
  | If (cond, t, []) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" pp_expr cond pp_body t
  | If (cond, t, e) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr
        cond pp_body t pp_body e

and pp_body ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf stmts

let pp_program ppf p =
  Format.fprintf ppf "@[<v>program %s" p.p_name;
  List.iter
    (fun a ->
      Format.fprintf ppf "@,array %s[%d] (%dB elems)" a.a_name a.length a.elem_size)
    p.arrays;
  List.iter
    (fun r ->
      Format.fprintf ppf "@,region %s: %d nodes of %dB" r.r_name r.node_count
        r.node_size)
    p.regions;
  Format.fprintf ppf "@,%a@]" pp_body p.body

let stmt_to_string s = Format.asprintf "%a" pp_stmt s
let program_to_string p = Format.asprintf "%a" pp_program p
