(** Affine integer expressions over named variables (loop indices and
    symbolic size parameters): [c0 + c1*v1 + ... + cn*vn].

    Subscripts of regular array references and loop bounds are affine, which
    is what makes locality and dependence analysis (leading references,
    self-spatial reuse, cache-line dependence distances) decidable. *)

type t

val const : int -> t
val var : string -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val neg : t -> t

val of_terms : (string * int) list -> int -> t
(** [of_terms coeffs const]; repeated variables are summed. *)

val constant : t -> int
(** The constant term. *)

val coeff : t -> string -> int
(** Coefficient of a variable, 0 if absent. *)

val vars : t -> string list
(** Variables with non-zero coefficient, sorted. *)

val is_const : t -> bool

val subst : t -> string -> t -> t
(** [subst a v b] replaces variable [v] by affine expression [b]. *)

val shift : t -> string -> int -> t
(** [shift a v k] is [subst a v (var v + const k)] — the substitution
    performed on loop bodies by unrolling. *)

val eval : (string -> int) -> t -> int
(** Evaluate under an environment. Raises whatever the environment raises
    for unbound variables. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
