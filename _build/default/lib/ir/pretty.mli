(** Human-readable, C-like rendering of IR programs — used by the examples
    to show code before and after transformation. *)

open Ast

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_program : Format.formatter -> program -> unit

val stmt_to_string : stmt -> string
val program_to_string : program -> string
