(* Core abstract syntax of the loop-nest intermediate representation.

   The IR models the loop structure, memory references and scalar dataflow
   of the kernels studied by Pai & Adve. Three reference forms cover the
   paper's taxonomy:
   - [Direct]: regular references, arrays indexed by affine functions of
     the loop indices (analyzable stride/locality);
   - [Indirect]: irregular references whose index is a computed value,
     typically loaded from another array (sparse codes — address dependence
     from the index load to this reference);
   - [Field]: loads through a pointer value (recursive data structures —
     pointer-chasing address recurrences). *)

type value =
  | Vfloat of float
  | Vint of int
  | Vptr of int  (** byte address into a region's heap, 0 = null *)

type unop = Neg | Abs | Sqrt | Trunc  (** [Trunc] coerces to [Vint] *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Min | Max
  | Lt | Le | Eq  (** comparisons yield [Vint] 0 or 1 *)

type mem_ref = { ref_id : int; target : target }

and target =
  | Direct of { array : string; index : Affine.t }
  | Indirect of { array : string; index : expr }
  | Field of { region : string; ptr : expr; field : int }

and expr =
  | Const of value
  | Ivar of string  (** value of a loop index variable, as [Vint] *)
  | Scalar of string  (** scalar (register-allocated) variable *)
  | Load of mem_ref
  | Unop of unop * expr
  | Binop of binop * expr * expr

type lhs =
  | Lscalar of string
  | Lmem of mem_ref

type stmt =
  | Assign of lhs * expr
  | Loop of loop
  | Chase of chase
  | If of expr * stmt list * stmt list
  | Use of expr  (** keeps a value live; emits no instruction *)
  | Barrier  (** global synchronization in parallel programs *)
  | Prefetch of mem_ref
      (** non-binding software prefetch: brings the line toward the cache
          without blocking retirement (extension; paper §6 interaction
          with prefetching) *)

and loop = {
  var : string;
  lo : Affine.t;
  hi : Affine.t;  (** exclusive *)
  step : int;  (** > 0 *)
  parallel : bool;  (** outermost parallel loop: iterations block-distributed *)
  body : stmt list;
}

and chase = {
  cvar : string;  (** pointer variable bound in the body *)
  init : expr;  (** initial pointer value *)
  cregion : string;
  next_field : int;  (** field holding the next pointer *)
  next_ref_id : int;
      (** static id of the implicit [p->next] load; assigned by renumbering *)
  count : Affine.t option;
      (** [Some n]: exactly n dereferences; [None]: until null *)
  cbody : stmt list;  (** executed once per chain element *)
}

(* Declarations *)

type array_decl = {
  a_name : string;
  elem_size : int;  (** bytes per element *)
  length : int;  (** elements *)
}

type region_decl = {
  r_name : string;
  node_size : int;  (** bytes per node, multiple of field slot size (8) *)
  node_count : int;
}

type program = {
  p_name : string;
  params : (string * int) list;  (** symbolic sizes usable in bounds *)
  arrays : array_decl list;
  regions : region_decl list;
  body : stmt list;
}
