open Ast

type emitter = {
  e_int : int list -> int;
  e_fp : lat:int -> int list -> int;
  e_load : ref_id:int -> addr:int -> int list -> int;
  e_store : ref_id:int -> addr:int -> int list -> int;
  e_prefetch : ref_id:int -> addr:int -> int list -> unit;
  e_branch : int list -> unit;
  e_barrier : unit -> unit;
  e_set_proc : int -> unit;
}

let null_emitter =
  {
    e_int = (fun _ -> -1);
    e_fp = (fun ~lat:_ _ -> -1);
    e_load = (fun ~ref_id:_ ~addr:_ _ -> -1);
    e_store = (fun ~ref_id:_ ~addr:_ _ -> -1);
    e_prefetch = (fun ~ref_id:_ ~addr:_ _ -> ());
    e_branch = ignore;
    e_barrier = ignore;
    e_set_proc = ignore;
  }

exception Limit_exceeded

let fp_latency = function
  | Add | Sub | Min | Max -> 3
  | Mul -> 3
  | Div | Mod -> 16
  | Lt | Le | Eq -> 1

(* Numeric coercions: the value domain is deliberately loose — synthetic
   workloads index arrays with computed data, so we coerce rather than
   fail. Division by zero yields 0 to keep synthetic inputs total. *)

let to_float = function
  | Vfloat x -> x
  | Vint i -> float_of_int i
  | Vptr a -> float_of_int a

let to_int = function
  | Vint i -> i
  | Vfloat x -> int_of_float x
  | Vptr a -> a

let is_float = function Vfloat _ -> true | Vint _ | Vptr _ -> false

let apply_unop op v =
  match op with
  | Neg -> if is_float v then Vfloat (-.to_float v) else Vint (-to_int v)
  | Abs -> if is_float v then Vfloat (Float.abs (to_float v)) else Vint (abs (to_int v))
  | Sqrt -> Vfloat (sqrt (Float.abs (to_float v)))
  | Trunc -> Vint (to_int v)

let it_cmp a b fcmp icmp =
  let r =
    if is_float a || is_float b then fcmp (to_float a) (to_float b)
    else icmp (to_int a) (to_int b)
  in
  Vint (if r then 1 else 0)

let apply_binop op a b =
  let fl f = Vfloat (f (to_float a) (to_float b)) in
  let it f = Vint (f (to_int a) (to_int b)) in
  let numeric ffun ifun = if is_float a || is_float b then fl ffun else it ifun in
  match op with
  | Add -> (
      (* pointer arithmetic stays a pointer *)
      match (a, b) with
      | Vptr p, v | v, Vptr p -> Vptr (p + to_int v)
      | _ -> numeric ( +. ) ( + ))
  | Sub -> numeric ( -. ) ( - )
  | Mul -> numeric ( *. ) ( * )
  | Div ->
      if is_float a || is_float b then
        let d = to_float b in
        Vfloat (if d = 0.0 then 0.0 else to_float a /. d)
      else
        let d = to_int b in
        Vint (if d = 0 then 0 else to_int a / d)
  | Mod ->
      if is_float a || is_float b then
        let d = to_float b in
        Vfloat (if d = 0.0 then 0.0 else Float.rem (to_float a) d)
      else
        let d = to_int b in
        Vint (if d = 0 then 0 else to_int a mod d)
  | Min -> numeric Float.min min
  | Max -> numeric Float.max max
  | Lt -> it_cmp a b ( < ) ( < )
  | Le -> it_cmp a b ( <= ) ( <= )
  | Eq -> it_cmp a b ( = ) ( = )

type state = {
  emit : emitter;
  data : Data.t;
  nprocs : int;
  max_ops : int;
  mutable ops : int;
  (* loop indices and symbolic parameters, integer-valued *)
  ivars : (string, int) Hashtbl.t;
  (* scalar variables: value and producing token *)
  scalars : (string, value * int) Hashtbl.t;
  mutable depth_parallel : int;  (* > 0 while inside a parallel loop *)
}

let tick st =
  st.ops <- st.ops + 1;
  if st.ops > st.max_ops then raise Limit_exceeded

let ivar_value st v =
  match Hashtbl.find_opt st.ivars v with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Exec: unbound index variable %s" v)

let eval_affine st a = Affine.eval (ivar_value st) a

let deps l = List.filter (fun t -> t >= 0) l

(* Evaluate an expression; returns (value, token of producing op). *)
let rec eval st e : value * int =
  match e with
  | Const v -> (v, -1)
  | Ivar v -> (Vint (ivar_value st v), -1)
  | Scalar v -> (
      match Hashtbl.find_opt st.scalars v with
      | Some (value, tok) -> (value, tok)
      | None -> invalid_arg (Printf.sprintf "Exec: unbound scalar %s" v))
  | Load r ->
      let value, _addr, tok = eval_load st r in
      (value, tok)
  | Unop (op, a) ->
      let va, ta = eval st a in
      tick st;
      let v = apply_unop op va in
      let tok =
        if is_float v || op = Sqrt then st.emit.e_fp ~lat:(if op = Sqrt then 33 else 3) (deps [ ta ])
        else st.emit.e_int (deps [ ta ])
      in
      (v, tok)
  | Binop (op, a, b) ->
      let va, ta = eval st a in
      let vb, tb = eval st b in
      tick st;
      let v = apply_binop op va vb in
      let tok =
        if is_float va || is_float vb then st.emit.e_fp ~lat:(fp_latency op) (deps [ ta; tb ])
        else st.emit.e_int (deps [ ta; tb ])
      in
      (v, tok)

(* Resolve a reference to (address, value-read, token). Also emits the
   address-generation operation where one is needed. *)
and eval_load st r =
  let addr, addr_tok, read =
    resolve st r
  in
  tick st;
  let tok = st.emit.e_load ~ref_id:r.ref_id ~addr (deps [ addr_tok ]) in
  (read (), addr, tok)

(* (address, token the address depends on, thunk reading current value) *)
and resolve st r =
  match r.target with
  | Direct { array; index } ->
      let i = eval_affine st index in
      let addr = Data.addr_of st.data array i in
      (* address generation: one integer op (induction-variable add) *)
      tick st;
      let t = st.emit.e_int [] in
      (addr, t, fun () -> Data.get st.data array i)
  | Indirect { array; index } ->
      let vi, ti = eval st index in
      let i = to_int vi in
      let addr = Data.addr_of st.data array i in
      tick st;
      let t = st.emit.e_int (deps [ ti ]) in
      (addr, t, fun () -> Data.get st.data array i)
  | Field { region; ptr; field } ->
      let vp, tp = eval st ptr in
      let p = to_int vp in
      let addr = Data.field_addr st.data region ~ptr:p ~field in
      (* register+offset addressing: no separate address op *)
      (addr, tp, fun () -> Data.field_get st.data region ~ptr:p ~field)

let rec exec_stmt st stmt =
  match stmt with
  | Assign (Lscalar v, e) ->
      let value, tok = eval st e in
      Hashtbl.replace st.scalars v (value, tok)
  | Assign (Lmem r, e) ->
      let value, vtok = eval st e in
      store_ref st r value vtok
  | Use e ->
      let _v, _t = eval st e in
      ()
  | Barrier -> st.emit.e_barrier ()
  | Prefetch r -> (
      (* compute the address and emit the hint; a prefetch through a null
         or dangling pointer is silently dropped, as hardware does *)
      match resolve st r with
      | addr, tok, _read -> st.emit.e_prefetch ~ref_id:r.ref_id ~addr (deps [ tok ])
      | exception Invalid_argument _ -> ())
  | If (cond, then_, else_) ->
      let v, t = eval st cond in
      st.emit.e_branch (deps [ t ]);
      let branch = if to_int v <> 0 then then_ else else_ in
      List.iter (exec_stmt st) branch
  | Loop l -> exec_loop st l
  | Chase c -> exec_chase st c

and store_ref st r value vtok =
  match r.target with
  | Direct { array; index } ->
      let i = eval_affine st index in
      tick st;
      let at = st.emit.e_int [] in
      let addr = Data.addr_of st.data array i in
      tick st;
      ignore (st.emit.e_store ~ref_id:r.ref_id ~addr (deps [ vtok; at ]));
      Data.set st.data array i value
  | Indirect { array; index } ->
      let vi, ti = eval st index in
      let i = to_int vi in
      tick st;
      let at = st.emit.e_int (deps [ ti ]) in
      let addr = Data.addr_of st.data array i in
      tick st;
      ignore (st.emit.e_store ~ref_id:r.ref_id ~addr (deps [ vtok; at ]));
      Data.set st.data array i value
  | Field { region; ptr; field } ->
      let vp, tp = eval st ptr in
      let p = to_int vp in
      let addr = Data.field_addr st.data region ~ptr:p ~field in
      tick st;
      ignore (st.emit.e_store ~ref_id:r.ref_id ~addr (deps [ vtok; tp ]));
      Data.field_set st.data region ~ptr:p ~field value

and exec_loop st l =
  let lo = eval_affine st l.lo and hi = eval_affine st l.hi in
  let distribute = l.parallel && st.nprocs > 1 && st.depth_parallel = 0 in
  let total = if hi > lo then (hi - lo + l.step - 1) / l.step else 0 in
  if distribute then st.depth_parallel <- st.depth_parallel + 1;
  let saved = Hashtbl.find_opt st.ivars l.var in
  let iter_num = ref 0 in
  let i = ref lo in
  while !i < hi do
    (* balanced block distribution: every processor gets ⌊total/n⌋ or
       ⌈total/n⌉ consecutive iterations *)
    if distribute && total > 0 then
      st.emit.e_set_proc (min (st.nprocs - 1) (!iter_num * st.nprocs / total));
    Hashtbl.replace st.ivars l.var !i;
    List.iter (exec_stmt st) l.body;
    (* loop overhead: induction increment + backward branch *)
    tick st;
    let t = st.emit.e_int [] in
    st.emit.e_branch [ t ];
    incr iter_num;
    i := !i + l.step
  done;
  (match saved with
  | Some v -> Hashtbl.replace st.ivars l.var v
  | None -> Hashtbl.remove st.ivars l.var);
  if distribute then begin
    st.depth_parallel <- st.depth_parallel - 1;
    st.emit.e_set_proc 0;
    st.emit.e_barrier ()
  end

and exec_chase st c =
  let v0, t0 = eval st c.init in
  let limit = Option.map (eval_affine st) c.count in
  let saved = Hashtbl.find_opt st.scalars c.cvar in
  let p = ref (to_int v0) in
  let ptok = ref t0 in
  let n = ref 0 in
  let continue () =
    !p <> 0 && match limit with Some k -> !n < k | None -> true
  in
  while continue () do
    Hashtbl.replace st.scalars c.cvar (Vptr !p, !ptok);
    List.iter (exec_stmt st) c.cbody;
    (* advance: p = p->next — a load whose address depends on p *)
    let addr = Data.field_addr st.data c.cregion ~ptr:!p ~field:c.next_field in
    tick st;
    let tok = st.emit.e_load ~ref_id:c.next_ref_id ~addr (deps [ !ptok ]) in
    let next = Data.field_get st.data c.cregion ~ptr:!p ~field:c.next_field in
    st.emit.e_branch [ tok ];
    p := to_int next;
    ptok := tok;
    incr n
  done;
  (match saved with
  | Some v -> Hashtbl.replace st.scalars c.cvar v
  | None -> Hashtbl.remove st.scalars c.cvar)

let run ?(emit = null_emitter) ?(nprocs = 1) ?(max_ops = 200_000_000) (p : program)
    data =
  let st =
    {
      emit;
      data;
      nprocs;
      max_ops;
      ops = 0;
      ivars = Hashtbl.create 16;
      scalars = Hashtbl.create 16;
      depth_parallel = 0;
    }
  in
  List.iter (fun (name, v) -> Hashtbl.replace st.ivars name v) p.params;
  List.iter (exec_stmt st) p.body
