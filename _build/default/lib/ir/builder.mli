(** Combinators for constructing IR programs concisely.

    All references are created with [ref_id = 0]; call {!Program.renumber}
    on the finished program (done automatically by {!program}) to assign
    unique ids before analysis. *)

open Ast

(** {1 Affine index expressions} *)

val ix : string -> Affine.t
(** Loop-index variable. *)

val cst : int -> Affine.t

val ( +: ) : Affine.t -> Affine.t -> Affine.t
val ( -: ) : Affine.t -> Affine.t -> Affine.t
val ( *: ) : int -> Affine.t -> Affine.t

val idx2 : cols:int -> Affine.t -> Affine.t -> Affine.t
(** [idx2 ~cols j i] is the row-major linearization [j*cols + i]. *)

val idx3 : dim2:int -> dim3:int -> Affine.t -> Affine.t -> Affine.t -> Affine.t

(** {1 Value expressions} *)

val flt : float -> expr
val num : int -> expr
val iv : string -> expr
(** Loop index as a run-time value. *)

val sc : string -> expr
(** Scalar variable read. *)

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( %% ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( <= ) : expr -> expr -> expr
val ( = ) : expr -> expr -> expr

(** {1 Memory references} *)

val aref : string -> Affine.t -> mem_ref
(** Regular (affine-indexed) reference. *)

val iref : string -> expr -> mem_ref
(** Irregular reference with a computed index. *)

val fref : string -> expr -> int -> mem_ref
(** [fref region ptr field]: load/store of a node field through a pointer. *)

val ld : mem_ref -> expr

val arr : string -> Affine.t -> expr
(** [arr a i] = [ld (aref a i)]. *)

(** {1 Statements} *)

val assign : string -> expr -> stmt
val store : mem_ref -> expr -> stmt
val incr_mem : mem_ref -> expr -> stmt
(** [incr_mem r e] is [r := r + e] (introduces a load and a store). *)

val loop : ?parallel:bool -> ?step:int -> string -> Affine.t -> Affine.t -> stmt list -> stmt
val loop_c : ?parallel:bool -> string -> int -> int -> stmt list -> stmt
(** Constant-bound convenience wrapper. *)

val chase : string -> init:expr -> region:string -> next:int -> ?count:Affine.t -> stmt list -> stmt
val if_ : expr -> stmt list -> stmt list -> stmt
val use : expr -> stmt

val prefetch : mem_ref -> stmt
(** Non-binding prefetch hint. *)

(** {1 Programs} *)

val array_decl : ?elem_size:int -> string -> int -> array_decl
val region_decl : node_size:int -> string -> int -> region_decl

val program :
  ?params:(string * int) list ->
  ?arrays:array_decl list ->
  ?regions:region_decl list ->
  string ->
  stmt list ->
  program
(** Builds and renumbers a program. *)
