open Ast

(* ------------------------------------------------------------------ *)
(* Generic rewriting                                                   *)
(* ------------------------------------------------------------------ *)

let rec map_refs_expr f e =
  match e with
  | Const _ | Ivar _ | Scalar _ -> e
  | Load r -> Load (map_ref f r)
  | Unop (op, a) -> Unop (op, map_refs_expr f a)
  | Binop (op, a, b) -> Binop (op, map_refs_expr f a, map_refs_expr f b)

and map_ref f r =
  let target =
    match r.target with
    | Direct _ -> r.target
    | Indirect { array; index } -> Indirect { array; index = map_refs_expr f index }
    | Field { region; ptr; field } -> Field { region; ptr = map_refs_expr f ptr; field }
  in
  f { r with target }

let rec map_refs f stmt =
  match stmt with
  | Assign (lhs, e) ->
      let lhs = match lhs with
        | Lscalar _ -> lhs
        | Lmem r -> Lmem (map_ref f r)
      in
      Assign (lhs, map_refs_expr f e)
  | Loop l -> Loop { l with body = List.map (map_refs f) l.body }
  | Chase c ->
      Chase
        { c with
          init = map_refs_expr f c.init;
          cbody = List.map (map_refs f) c.cbody;
        }
  | If (cond, t, e) ->
      If (map_refs_expr f cond, List.map (map_refs f) t, List.map (map_refs f) e)
  | Use e -> Use (map_refs_expr f e)
  | Barrier -> Barrier
  | Prefetch r -> Prefetch (map_ref f r)

let rec map_stmt f stmt =
  let stmt =
    match stmt with
    | Loop l -> Loop { l with body = List.map (map_stmt f) l.body }
    | Chase c -> Chase { c with cbody = List.map (map_stmt f) c.cbody }
    | If (cond, t, e) -> If (cond, List.map (map_stmt f) t, List.map (map_stmt f) e)
    | Assign _ | Use _ | Barrier | Prefetch _ -> stmt
  in
  f stmt

let map_stmts f p = { p with body = List.map (map_stmt f) p.body }

let rec iter_exprs_in_stmt f stmt =
  match stmt with
  | Assign (_, e) -> f e
  | Loop l -> List.iter (iter_exprs_in_stmt f) l.body
  | Chase c ->
      f c.init;
      List.iter (iter_exprs_in_stmt f) c.cbody
  | If (cond, t, e) ->
      f cond;
      List.iter (iter_exprs_in_stmt f) t;
      List.iter (iter_exprs_in_stmt f) e
  | Use e -> f e
  | Barrier -> ()
  | Prefetch _ -> () (* hint only: its subexpressions carry no dataflow *)

(* ------------------------------------------------------------------ *)
(* Renumbering                                                         *)
(* ------------------------------------------------------------------ *)

let renumber p =
  let counter = ref 0 in
  let fresh r =
    incr counter;
    { r with ref_id = !counter }
  in
  let fresh_chase stmt =
    match stmt with
    | Chase c ->
        incr counter;
        Chase { c with next_ref_id = !counter }
    | _ -> stmt
  in
  { p with body = List.map (fun s -> map_stmt fresh_chase (map_refs fresh s)) p.body }

let max_ref_id p =
  let best = ref 0 in
  let note r =
    if r.ref_id > !best then best := r.ref_id;
    r
  in
  let note_chase stmt =
    (match stmt with
    | Chase c -> if c.next_ref_id > !best then best := c.next_ref_id
    | _ -> ());
    stmt
  in
  ignore (List.map (fun s -> map_stmt note_chase (map_refs note s)) p.body);
  !best

let chases p =
  let acc = ref [] in
  let note stmt =
    (match stmt with Chase c -> acc := c :: !acc | _ -> ());
    stmt
  in
  ignore (List.map (map_stmt note) p.body);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Reference inventory                                                 *)
(* ------------------------------------------------------------------ *)

type ref_info = {
  ref_ : mem_ref;
  is_store : bool;
  loop_path : loop list;
  chase_path : chase list;
}

let refs_in_stmts stmts =
  let acc = ref [] in
  let note ~loops ~chases ~is_store r =
    acc :=
      { ref_ = r; is_store; loop_path = List.rev loops; chase_path = List.rev chases }
      :: !acc
  in
  let rec walk_expr ~loops ~chases e =
    match e with
    | Const _ | Ivar _ | Scalar _ -> ()
    | Load r -> walk_ref ~loops ~chases ~is_store:false r
    | Unop (_, a) -> walk_expr ~loops ~chases a
    | Binop (_, a, b) ->
        walk_expr ~loops ~chases a;
        walk_expr ~loops ~chases b
  and walk_ref ~loops ~chases ~is_store r =
    (match r.target with
    | Direct _ -> ()
    | Indirect { index; _ } -> walk_expr ~loops ~chases index
    | Field { ptr; _ } -> walk_expr ~loops ~chases ptr);
    note ~loops ~chases ~is_store r
  and walk_stmt ~loops ~chases stmt =
    match stmt with
    | Assign (lhs, e) ->
        walk_expr ~loops ~chases e;
        (match lhs with
        | Lscalar _ -> ()
        | Lmem r -> walk_ref ~loops ~chases ~is_store:true r)
    | Loop l -> List.iter (walk_stmt ~loops:(l :: loops) ~chases) l.body
    | Chase c ->
        walk_expr ~loops ~chases c.init;
        List.iter (walk_stmt ~loops ~chases:(c :: chases)) c.cbody
    | If (cond, t, e) ->
        walk_expr ~loops ~chases cond;
        List.iter (walk_stmt ~loops ~chases) t;
        List.iter (walk_stmt ~loops ~chases) e
    | Use e -> walk_expr ~loops ~chases e
    | Barrier -> ()
    | Prefetch r ->
        (* a prefetch is a hint, not an access: it is not part of the
           reference inventory the analyses classify *)
        (match r.target with
        | Direct _ -> ()
        | Indirect { index; _ } -> walk_expr ~loops ~chases index
        | Field { ptr; _ } -> walk_expr ~loops ~chases ptr)
  in
  List.iter (walk_stmt ~loops:[] ~chases:[]) stmts;
  List.rev !acc

let refs p = refs_in_stmts p.body

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let find_array p name =
  match List.find_opt (fun a -> String.equal a.a_name name) p.arrays with
  | Some a -> a
  | None -> raise Not_found

let find_region p name =
  match List.find_opt (fun r -> String.equal r.r_name name) p.regions with
  | Some r -> r
  | None -> raise Not_found

let array_exists p name = List.exists (fun a -> String.equal a.a_name name) p.arrays

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate p =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  let fail fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt in
  try
    List.iter
      (fun a ->
        if a.length <= 0 then fail "array %s has non-positive length" a.a_name;
        if a.elem_size <= 0 then fail "array %s has non-positive elem_size" a.a_name)
      p.arrays;
    List.iter
      (fun r ->
        if r.node_count <= 0 then fail "region %s has non-positive node count" r.r_name;
        if r.node_size <= 0 || r.node_size mod 8 <> 0 then
          fail "region %s: node_size must be a positive multiple of 8" r.r_name)
      p.regions;
    let seen_ids = Hashtbl.create 64 in
    List.iter
      (fun info ->
        let id = info.ref_.ref_id in
        if id <= 0 then fail "reference with unassigned id (renumber the program)";
        if Hashtbl.mem seen_ids id then fail "duplicate ref id %d" id;
        Hashtbl.add seen_ids id ();
        (match info.ref_.target with
        | Direct { array; _ } | Indirect { array; _ } ->
            if not (array_exists p array) then fail "undeclared array %s" array
        | Field { region; field; _ } -> (
            match List.find_opt (fun r -> String.equal r.r_name region) p.regions with
            | None -> fail "undeclared region %s" region
            | Some r ->
                if field < 0 || (field * 8) + 8 > r.node_size then
                  fail "region %s: field %d outside node" region field));
        let vars = List.map (fun (l : Ast.loop) -> l.var) info.loop_path in
        let sorted = List.sort_uniq String.compare vars in
        if List.length sorted <> List.length vars then
          fail "duplicate loop variable along a nesting path: %s"
            (String.concat "," vars);
        List.iter
          (fun (l : Ast.loop) ->
            if l.step <= 0 then fail "loop %s has non-positive step" l.var)
          info.loop_path)
      (refs p);
    Ok ()
  with Bad msg -> err "%s: %s" p.p_name msg

let scalars_written stmts =
  let acc = ref [] in
  let rec walk stmt =
    match stmt with
    | Assign (Lscalar v, _) -> if not (List.mem v !acc) then acc := v :: !acc
    | Assign (Lmem _, _) | Use _ | Barrier | Prefetch _ -> ()
    | Loop l -> List.iter walk l.body
    | Chase c -> List.iter walk c.cbody
    | If (_, t, e) ->
        List.iter walk t;
        List.iter walk e
  in
  List.iter walk stmts;
  List.rev !acc
