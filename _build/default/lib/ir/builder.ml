open Ast

let ix = Affine.var
let cst = Affine.const
let ( +: ) = Affine.add
let ( -: ) = Affine.sub
let ( *: ) = Affine.scale

let idx2 ~cols j i = Affine.add (Affine.scale cols j) i

let idx3 ~dim2 ~dim3 k j i =
  Affine.add (Affine.scale (dim2 * dim3) k) (Affine.add (Affine.scale dim3 j) i)

let flt x = Const (Vfloat x)
let num x = Const (Vint x)
let iv v = Ivar v
let sc v = Scalar v

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( %% ) a b = Binop (Mod, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( <= ) a b = Binop (Le, a, b)
let ( = ) a b = Binop (Eq, a, b)

let aref array index = { ref_id = 0; target = Direct { array; index } }
let iref array index = { ref_id = 0; target = Indirect { array; index } }
let fref region ptr field = { ref_id = 0; target = Field { region; ptr; field } }

let ld r = Load r
let arr a i = ld (aref a i)

let assign v e = Assign (Lscalar v, e)
let store r e = Assign (Lmem r, e)

let incr_mem r e =
  (* the load and store are distinct static references; clone the ref *)
  let load_ref = { r with ref_id = 0 } in
  Assign (Lmem r, Binop (Add, Load load_ref, e))

let loop ?(parallel = false) ?(step = 1) var lo hi body =
  Loop { var; lo; hi; step; parallel; body }

let loop_c ?parallel var lo hi body = loop ?parallel var (cst lo) (cst hi) body

let chase cvar ~init ~region ~next ?count cbody =
  Chase
    { cvar; init; cregion = region; next_field = next; next_ref_id = 0; count; cbody }

let if_ cond then_ else_ = If (cond, then_, else_)
let use e = Use e
let prefetch r = Prefetch r

let array_decl ?(elem_size = 8) a_name length = { a_name; elem_size; length }
let region_decl ~node_size r_name node_count = { r_name; node_size; node_count }

let program ?(params = []) ?(arrays = []) ?(regions = []) p_name body =
  Program.renumber { p_name; params; arrays; regions; body }
