(** Static estimate of the dynamic instruction count of one iteration of a
    loop body, mirroring the executor's emission rules. Used for the
    paper's dynamic-window-unrolling term ⌈W / (i·L_m)⌉ (Equation 1) and
    for window-constraint checks. *)

open Ast

val expr_ops : expr -> int
(** Operations emitted to evaluate the expression (arithmetic nodes,
    address generation and the loads themselves). *)

val stmt_ops : stmt -> int
(** Operations for one execution of the statement. [If] averages the two
    branches; nested [Loop]/[Chase] statements count bound × body (constant
    bounds only; symbolic bounds use a nominal trip count of 8). *)

val body_ops : stmt list -> int
(** Per-iteration size of a loop body, including the iteration's own
    induction-variable update and branch (+2). *)
