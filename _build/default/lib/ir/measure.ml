open Ast

let nominal_trip = 8

let rec expr_ops = function
  | Const _ | Ivar _ | Scalar _ -> 0
  | Load r -> ref_ops r + 1
  | Unop (_, a) -> expr_ops a + 1
  | Binop (_, a, b) -> expr_ops a + expr_ops b + 1

and ref_ops r =
  match r.target with
  | Direct _ -> 1 (* address generation *)
  | Indirect { index; _ } -> expr_ops index + 1
  | Field { ptr; _ } -> expr_ops ptr (* register+offset addressing *)

let rec stmt_ops = function
  | Assign (Lscalar _, e) -> expr_ops e
  | Assign (Lmem r, e) -> expr_ops e + ref_ops r + 1
  | Prefetch r -> ref_ops r + 1
  | Use e -> expr_ops e
  | Barrier -> 0
  | If (cond, t, e) ->
      let t_ops = List.fold_left (fun acc s -> acc + stmt_ops s) 0 t in
      let e_ops = List.fold_left (fun acc s -> acc + stmt_ops s) 0 e in
      expr_ops cond + 1 + ((t_ops + e_ops) / 2)
  | Loop l ->
      let trip =
        if Affine.is_const l.lo && Affine.is_const l.hi then
          max 0 ((Affine.constant l.hi - Affine.constant l.lo + l.step - 1) / l.step)
        else nominal_trip
      in
      trip * body_ops l.body
  | Chase c ->
      let trip =
        match c.count with
        | Some k when Affine.is_const k -> Affine.constant k
        | Some _ | None -> nominal_trip
      in
      expr_ops c.init + (trip * (body_ops c.cbody + 1))

and body_ops stmts = List.fold_left (fun acc s -> acc + stmt_ops s) 0 stmts + 2
