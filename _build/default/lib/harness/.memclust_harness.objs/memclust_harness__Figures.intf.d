lib/harness/figures.mli:
