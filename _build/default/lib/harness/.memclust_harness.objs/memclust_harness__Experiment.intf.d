lib/harness/experiment.mli: Ast Config Driver Machine Machine_model Memclust_cluster Memclust_ir Memclust_sim Memclust_workloads Workload
