open Memclust_ir
open Memclust_cluster
open Memclust_codegen
open Memclust_sim
open Memclust_workloads

type version = Base | Clustered | Prefetched | Clustered_prefetched

type spec = {
  workload : Workload.t;
  config : Config.t;
  nprocs : int;
  version : version;
}

type outcome = {
  spec : spec;
  result : Machine.result;
  cluster_report : Driver.report option;
  program : Ast.program;
}

let machine_of_config (cfg : Config.t) =
  {
    Machine_model.window = cfg.Config.window;
    mshrs = cfg.Config.mshrs;
    line_size = cfg.Config.line;
    max_unroll = 16;
    max_procs = 16;
  }

(* Clustering is deterministic: memoize per (workload, config) so the
   multiprocessor and uniprocessor runs share one transformation. *)
let cache : (string, Ast.program * Driver.report) Hashtbl.t = Hashtbl.create 16

let transform (cfg : Config.t) (w : Workload.t) =
  let key = w.Workload.name ^ "@" ^ cfg.Config.name in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
      let machine =
        { (machine_of_config cfg) with
          Machine_model.max_procs = max 1 w.Workload.mp_procs
        }
      in
      let options = { Driver.default_options with machine } in
      let r = Driver.run ~options ~init:w.Workload.init w.Workload.program in
      Hashtbl.replace cache key r;
      r

let scaled_config (cfg : Config.t) (w : Workload.t) =
  match cfg.Config.l2_bytes with
  | None -> cfg
  | Some _ -> Config.with_l2 w.Workload.l2_bytes cfg

let execute spec =
  let cfg = scaled_config spec.config spec.workload in
  let program, cluster_report =
    match spec.version with
    | Base -> (Program.renumber spec.workload.Workload.program, None)
    | Clustered ->
        let p, r = transform cfg spec.workload in
        (p, Some r)
    | Prefetched ->
        let p, _ =
          Memclust_transform.Prefetch_pass.insert
            ~latency:cfg.Config.mem_lat ~issue_width:cfg.Config.issue_width
            ~line_size:cfg.Config.line
            (Program.renumber spec.workload.Workload.program)
        in
        (p, None)
    | Clustered_prefetched ->
        let p, r = transform cfg spec.workload in
        let p, _ =
          Memclust_transform.Prefetch_pass.insert
            ~latency:cfg.Config.mem_lat ~issue_width:cfg.Config.issue_width
            ~line_size:cfg.Config.line p
        in
        (p, Some r)
  in
  let data = Data.create program in
  spec.workload.Workload.init data;
  let lowered = Lower.build ~nprocs:spec.nprocs program data in
  let home = Data.home_of_addr data ~nprocs:spec.nprocs in
  let result = Machine.run cfg ~home lowered in
  { spec; result; cluster_report; program }

let outcome_cache : (string, outcome) Hashtbl.t = Hashtbl.create 64

let execute_cached spec =
  let key =
    Printf.sprintf "%s|%s|%d|%s" spec.workload.Workload.name
      spec.config.Config.name spec.nprocs
      (match spec.version with
      | Base -> "base"
      | Clustered -> "clust"
      | Prefetched -> "pf"
      | Clustered_prefetched -> "clust+pf")
  in
  match Hashtbl.find_opt outcome_cache key with
  | Some o -> o
  | None ->
      Printf.eprintf "[run] %s...\n%!" key;
      let o = execute spec in
      Hashtbl.replace outcome_cache key o;
      o

let exec_cycles o = o.result.Machine.cycles

let data_stall o = o.result.Machine.breakdown.Breakdown.data_stall
