lib/util/pqueue.mli:
