lib/util/plot.ml: Array Buffer Float List String
