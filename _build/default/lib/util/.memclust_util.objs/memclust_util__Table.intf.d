lib/util/table.mli:
