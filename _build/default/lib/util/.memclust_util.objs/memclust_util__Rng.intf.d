lib/util/rng.mli:
