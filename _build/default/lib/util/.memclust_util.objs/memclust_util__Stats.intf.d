lib/util/stats.mli:
