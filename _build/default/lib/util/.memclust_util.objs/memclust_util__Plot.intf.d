lib/util/plot.mli:
