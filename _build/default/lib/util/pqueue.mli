(** Mutable binary min-heap keyed by integer priority. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> int -> 'a -> unit
(** [push q prio v] inserts [v] with priority [prio]; smallest pops first.
    Ties pop in insertion order. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum element, or [None] when empty. *)

val peek : 'a t -> (int * 'a) option
