type align = Left | Right

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else begin
    let fill = String.make (width - len) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?aligns ~header rows =
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows
  in
  let get l i = match List.nth_opt l i with Some v -> v | None -> "" in
  let widths =
    Array.init ncols (fun i ->
        List.fold_left
          (fun acc r -> max acc (String.length (get r i)))
          (String.length (get header i))
          rows)
  in
  let align_of i =
    match aligns with
    | Some l -> (match List.nth_opt l i with Some a -> a | None -> Right)
    | None -> if i = 0 then Left else Right
  in
  let line cells =
    let parts = List.init ncols (fun i -> pad (align_of i) widths.(i) (get cells i)) in
    String.concat "  " parts
  in
  let rule =
    String.concat "  " (List.init ncols (fun i -> String.make widths.(i) '-'))
  in
  let body = List.map line rows in
  String.concat "\n" (line header :: rule :: body)

let print ?aligns ~header rows =
  print_endline (render ?aligns ~header rows)

let fmt_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let fmt_pct ?(decimals = 1) v = Printf.sprintf "%.*f%%" decimals (v *. 100.0)
