let bar ~width v =
  let v = if v < 0.0 then 0.0 else if v > 1.0 then 1.0 else v in
  let n = int_of_float (Float.round (v *. float_of_int width)) in
  String.make n '#'

let stacked_bar ~width ~segments =
  let buf = Buffer.create width in
  let used = ref 0 in
  List.iter
    (fun (c, frac) ->
      let n = int_of_float (Float.round (frac *. float_of_int width)) in
      let n = min n (width - !used) in
      if n > 0 then begin
        Buffer.add_string buf (String.make n c);
        used := !used + n
      end)
    segments;
  Buffer.contents buf

let glyphs = [| '*'; 'o'; '+'; 'x'; '@'; '%' |]

let series ?(height = 12) ?(width = 40) ~labels yss =
  let grid = Array.make_matrix height width ' ' in
  List.iteri
    (fun si ys ->
      let g = glyphs.(si mod Array.length glyphs) in
      let n = Array.length ys in
      if n > 0 then
        for x = 0 to width - 1 do
          let idx = if n = 1 then 0 else x * (n - 1) / (width - 1) in
          let y = ys.(idx) in
          let y = if y < 0.0 then 0.0 else if y > 1.0 then 1.0 else y in
          let row = height - 1 - int_of_float (Float.round (y *. float_of_int (height - 1))) in
          if grid.(row).(x) = ' ' then grid.(row).(x) <- g
        done)
    yss;
  let buf = Buffer.create (height * (width + 8)) in
  Array.iteri
    (fun i row ->
      let ylab =
        if i = 0 then "1.0 |"
        else if i = height - 1 then "0.0 |"
        else "    |"
      in
      Buffer.add_string buf ylab;
      Buffer.add_string buf (String.init width (fun j -> row.(j)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf ("    +" ^ String.make width '-' ^ "\n");
  Buffer.add_string buf "    legend: ";
  List.iteri
    (fun si l ->
      if si > 0 then Buffer.add_string buf ", ";
      Buffer.add_char buf glyphs.(si mod Array.length glyphs);
      Buffer.add_char buf '=';
      Buffer.add_string buf l)
    labels;
  Buffer.contents buf
