(** Minimal ASCII plotting: stacked bars for Figure 3 and line series for
    Figure 4 style output. *)

val bar : width:int -> float -> string
(** [bar ~width v] with [v] in [0,1] renders a proportional bar of '#'. *)

val stacked_bar :
  width:int -> segments:(char * float) list -> string
(** [stacked_bar ~width ~segments] renders segments (label char, fraction)
    scaled so that a total of 1.0 fills [width] characters. Fractions above
    1.0 are clipped at the right edge. *)

val series :
  ?height:int -> ?width:int -> labels:string list -> float array list -> string
(** [series ~labels yss] plots the given Y series (all in [0,1], X = index)
    as a char grid, one glyph per series, with a legend line. *)
