lib/depgraph/scc.mli:
