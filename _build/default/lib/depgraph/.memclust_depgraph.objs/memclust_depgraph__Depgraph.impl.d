lib/depgraph/depgraph.ml: Ast Buffer Float Format Hashtbl Int List Locality Memclust_ir Memclust_locality Option Printf Scc String
