lib/depgraph/scc.ml: Hashtbl List
