lib/depgraph/depgraph.mli: Ast Format Locality Memclust_ir Memclust_locality
