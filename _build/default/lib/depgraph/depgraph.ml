open Memclust_ir
open Memclust_locality
open Ast

type dep_class = Cache_line | Address

type edge = { src : int; dst : int; cls : dep_class; distance : int }

type recurrence = {
  rec_nodes : int list;
  rec_class : dep_class;
  r_count : int;
  iota : int;
  alpha : float;
}

type inner = Counted of Ast.loop | Chased of Ast.chase

type t = {
  edges : edge list;
  recurrences : recurrence list;
  has_address_recurrence : bool;
}

let max_dist = 9

(* --------------------------------------------------------------- *)
(* Scalar dataflow: which loads feed each scalar's current value    *)
(* --------------------------------------------------------------- *)

(* dependence sets: (ref_id, inner-loop distance), deduplicated by id
   keeping the minimum distance *)
let merge a b =
  List.fold_left
    (fun acc (id, d) ->
      match List.assoc_opt id acc with
      | Some d' when d' <= d -> acc
      | _ -> (id, d) :: List.remove_assoc id acc)
    a b

let shift k set = List.map (fun (id, d) -> (id, min max_dist (d + k))) set

type walker = {
  loc : Locality.t;
  mutable scalars : (string * (int * int) list) list;  (* current defs *)
  carried : (string, (int * int) list) Hashtbl.t;  (* end-of-iteration defs *)
  mutable edges : edge list;
  mutable in_scope : int list;  (* ref ids seen in this body *)
  emit : bool;
}

let scalar_deps w v =
  match List.assoc_opt v w.scalars with
  | Some set -> set
  | None -> (
      (* not yet defined this iteration: value carried from the previous
         iteration (or loop-invariant from outside — then it has no deps
         recorded and we correctly return []) *)
      match Hashtbl.find_opt w.carried v with
      | Some set -> shift 1 set
      | None -> [])

let add_edge w ~src ~dst ~cls ~distance =
  if w.emit then w.edges <- { src; dst; cls; distance } :: w.edges

let note_ref w id = if not (List.mem id w.in_scope) then w.in_scope <- id :: w.in_scope

let rec expr_deps w e =
  match e with
  | Const _ | Ivar _ -> []
  | Scalar v -> scalar_deps w v
  | Load r ->
      visit_ref w r;
      [ (r.ref_id, 0) ]
  | Unop (_, a) -> expr_deps w a
  | Binop (_, a, b) -> merge (expr_deps w a) (expr_deps w b)

and visit_ref w r =
  note_ref w r.ref_id;
  let addr_deps =
    match r.target with
    | Direct _ -> []
    | Indirect { index; _ } -> expr_deps w index
    | Field { ptr; _ } -> expr_deps w ptr
  in
  List.iter
    (fun (src, distance) ->
      if src <> r.ref_id || distance > 0 then
        add_edge w ~src ~dst:r.ref_id ~cls:Address ~distance)
    addr_deps

let rec walk_stmt w stmt =
  match stmt with
  | Assign (Lscalar v, e) ->
      let deps = expr_deps w e in
      w.scalars <- (v, deps) :: List.remove_assoc v w.scalars
  | Assign (Lmem r, e) ->
      ignore (expr_deps w e);
      visit_ref w r
  | Use e -> ignore (expr_deps w e)
  | Barrier -> ()
  | If (cond, then_, else_) ->
      ignore (expr_deps w cond);
      let saved = w.scalars in
      List.iter (walk_stmt w) then_;
      let after_then = w.scalars in
      w.scalars <- saved;
      List.iter (walk_stmt w) else_;
      let after_else = w.scalars in
      (* conservative union of both branches *)
      let keys =
        List.sort_uniq String.compare (List.map fst after_then @ List.map fst after_else)
      in
      w.scalars <-
        List.map
          (fun k ->
            let a = Option.value ~default:[] (List.assoc_opt k after_then) in
            let b = Option.value ~default:[] (List.assoc_opt k after_else) in
            (k, merge a b))
          keys
  | Prefetch _ -> () (* hints neither produce values nor serialize misses *)
  | Loop _ | Chase _ ->
      (* nested loop-like constructs are analyzed on their own *)
      ()

(* --------------------------------------------------------------- *)
(* Graph construction                                               *)
(* --------------------------------------------------------------- *)

let run_pass loc inner carried ~emit =
  let w = { loc; scalars = []; carried; edges = []; in_scope = []; emit } in
  (match inner with
  | Counted l -> List.iter (walk_stmt w) l.body
  | Chased c ->
      note_ref w c.next_ref_id;
      w.scalars <- [ (c.cvar, [ (c.next_ref_id, 1) ]) ];
      List.iter (walk_stmt w) c.cbody;
      (* implicit p = p->next at the end of the iteration *)
      let deps = scalar_deps w c.cvar in
      List.iter
        (fun (src, distance) ->
          if src <> c.next_ref_id || distance > 0 then
            add_edge w ~src ~dst:c.next_ref_id ~cls:Address ~distance)
        deps);
  w

let analyze loc inner =
  (* fixpoint on carried scalar definitions (bounded; distances saturate) *)
  let carried = Hashtbl.create 8 in
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters < 5 do
    incr iters;
    changed := false;
    let w = run_pass loc inner carried ~emit:false in
    List.iter
      (fun (v, set) ->
        let old = Option.value ~default:[] (Hashtbl.find_opt carried v) in
        let merged = merge old set in
        if List.length merged <> List.length old then begin
          Hashtbl.replace carried v merged;
          changed := true
        end)
      w.scalars
  done;
  let w = run_pass loc inner carried ~emit:true in
  (* cache-line edges from the locality classification *)
  let scope = w.in_scope in
  let in_scope id = List.mem id scope in
  let edges = ref w.edges in
  List.iter
    (fun id ->
      match Locality.info loc id with
      | exception Not_found -> ()
      | info -> (
          match info.Locality.kind with
          | Locality.Leading_regular { self_spatial = true; _ } ->
              edges := { src = id; dst = id; cls = Cache_line; distance = 1 } :: !edges
          | Locality.Leading_regular _ | Locality.Leading_irregular
          | Locality.Inner_invariant ->
              ()
          | Locality.Follower { leader; distance } ->
              if in_scope leader then
                edges :=
                  { src = leader; dst = id; cls = Cache_line; distance } :: !edges))
    scope;
  (* dedup (src, dst, cls) keeping minimum distance *)
  let table = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let key = (e.src, e.dst, e.cls) in
      match Hashtbl.find_opt table key with
      | Some d when d <= e.distance -> ()
      | _ -> Hashtbl.replace table key e.distance)
    !edges;
  let edges =
    Hashtbl.fold (fun (src, dst, cls) distance acc -> { src; dst; cls; distance } :: acc)
      table []
  in
  (* ---- recurrence detection on the leader-collapsed graph ---- *)
  let rec canon id =
    match Locality.info loc id with
    | exception Not_found -> Some id
    | info -> (
        match info.Locality.kind with
        | Locality.Follower { leader; _ } -> canon leader
        | Locality.Inner_invariant -> None  (* cannot carry a miss recurrence *)
        | Locality.Leading_regular _ | Locality.Leading_irregular -> Some id)
  in
  let cedges =
    List.filter_map
      (fun e ->
        match (canon e.src, canon e.dst) with
        | Some s, Some d ->
            if e.cls = Cache_line && s = d && e.src <> e.dst then None
              (* artifact of collapsing a follower into its leader *)
            else Some { e with src = s; dst = d }
        | _ -> None)
      edges
  in
  let nodes = List.sort_uniq Int.compare
      (List.concat_map (fun e -> [ e.src; e.dst ]) cedges)
  in
  let succ v =
    List.filter_map (fun e -> if e.src = v then Some e.dst else None) cedges
  in
  let sccs = Scc.compute ~nodes ~succ in
  let is_leading id =
    match Locality.info loc id with
    | exception Not_found -> false
    | info -> (
        match info.Locality.kind with
        | Locality.Leading_regular _ | Locality.Leading_irregular -> true
        | Locality.Follower _ | Locality.Inner_invariant -> false)
  in
  let recurrences =
    List.filter_map
      (fun comp ->
        let internal =
          List.filter (fun e -> List.mem e.src comp && List.mem e.dst comp) cedges
        in
        if internal = [] then None
        else begin
          (* enumerate simple cycles inside the component (it is tiny) and
             take the critical one: max leading-refs-per-iteration *)
          let best = ref None in
          let consider cycle_nodes dist =
            let r = List.length (List.filter is_leading cycle_nodes) in
            if r > 0 then begin
              let iota = max 1 dist in
              let a = float_of_int r /. float_of_int iota in
              match !best with
              | Some (_, _, a') when a' >= a -> ()
              | _ -> best := Some (r, iota, a)
            end
          in
          let budget = ref 2000 in
          let rec dfs start path dist v =
            if !budget > 0 then
              List.iter
                (fun e ->
                  if e.src = v then begin
                    decr budget;
                    if e.dst = start then consider (v :: path) (dist + e.distance)
                    else if (not (List.mem e.dst path)) && e.dst > start then
                      dfs start (v :: path) (dist + e.distance) e.dst
                  end)
                internal
          in
          List.iter (fun s -> dfs s [] 0 s) comp;
          match !best with
          | None -> None
          | Some (r_count, iota, alpha) ->
              let rec_class =
                if List.exists (fun e -> e.cls = Address) internal then Address
                else Cache_line
              in
              Some { rec_nodes = comp; rec_class; r_count; iota; alpha }
        end)
      sccs
  in
  {
    edges;
    recurrences;
    has_address_recurrence =
      List.exists (fun r -> r.rec_class = Address) recurrences;
  }

let alpha (t : t) = List.fold_left (fun acc r -> Float.max acc r.alpha) 0.0 t.recurrences

let pp ppf (t : t) =
  Format.fprintf ppf "@[<v>edges:";
  List.iter
    (fun e ->
      Format.fprintf ppf "@,  #%d -> #%d  %s dist %d" e.src e.dst
        (match e.cls with Cache_line -> "cache-line" | Address -> "address")
        e.distance)
    (List.sort compare t.edges);
  Format.fprintf ppf "@,recurrences:";
  List.iter
    (fun r ->
      Format.fprintf ppf "@,  {%s} %s R=%d iota=%d alpha=%.2f"
        (String.concat "," (List.map string_of_int r.rec_nodes))
        (match r.rec_class with Cache_line -> "cache-line" | Address -> "address")
        r.r_count r.iota r.alpha)
    t.recurrences;
  Format.fprintf ppf "@]"

let to_dot ?(name = "depgraph") loc (t : t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  let nodes =
    List.sort_uniq Int.compare
      (List.concat_map (fun e -> [ e.src; e.dst ]) t.edges)
  in
  List.iter
    (fun id ->
      let label =
        match Locality.info loc id with
        | exception Not_found -> Printf.sprintf "#%d" id
        | info -> (
            let where =
              match info.Locality.array with Some a -> a | None -> "heap"
            in
            match info.Locality.kind with
            | Locality.Leading_regular { lm; _ } ->
                Printf.sprintf "#%d %s (leading, Lm=%d)" id where lm
            | Locality.Leading_irregular ->
                Printf.sprintf "#%d %s (leading, irregular)" id where
            | Locality.Follower { leader; _ } ->
                Printf.sprintf "#%d %s (follows #%d)" id where leader
            | Locality.Inner_invariant -> Printf.sprintf "#%d %s (invariant)" id where)
      in
      Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" id label))
    nodes;
  List.iter
    (fun e ->
      let style = match e.cls with Address -> "solid" | Cache_line -> "dotted" in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [style=%s,label=\"%d\"];\n" e.src e.dst style
           e.distance))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
