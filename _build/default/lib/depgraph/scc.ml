let compute ~nodes ~succ =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succ v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  List.rev !components

let is_trivial comp ~self_edge =
  match comp with [ v ] -> not (self_edge v) | _ -> false
