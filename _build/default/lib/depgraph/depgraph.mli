(** Memory-parallelism dependence graph of an innermost loop (paper §3.1).

    Nodes are static memory references ([ref_id]s). Edges:

    - {e cache-line dependences}: a miss on the source brings in the data
      of the destination (self edge of distance 1 for self-spatial leading
      references; leader → follower edges for group reuse);
    - {e address dependences}: the value loaded by the source is used to
      compute the address of the destination (indirect indexing, pointer
      chasing), with the inner-loop dependence distance.

    Recurrences are cycles; each limits miss parallelism to α = R/ι misses
    per iteration, where R counts the leading references serialized by the
    cycle and ι is the cycle's total distance (§3.2). For recurrence
    detection, followers are collapsed into their group leader — a miss
    serialized by a follower's address (pointer-chase [next] on the same
    line as the data fields) serializes the leader's miss. *)

open Memclust_ir
open Memclust_locality

type dep_class = Cache_line | Address

type edge = { src : int; dst : int; cls : dep_class; distance : int }

type recurrence = {
  rec_nodes : int list;  (** canonical (leader) ref ids in the SCC *)
  rec_class : dep_class;  (** [Address] if any edge is an address dep *)
  r_count : int;  (** leading references on the critical cycle *)
  iota : int;  (** total distance of the critical cycle, >= 1 *)
  alpha : float;  (** r_count /. iota *)
}

(** The innermost loop-like construct under analysis. *)
type inner = Counted of Ast.loop | Chased of Ast.chase

type t = {
  edges : edge list;  (** raw edges (followers not collapsed) *)
  recurrences : recurrence list;  (** only recurrences with r_count > 0 *)
  has_address_recurrence : bool;
}

val analyze : Locality.t -> inner -> t
(** Build the graph for the given innermost loop. Nested counted loops or
    chases inside the body are skipped (their references belong to their
    own innermost analysis). *)

val alpha : t -> float
(** max over recurrences of α; 0.0 when the loop has no recurrence. *)

val pp : Format.formatter -> t -> unit

val to_dot : ?name:string -> Locality.t -> t -> string
(** Graphviz rendering of the dependence graph: solid edges are address
    dependences, dotted edges cache-line dependences (the paper's drawing
    convention); nodes are labeled with their locality class. *)
