(** Tarjan's strongly-connected-components algorithm over small integer
    graphs (nodes are arbitrary ints, adjacency given as a function). *)

val compute : nodes:int list -> succ:(int -> int list) -> int list list
(** Strongly connected components in reverse topological order. Singleton
    components are included even without a self-edge; the caller decides
    whether they form a cycle. *)

val is_trivial : int list -> self_edge:(int -> bool) -> bool
(** A component is trivial (not a recurrence) when it has one node and no
    self edge. *)
