(** Machine model parameters consumed by the clustering framework — the
    handful of numbers the paper's analysis needs (not the full simulator
    configuration). *)

type t = {
  window : int;  (** W: out-of-order instruction window size *)
  mshrs : int;  (** lp: maximum simultaneous outstanding misses *)
  line_size : int;  (** external cache line size, bytes *)
  max_unroll : int;  (** U: cap on unroll-and-jam degree (code expansion,
                         register pressure, conflict-miss risk) *)
  max_procs : int;
      (** when the unroll target is the loop whose iterations are
          distributed across processors, keep at least this many chunks —
          unrolling must not consume the parallel dimension *)
}

val base : t
(** The paper's base simulated processor: W=64, 10 MSHRs, 64 B lines. *)

val exemplar_like : t
(** HP PA-8000-like: W=56, 10 outstanding misses, 32 B lines. *)

val pp : Format.formatter -> t -> unit
