(** The paper's memory-parallelism candidate count f (Equations 1–4).

    [f] estimates how many overlapped misses to separate cache lines one
    "window's worth" of the innermost loop can sustain:

    - each regular leading reference m contributes C_m = ⌈W/(i·L_m)⌉
      copies (the window dynamically unrolls the body and breaks cache-line
      recurrences), or 1 when the loop carries an address recurrence;
    - each irregular leading reference contributes P_m·C_m, weighted by its
      profiled miss rate, rounded up in aggregate so irregulars present in
      the loop always reserve at least one miss resource. *)

open Memclust_locality
open Memclust_depgraph

type t = {
  f : float;  (** f = f_reg + f_irreg *)
  f_reg : float;
  f_irreg : float;
  body_ops : int;  (** i: estimated dynamic operations per iteration *)
  misses_per_iteration : float;
      (** Σ_reg 1/L_m + Σ_irreg P_m — the window-constraint stage's miss
          density, independent of W *)
  regular_leading : int;
  irregular_leading : int;
}

val compute :
  Machine_model.t ->
  Locality.t ->
  pm:(int -> float) ->
  graph:Depgraph.t ->
  Depgraph.inner ->
  t
(** [pm] maps a reference id to its profiled miss rate (use
    [Profile.miss_rate], or [fun _ -> 1.0] without profiling). *)

val pp : Format.formatter -> t -> unit
