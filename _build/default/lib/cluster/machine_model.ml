type t = {
  window : int;
  mshrs : int;
  line_size : int;
  max_unroll : int;
  max_procs : int;
}

let base =
  { window = 64; mshrs = 10; line_size = 64; max_unroll = 16; max_procs = 16 }

let exemplar_like =
  { window = 56; mshrs = 10; line_size = 32; max_unroll = 16; max_procs = 16 }

let pp ppf t =
  Format.fprintf ppf "window=%d mshrs=%d line=%dB max_unroll=%d max_procs=%d"
    t.window t.mshrs t.line_size t.max_unroll t.max_procs
