(** End-to-end clustering driver: the compiler algorithm of paper §3.

    For every top-level loop nest of a program:

    + run locality analysis and (optionally) miss-rate profiling;
    + build the memory-parallelism dependence graph of the innermost
      loop-like construct and compute α over its recurrences;
    + if the loop has a recurrence and f < α·lp, binary-search the largest
      unroll-and-jam degree of the enclosing loop that keeps f ≤ α·lp
      (recomputing locality, dependences and f after each trial, since
      unroll-and-jam introduces and removes leading references);
    + resolve remaining window constraints: inner-loop unrolling when the
      misses of ⌈W/i⌉ iterations cannot fill the MSHRs, then scalar
      replacement and miss-packing scheduling of every innermost body.

    The result is a transformed program plus a report of every decision. *)

open Memclust_ir

type action =
  | Unroll_jam of {
      target_var : string;
      factor : int;
      f_before : float;
      f_after : float;
      alpha : float;
    }
  | Inner_unroll of { inner_var : string; factor : int }
  | Rejected of { target_var : string; reason : string }

type nest_report = {
  nest_index : int;  (** position of the nest in the program body *)
  inner_desc : string;  (** innermost loop variable or chase pointer *)
  alpha : float;
  f_initial : float;
  actions : action list;
}

type report = {
  nests : nest_report list;
  scalar_replaced : int;  (** loads removed by scalar replacement *)
}

type scheduler =
  | Pack_misses  (** the window-conscious packing of §3.3 (default) *)
  | Balanced  (** statement-level balanced scheduling (comparison baseline) *)
  | No_schedule

type options = {
  machine : Machine_model.t;
  profile_pm : bool;  (** measure P_m by cache profiling (needs [init]) *)
  do_unroll_jam : bool;
  do_window : bool;  (** inner unrolling for window constraints *)
  do_scalar_replace : bool;
  do_schedule : bool;  (** run a local scheduler at all *)
  scheduler : scheduler;
}

val default_options : options

val run :
  ?options:options ->
  ?init:(Data.t -> unit) ->
  Ast.program ->
  Ast.program * report
(** Transform the program. [init] fills a fresh store with the workload's
    data (pointer chains, index arrays) so profiling sees real access
    patterns; without it, irregular references are assumed to always miss
    (P_m = 1). The returned program is renumbered and validated. *)

val pp_report : Format.formatter -> report -> unit
