lib/cluster/festimate.mli: Depgraph Format Locality Machine_model Memclust_depgraph Memclust_locality
