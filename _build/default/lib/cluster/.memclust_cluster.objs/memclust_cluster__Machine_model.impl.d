lib/cluster/machine_model.ml: Format
