lib/cluster/festimate.ml: Depgraph Float Format List Locality Machine_model Measure Memclust_depgraph Memclust_ir Memclust_locality Program
