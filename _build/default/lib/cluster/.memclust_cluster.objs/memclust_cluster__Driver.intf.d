lib/cluster/driver.mli: Ast Data Format Machine_model Memclust_ir
