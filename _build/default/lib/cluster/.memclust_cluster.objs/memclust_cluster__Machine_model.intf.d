lib/cluster/machine_model.mli: Format
