open Memclust_ir
open Memclust_locality
open Memclust_depgraph

type t = {
  f : float;
  f_reg : float;
  f_irreg : float;
  body_ops : int;
  misses_per_iteration : float;
  regular_leading : int;
  irregular_leading : int;
}

(* Reference ids that belong directly to this innermost loop (not to a
   nested loop-like construct). *)
let scope_ids inner =
  match inner with
  | Depgraph.Counted l ->
      List.filter_map
        (fun (ri : Program.ref_info) ->
          if ri.loop_path = [] && ri.chase_path = [] then Some ri.ref_.ref_id
          else None)
        (Program.refs_in_stmts l.body)
  | Depgraph.Chased c ->
      c.next_ref_id
      :: List.filter_map
           (fun (ri : Program.ref_info) ->
             if ri.loop_path = [] && ri.chase_path = [] then Some ri.ref_.ref_id
             else None)
           (Program.refs_in_stmts c.cbody)

let body_size inner =
  match inner with
  | Depgraph.Counted l -> Measure.body_ops l.body
  | Depgraph.Chased c -> Measure.body_ops c.cbody + 1

let compute (m : Machine_model.t) loc ~pm ~graph inner =
  let ids = scope_ids inner in
  let i = max 1 (body_size inner) in
  let w = m.Machine_model.window in
  let has_addr = graph.Depgraph.has_address_recurrence in
  let cm lm =
    if has_addr then 1
    else max 1 ((w + (i * lm) - 1) / (i * lm))
  in
  let f_reg = ref 0.0 in
  let f_irreg_sum = ref 0.0 in
  let n_reg = ref 0 in
  let n_irreg = ref 0 in
  let density = ref 0.0 in
  List.iter
    (fun id ->
      match Locality.info loc id with
      | exception Not_found -> ()
      | info -> (
          match info.Locality.kind with
          | Locality.Leading_regular { lm; _ } ->
              incr n_reg;
              f_reg := !f_reg +. float_of_int (cm lm);
              density := !density +. (1.0 /. float_of_int lm)
          | Locality.Leading_irregular ->
              incr n_irreg;
              let p = pm id in
              f_irreg_sum := !f_irreg_sum +. (p *. float_of_int (cm 1));
              density := !density +. p
          | Locality.Follower _ | Locality.Inner_invariant -> ()))
    ids;
  let f_irreg = if !n_irreg = 0 then 0.0 else Float.ceil !f_irreg_sum in
  {
    f = !f_reg +. f_irreg;
    f_reg = !f_reg;
    f_irreg;
    body_ops = i;
    misses_per_iteration = !density;
    regular_leading = !n_reg;
    irregular_leading = !n_irreg;
  }

let pp ppf t =
  Format.fprintf ppf
    "f=%.2f (reg %.2f over %d refs, irreg %.2f over %d refs) i=%d density=%.3f"
    t.f t.f_reg t.regular_leading t.f_irreg t.irregular_leading t.body_ops
    t.misses_per_iteration
