type kind = Int_op | Fp_op | Load | Store | Branch | Barrier_op | Prefetch_op

let kind_code = function
  | Int_op -> 0
  | Fp_op -> 1
  | Load -> 2
  | Store -> 3
  | Branch -> 4
  | Barrier_op -> 5
  | Prefetch_op -> 6

let kind_of_code = function
  | 0 -> Int_op
  | 1 -> Fp_op
  | 2 -> Load
  | 3 -> Store
  | 4 -> Branch
  | 5 -> Barrier_op
  | 6 -> Prefetch_op
  | c -> invalid_arg (Printf.sprintf "Trace.kind_of_code %d" c)

type t = {
  mutable n : int;
  mutable kinds : Bytes.t;
  mutable auxs : int array;
  mutable dep1s : int array;
  mutable dep2s : int array;
  mutable refs : int array;
}

let initial = 4096

let create () =
  {
    n = 0;
    kinds = Bytes.create initial;
    auxs = Array.make initial 0;
    dep1s = Array.make initial (-1);
    dep2s = Array.make initial (-1);
    refs = Array.make initial 0;
  }

let length t = t.n

let grow t =
  let cap = Array.length t.auxs in
  if t.n = cap then begin
    let ncap = cap * 2 in
    let kinds = Bytes.create ncap in
    Bytes.blit t.kinds 0 kinds 0 cap;
    t.kinds <- kinds;
    let extend a def =
      let fresh = Array.make ncap def in
      Array.blit a 0 fresh 0 cap;
      fresh
    in
    t.auxs <- extend t.auxs 0;
    t.dep1s <- extend t.dep1s (-1);
    t.dep2s <- extend t.dep2s (-1);
    t.refs <- extend t.refs 0
  end

let push t ~kind ~aux ~dep1 ~dep2 ~ref_ =
  grow t;
  let i = t.n in
  Bytes.unsafe_set t.kinds i (Char.chr (kind_code kind));
  t.auxs.(i) <- aux;
  t.dep1s.(i) <- dep1;
  t.dep2s.(i) <- dep2;
  t.refs.(i) <- ref_;
  t.n <- i + 1;
  i

let kind t i = kind_of_code (Char.code (Bytes.unsafe_get t.kinds i))
let aux t i = t.auxs.(i)
let dep1 t i = t.dep1s.(i)
let dep2 t i = t.dep2s.(i)
let ref_id t i = t.refs.(i)

let count_kind t k =
  let c = kind_code k in
  let acc = ref 0 in
  for i = 0 to t.n - 1 do
    if Char.code (Bytes.unsafe_get t.kinds i) = c then incr acc
  done;
  !acc
