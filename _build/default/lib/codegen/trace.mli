(** Compact per-processor dynamic instruction trace.

    The lowering pass runs the IR executor once and records every dynamic
    operation with its register dataflow (up to two producer indices) in a
    struct-of-arrays layout, so multi-million-instruction traces stay
    cheap. The out-of-order core consumes a trace by index. *)

type kind = Int_op | Fp_op | Load | Store | Branch | Barrier_op | Prefetch_op

val kind_code : kind -> int
val kind_of_code : int -> kind

type t

val create : unit -> t
val length : t -> int

val push :
  t -> kind:kind -> aux:int -> dep1:int -> dep2:int -> ref_:int -> int
(** Append an instruction; returns its index. [aux] holds the FP latency
    for [Fp_op], the byte address for [Load]/[Store], and the barrier
    sequence number for [Barrier_op]. [dep1]/[dep2] are producer indices in
    the same trace, or -1. *)

val kind : t -> int -> kind
val aux : t -> int -> int
val dep1 : t -> int -> int
val dep2 : t -> int -> int
val ref_id : t -> int -> int

val count_kind : t -> kind -> int
