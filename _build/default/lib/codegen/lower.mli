(** Lowering: run a program through the IR executor and materialize one
    dynamic instruction trace per processor.

    Register dataflow crosses into the trace as producer indices, so
    address dependences (pointer chasing, indirect indexing) serialize in
    the simulator exactly as the dependence framework predicts. Values
    produced on one processor and consumed on another (rare: only values
    live into a parallel loop) are treated as available — their latency is
    not modeled, but barriers order the phases that communicate. *)

open Memclust_ir

type t = {
  traces : Trace.t array;  (** one per processor *)
  barriers : int;  (** number of global barriers emitted *)
}

val build : ?nprocs:int -> Ast.program -> Data.t -> t
(** Executes the program (mutating [data]) and returns the traces.
    Parallel loop iterations are block-distributed over [nprocs]
    (default 1). *)

val total_instructions : t -> int
