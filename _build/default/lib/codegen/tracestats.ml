type t = {
  total : int;
  int_ops : int;
  fp_ops : int;
  loads : int;
  stores : int;
  branches : int;
  barriers : int;
  prefetches : int;
  distinct_lines : int;
}

let empty =
  {
    total = 0;
    int_ops = 0;
    fp_ops = 0;
    loads = 0;
    stores = 0;
    branches = 0;
    barriers = 0;
    prefetches = 0;
    distinct_lines = 0;
  }

let add_trace ?(line_size = 64) lines acc trace =
  let acc = ref acc in
  for i = 0 to Trace.length trace - 1 do
    let a = !acc in
    (match Trace.kind trace i with
    | Trace.Int_op -> acc := { a with int_ops = a.int_ops + 1 }
    | Trace.Fp_op -> acc := { a with fp_ops = a.fp_ops + 1 }
    | Trace.Load ->
        Hashtbl.replace lines (Trace.aux trace i / line_size) ();
        acc := { a with loads = a.loads + 1 }
    | Trace.Store ->
        Hashtbl.replace lines (Trace.aux trace i / line_size) ();
        acc := { a with stores = a.stores + 1 }
    | Trace.Branch -> acc := { a with branches = a.branches + 1 }
    | Trace.Barrier_op -> acc := { a with barriers = a.barriers + 1 }
    | Trace.Prefetch_op -> acc := { a with prefetches = a.prefetches + 1 });
    acc := { !acc with total = !acc.total + 1 }
  done;
  !acc

let of_trace ?(line_size = 64) trace =
  let lines = Hashtbl.create 1024 in
  let t = add_trace ~line_size lines empty trace in
  { t with distinct_lines = Hashtbl.length lines }

let of_lowered ?(line_size = 64) (l : Lower.t) =
  let lines = Hashtbl.create 1024 in
  let t =
    Array.fold_left (add_trace ~line_size lines) empty l.Lower.traces
  in
  { t with distinct_lines = Hashtbl.length lines }

let pp ppf t =
  Format.fprintf ppf
    "%d instrs: %d int, %d fp, %d loads, %d stores, %d branches, %d barriers, \
     %d prefetches; %d distinct lines"
    t.total t.int_ops t.fp_ops t.loads t.stores t.branches t.barriers
    t.prefetches t.distinct_lines
