(** Instruction-mix statistics over lowered traces — a quick sanity lens
    on what the lowering produced (and the numbers behind the paper's
    "loop body of i instructions" discussions). *)

type t = {
  total : int;
  int_ops : int;
  fp_ops : int;
  loads : int;
  stores : int;
  branches : int;
  barriers : int;
  prefetches : int;
  distinct_lines : int;  (** distinct cache lines touched (64 B) *)
}

val of_trace : ?line_size:int -> Trace.t -> t

val of_lowered : ?line_size:int -> Lower.t -> t
(** Aggregated over all processors. *)

val pp : Format.formatter -> t -> unit
