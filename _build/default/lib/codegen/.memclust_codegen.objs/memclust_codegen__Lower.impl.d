lib/codegen/lower.ml: Array Ast Exec Memclust_ir Trace
