lib/codegen/tracestats.ml: Array Format Hashtbl Lower Trace
