lib/codegen/tracestats.mli: Format Lower Trace
