lib/codegen/trace.mli:
