lib/codegen/trace.ml: Array Bytes Char Printf
