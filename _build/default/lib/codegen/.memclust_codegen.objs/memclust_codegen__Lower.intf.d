lib/codegen/lower.mli: Ast Data Memclust_ir Trace
