open Memclust_ir
open Memclust_transform

let qtest = QCheck_alcotest.to_alcotest

(* ----------------------------- helpers ----------------------------- *)

(* run both programs on identically-initialized stores and compare *)
let semantics_equal ?(eps = 1e-9) p1 p2 init =
  let d1 = Data.create p1 and d2 = Data.create p2 in
  init d1;
  init d2;
  Exec.run p1 d1;
  Exec.run p2 d2;
  Data.equal ~eps d1 d2

let float_init names n d =
  List.iteri
    (fun ai name ->
      for i = 0 to n - 1 do
        Data.set d name i (Ast.Vfloat (float_of_int (i + (1000 * ai)) *. 0.37))
      done)
    names

(* the Figure 2(a) traversal with a reduction row vector *)
let fig2a ?(rows = 23) ?(cols = 17) () =
  let open Builder in
  program "fig2a"
    ~arrays:[ array_decl "a" (Stdlib.( * ) rows cols); array_decl "s" rows ]
    [
      loop "j" (cst 0) (cst rows)
        [
          loop "i" (cst 0) (cst cols)
            [
              store (aref "s" (ix "j"))
                (arr "s" (ix "j") + arr "a" (idx2 ~cols (ix "j") (ix "i")));
            ];
        ];
    ]

let outer_of p = match p.Ast.body with [ Ast.Loop l ] -> l | _ -> assert false

let replace_nest p stmts = Program.renumber { p with Ast.body = stmts }

(* ------------------------------ Subst ------------------------------ *)

let test_shift_var () =
  let open Builder in
  let s = store (aref "a" (ix "j" +: cst 1)) (iv "j" + num 1) in
  let shifted = Subst.shift_var "j" 3 s in
  (match shifted with
  | Ast.Assign (Ast.Lmem { target = Ast.Direct { index; _ }; _ }, rhs) ->
      Alcotest.(check int) "subscript shifted" 4 (Affine.constant index);
      (* run-time use becomes j + 3 *)
      (match rhs with
      | Ast.Binop (_, Ast.Binop (Ast.Add, Ast.Ivar "j", Ast.Const (Ast.Vint 3)), _) -> ()
      | _ -> Alcotest.fail "Ivar not shifted")
  | _ -> Alcotest.fail "unexpected shape")

let test_rename_scalars_chase () =
  let open Builder in
  let s =
    chase "p" ~init:(ld (aref "st" (cst 0))) ~region:"r" ~next:0
      [ assign "acc" (sc "acc" + ld (fref "r" (sc "p") 1)) ]
  in
  match Subst.rename_scalars (fun v -> v ^ "$x") s with
  | Ast.Chase c ->
      Alcotest.(check string) "cvar renamed" "p$x" c.Ast.cvar;
      (match c.Ast.cbody with
      | [ Ast.Assign (Ast.Lscalar "acc$x", _) ] -> ()
      | _ -> Alcotest.fail "body scalar not renamed")
  | _ -> Alcotest.fail "unexpected"

(* ----------------------------- Legality ---------------------------- *)

let test_legal_independent_rows () =
  (* store a[j,i]: rows are independent, any factor legal *)
  let l = outer_of (fig2a ()) in
  Alcotest.(check bool) "legal" true
    (Legality.unroll_jam_legal ~params:[] ~outer_ranges:[] ~target:l ~factor:8)

let test_illegal_carried () =
  let open Builder in
  let p =
    program "carried"
      ~arrays:[ array_decl "a" 1024 ]
      [
        loop "j" (cst 1) (cst 32)
          [
            loop "i" (cst 0) (cst 32)
              [
                store (aref "a" (idx2 ~cols:32 (ix "j") (ix "i")))
                  (arr "a" (idx2 ~cols:32 (ix "j" -: cst 1) (ix "i")));
              ];
          ];
      ]
  in
  let l = outer_of p in
  Alcotest.(check bool) "illegal" false
    (Legality.unroll_jam_legal ~params:[] ~outer_ranges:[] ~target:l ~factor:2)

let test_parallel_overrides () =
  let open Builder in
  let p =
    program "carried_par"
      ~arrays:[ array_decl "a" 1024 ]
      [
        loop ~parallel:true "j" (cst 1) (cst 32)
          [
            loop "i" (cst 0) (cst 32)
              [
                store (aref "a" (idx2 ~cols:32 (ix "j") (ix "i")))
                  (arr "a" (idx2 ~cols:32 (ix "j" -: cst 1) (ix "i")));
              ];
          ];
      ]
  in
  let l = outer_of p in
  Alcotest.(check bool) "parallel asserts independence" true
    (Legality.unroll_jam_legal ~params:[] ~outer_ranges:[] ~target:l ~factor:2)

let test_gcd_saves_lu_pattern () =
  (* A[(16+i)*64 + j] written, A[k*64 + j] read with k in an outer loop:
     distances 1..7 need a multiple of 64 — independent by the GCD test *)
  let open Builder in
  let p =
    program "lu_like"
      ~arrays:[ array_decl "A" 4096 ]
      [
        loop "k" (cst 0) (cst 16)
          [
            loop "i" (cst 0) (cst 16)
              [
                loop "j" (cst 0) (cst 16)
                  [
                    store (aref "A" (idx2 ~cols:64 (ix "i" +: cst 16) (ix "j")))
                      (arr "A" (idx2 ~cols:64 (ix "i" +: cst 16) (ix "j"))
                      - arr "A" (idx2 ~cols:64 (ix "k") (ix "j")));
                  ];
              ];
          ];
      ]
  in
  let k_loop = outer_of p in
  let i_loop = match k_loop.Ast.body with [ Ast.Loop l ] -> l | _ -> assert false in
  let outer_ranges = Legality.ranges_of_nest ~params:[] [ k_loop ] in
  Alcotest.(check bool) "independent" true
    (Legality.unroll_jam_legal ~params:[] ~outer_ranges ~target:i_loop ~factor:8)

let test_interchange_stencil_illegal () =
  let open Builder in
  let p =
    program "skew"
      ~arrays:[ array_decl "a" 4096 ]
      [
        loop "j" (cst 1) (cst 32)
          [
            loop "i" (cst 0) (cst 31)
              [
                store (aref "a" (idx2 ~cols:64 (ix "j") (ix "i")))
                  (arr "a" (idx2 ~cols:64 (ix "j" -: cst 1) (ix "i" +: cst 1)));
              ];
          ];
      ]
  in
  let l = outer_of p in
  (match Interchange.apply l with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "(<,>) dependence must forbid interchange")

let test_interchange_legal_and_semantics () =
  let p = fig2a ~rows:9 ~cols:11 () in
  let l = outer_of p in
  match Interchange.apply l with
  | Error e -> Alcotest.fail e
  | Ok swapped ->
      let p' = replace_nest p [ swapped ] in
      Alcotest.(check bool) "semantics" true
        (semantics_equal p p' (float_init [ "a" ] 99))

(* --------------------------- Unroll-and-jam ------------------------ *)

let uj_semantics ~rows ~cols ~factor =
  let p = fig2a ~rows ~cols () in
  match Unroll_jam.apply ~factor (outer_of p) with
  | Error e -> Alcotest.failf "unroll-and-jam failed: %a" Unroll_jam.pp_error e
  | Ok stmts ->
      let p' = replace_nest p stmts in
      (match Program.validate p' with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check bool)
        (Printf.sprintf "semantics rows=%d factor=%d" rows factor)
        true
        (semantics_equal p p' (float_init [ "a" ] (rows * cols)))

let test_uj_exact_division () = uj_semantics ~rows:24 ~cols:17 ~factor:4
let test_uj_with_postlude () = uj_semantics ~rows:23 ~cols:17 ~factor:4
let test_uj_factor_one () = uj_semantics ~rows:23 ~cols:17 ~factor:1

let prop_uj_semantics =
  QCheck.Test.make ~name:"unroll-and-jam preserves semantics" ~count:40
    QCheck.(triple (int_range 2 30) (int_range 1 20) (int_range 2 8))
    (fun (rows, cols, factor) ->
      QCheck.assume (rows >= factor);
      let p = fig2a ~rows ~cols () in
      match Unroll_jam.apply ~factor (outer_of p) with
      | Error _ -> true (* refusing is always sound *)
      | Ok stmts ->
          let p' = replace_nest p stmts in
          semantics_equal p p' (float_init [ "a" ] (rows * cols)))

let test_uj_too_few_iterations () =
  let p = fig2a ~rows:3 ~cols:5 () in
  match Unroll_jam.apply ~factor:8 (outer_of p) with
  | Error (Unroll_jam.Not_unrollable _) -> ()
  | _ -> Alcotest.fail "expected refusal"

let test_uj_carried_scalar_refused () =
  let open Builder in
  let p =
    program "carried_scalar"
      ~arrays:[ array_decl "a" 64; array_decl "o" 1 ]
      [
        assign "s" (flt 0.0);
        loop "j" (cst 0) (cst 8)
          [
            loop "i" (cst 0) (cst 8)
              [ assign "s" (sc "s" + arr "a" (idx2 ~cols:8 (ix "j") (ix "i"))) ];
          ];
        store (aref "o" (cst 0)) (sc "s");
      ]
  in
  let l = match p.Ast.body with [ _; Ast.Loop l; _ ] -> l | _ -> assert false in
  match Unroll_jam.apply ~factor:2 l with
  | Error (Unroll_jam.Not_unrollable _) -> ()
  | _ -> Alcotest.fail "carried scalar must refuse"

let test_uj_postlude_interchanged () =
  let p = fig2a ~rows:23 ~cols:17 () in
  match Unroll_jam.apply ~factor:4 (outer_of p) with
  | Error _ -> Alcotest.fail "should succeed"
  | Ok stmts -> (
      Alcotest.(check int) "main + postlude" 2 (List.length stmts);
      match List.nth stmts 1 with
      | Ast.Loop l ->
          (* interchanged: the postlude's outer loop is now i *)
          Alcotest.(check string) "outer var is i" "i" l.Ast.var
      | _ -> Alcotest.fail "postlude missing")

let test_uj_scalar_renaming () =
  (* copies' temporaries are renamed so they stay independent *)
  let open Builder in
  let p =
    program "tmp"
      ~arrays:[ array_decl "a" 256; array_decl "o" 256 ]
      [
        loop "j" (cst 0) (cst 16)
          [
            loop "i" (cst 0) (cst 16)
              [
                assign "t" (arr "a" (idx2 ~cols:16 (ix "j") (ix "i")));
                store (aref "o" (idx2 ~cols:16 (ix "j") (ix "i"))) (sc "t" * sc "t");
              ];
          ];
      ]
  in
  match Unroll_jam.apply ~factor:4 (outer_of p) with
  | Error e -> Alcotest.failf "failed: %a" Unroll_jam.pp_error e
  | Ok stmts ->
      let p' = replace_nest p stmts in
      Alcotest.(check bool) "semantics with temporaries" true
        (semantics_equal p p' (float_init [ "a" ] 256))

(* ------------------------- Chase jamming --------------------------- *)

let chains_program ~chains ~region_nodes ~count =
  let open Builder in
  program "chains"
    ~arrays:[ array_decl "start" chains; array_decl "out" chains ]
    ~regions:[ region_decl ~node_size:32 "n" region_nodes ]
    [
      loop "j" (cst 0) (cst chains)
        [
          assign "s" (flt 0.0);
          (match count with
          | Some k ->
              chase "p" ~init:(ld (aref "start" (ix "j"))) ~region:"n" ~next:0
                ~count:(cst k)
                [ assign "s" (sc "s" + ld (fref "n" (sc "p") 1)) ]
          | None ->
              chase "p" ~init:(ld (aref "start" (ix "j"))) ~region:"n" ~next:0
                [ assign "s" (sc "s" + ld (fref "n" (sc "p") 1)) ]);
          store (aref "out" (ix "j")) (sc "s");
        ];
    ]

let init_chains ~chains ~len_of d =
  let node = ref 0 in
  for j = 0 to chains - 1 do
    let len = len_of j in
    if len = 0 then Data.set d "start" j (Ast.Vptr 0)
    else begin
      Data.set d "start" j (Data.node_ptr d "n" !node);
      for k = 0 to len - 1 do
        let addr = Data.node_addr d "n" (!node + k) in
        Data.field_set d "n" ~ptr:addr ~field:1
          (Ast.Vfloat (float_of_int (((j + 1) * 100) + k)));
        Data.field_set d "n" ~ptr:addr ~field:0
          (if k = len - 1 then Ast.Vptr 0 else Data.node_ptr d "n" (!node + k + 1))
      done;
      node := !node + len
    end
  done

let test_jam_equal_counts () =
  let p = chains_program ~chains:8 ~region_nodes:100 ~count:(Some 5) in
  let l = outer_of p in
  match Unroll_jam.apply ~factor:4 l with
  | Error e -> Alcotest.failf "failed: %a" Unroll_jam.pp_error e
  | Ok stmts ->
      let p' = replace_nest p stmts in
      Alcotest.(check bool) "semantics" true
        (semantics_equal p p' (init_chains ~chains:8 ~len_of:(fun _ -> 12)))

let test_jam_variable_lengths_guarded () =
  let p = chains_program ~chains:9 ~region_nodes:200 ~count:None in
  let l = outer_of p in
  match Unroll_jam.apply ~factor:3 l with
  | Error e -> Alcotest.failf "failed: %a" Unroll_jam.pp_error e
  | Ok stmts ->
      let p' = replace_nest p stmts in
      let lens = [| 3; 0; 7; 1; 1; 9; 2; 5; 4 |] in
      Alcotest.(check bool) "semantics with ragged chains" true
        (semantics_equal p p' (init_chains ~chains:9 ~len_of:(fun j -> lens.(j))))

let prop_jam_ragged =
  QCheck.Test.make ~name:"guarded chase jam on random chain lengths" ~count:25
    QCheck.(pair (int_range 2 4) (list_of_size (Gen.return 8) (int_range 0 9)))
    (fun (factor, lens) ->
      let lens = Array.of_list lens in
      let p = chains_program ~chains:8 ~region_nodes:100 ~count:None in
      match Unroll_jam.apply ~factor (outer_of p) with
      | Error _ -> false
      | Ok stmts ->
          let p' = replace_nest p stmts in
          semantics_equal p p' (init_chains ~chains:8 ~len_of:(fun j -> lens.(j))))

(* ------------------------- Inner unrolling ------------------------- *)

let test_inner_unroll_semantics () =
  let open Builder in
  let p =
    program "accsum"
      ~arrays:[ array_decl "a" 100; array_decl "o" 1 ]
      [
        assign "s" (flt 0.0);
        loop "i" (cst 0) (cst 100) [ assign "s" (sc "s" + arr "a" (ix "i")) ];
        store (aref "o" (cst 0)) (sc "s");
      ]
  in
  let l = match p.Ast.body with [ _; Ast.Loop l; _ ] -> l | _ -> assert false in
  match Inner_unroll.apply ~factor:7 l with
  | Error e -> Alcotest.fail e
  | Ok stmts ->
      let p' =
        Program.renumber
          { p with Ast.body = (List.hd p.Ast.body :: stmts) @ [ List.nth p.Ast.body 2 ] }
      in
      Alcotest.(check bool) "accumulator correct across copies" true
        (semantics_equal p p' (float_init [ "a" ] 100))

let test_inner_unroll_privatizes_temps () =
  let open Builder in
  let p =
    program "temps"
      ~arrays:[ array_decl "a" 64; array_decl "o" 64 ]
      [
        loop "i" (cst 0) (cst 64)
          [
            assign "t" (arr "a" (ix "i"));
            store (aref "o" (ix "i")) (sc "t" * flt 2.0);
          ];
      ]
  in
  let l = outer_of p in
  match Inner_unroll.apply ~factor:4 l with
  | Error e -> Alcotest.fail e
  | Ok stmts -> (
      let p' = replace_nest p stmts in
      Alcotest.(check bool) "semantics" true
        (semantics_equal p p' (float_init [ "a" ] 64));
      (* distinct names appear *)
      match List.hd stmts with
      | Ast.Loop l' ->
          let written = Program.scalars_written l'.Ast.body in
          Alcotest.(check bool) "renamed temp exists" true
            (List.exists
               (fun v ->
                 String.length v > 4 && String.equal (String.sub v 0 4) "t__k")
               written)
      | _ -> Alcotest.fail "no loop")

(* --------------------------- Strip-mining -------------------------- *)

let test_strip_mine_semantics () =
  let p = fig2a ~rows:24 ~cols:16 () in
  match Strip_mine.strip ~size:4 (outer_of p) with
  | Error e -> Alcotest.fail e
  | Ok st ->
      let p' = replace_nest p [ st ] in
      Alcotest.(check bool) "semantics" true
        (semantics_equal p p' (float_init [ "a" ] (24 * 16)))

let test_strip_and_interchange () =
  let p = fig2a ~rows:24 ~cols:16 () in
  match Strip_mine.strip_and_interchange ~size:4 (outer_of p) with
  | Error e -> Alcotest.fail e
  | Ok st ->
      let p' = replace_nest p [ st ] in
      Alcotest.(check bool) "semantics" true
        (semantics_equal p p' (float_init [ "a" ] (24 * 16)))

let test_strip_indivisible () =
  let p = fig2a ~rows:23 ~cols:16 () in
  match Strip_mine.strip ~size:4 (outer_of p) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected divisibility error"

(* ------------------------- Scalar replacement ---------------------- *)

let test_scalar_replace_cse () =
  let open Builder in
  let p =
    program "cse"
      ~arrays:[ array_decl "a" 64; array_decl "o" 64 ]
      [
        loop "i" (cst 0) (cst 64)
          [
            store (aref "o" (ix "i"))
              (arr "a" (ix "i") * arr "a" (ix "i") + arr "a" (ix "i"));
          ];
      ]
  in
  let p', saved = Scalar_replace.apply_innermost p in
  Alcotest.(check int) "two redundant loads removed" 2 saved;
  Alcotest.(check bool) "semantics" true
    (semantics_equal p p' (float_init [ "a" ] 64))

let test_scalar_replace_store_forward () =
  let open Builder in
  let p =
    program "fwd"
      ~arrays:[ array_decl "a" 64; array_decl "o" 64 ]
      [
        loop "i" (cst 0) (cst 64)
          [
            store (aref "a" (ix "i")) (flt 2.0);
            store (aref "o" (ix "i")) (arr "a" (ix "i") + flt 1.0);
          ];
      ]
  in
  let p', saved = Scalar_replace.apply_innermost p in
  Alcotest.(check int) "store-to-load forwarded" 1 saved;
  Alcotest.(check bool) "semantics" true
    (semantics_equal p p' (float_init [ "a" ] 64))

let test_scalar_replace_aliasing_safe () =
  (* stores to a different (symbolic) index must kill availability *)
  let open Builder in
  let p =
    program "alias"
      ~arrays:[ array_decl "a" 64; array_decl "o" 64 ]
      [
        loop "i" (cst 1) (cst 63)
          [
            assign "x" (arr "a" (ix "i"));
            store (aref "a" (ix "i" -: cst 1)) (flt 7.0);
            store (aref "o" (ix "i")) (arr "a" (ix "i") + sc "x");
          ];
      ]
  in
  let p', _ = Scalar_replace.apply_innermost p in
  Alcotest.(check bool) "semantics under aliasing" true
    (semantics_equal p p' (float_init [ "a" ] 64))

let test_scalar_replace_skips_irregular_store () =
  let open Builder in
  let p =
    program "irr"
      ~arrays:[ array_decl "a" 64; array_decl "idx" 64 ]
      [
        loop "i" (cst 0) (cst 64)
          [ store (iref "a" (arr "idx" (ix "i"))) (flt 1.0) ];
      ]
  in
  let p', saved = Scalar_replace.apply_innermost p in
  Alcotest.(check int) "untouched" 0 saved;
  ignore p'

let prop_scalar_replace_semantics =
  QCheck.Test.make ~name:"scalar replacement preserves semantics" ~count:30
    QCheck.(pair (int_range 2 20) (int_range 2 20))
    (fun (rows, cols) ->
      let p = fig2a ~rows ~cols () in
      let p', _ = Scalar_replace.apply_innermost p in
      semantics_equal p p' (float_init [ "a" ] (rows * cols)))

(* ----------------------------- Scheduling -------------------------- *)

let test_pack_is_permutation () =
  let open Builder in
  let p =
    program "pack"
      ~arrays:[ array_decl "a" 640; array_decl "b" 640; array_decl "o" 640 ]
      [
        loop "i" (cst 0) (cst 64)
          [
            assign "x" (arr "a" (8 *: ix "i"));
            store (aref "o" (8 *: ix "i")) (sc "x" * flt 2.0);
            assign "y" (arr "b" (8 *: ix "i"));
            store (aref "o" ((8 *: ix "i") +: cst 1)) (sc "y" * flt 3.0);
          ];
      ]
  in
  let loc = Memclust_locality.Locality.analyze ~line_size:64 p in
  let l = outer_of p in
  let packed = Schedule.pack_misses loc l.Ast.body in
  Alcotest.(check int) "same length" (List.length l.Ast.body) (List.length packed);
  (* both miss loads first *)
  (match packed with
  | first :: second :: _ ->
      Alcotest.(check bool) "first is load" true (Schedule.is_miss_load loc first);
      Alcotest.(check bool) "second is load" true (Schedule.is_miss_load loc second)
  | _ -> Alcotest.fail "too short");
  (* and semantics hold *)
  let p' = replace_nest p [ Ast.Loop { l with Ast.body = packed } ] in
  Alcotest.(check bool) "semantics" true
    (semantics_equal p p' (float_init [ "a"; "b" ] 640))

let test_pack_respects_deps () =
  let open Builder in
  (* the second load's address depends on the first store's value chain *)
  let p =
    program "dep"
      ~arrays:[ array_decl "a" 64; array_decl "o" 64 ]
      [
        loop "i" (cst 0) (cst 8)
          [
            assign "x" (arr "a" (ix "i"));
            assign "k" (Ast.Unop (Ast.Trunc, sc "x"));
            assign "y" (ld (iref "a" (sc "k")));
            store (aref "o" (ix "i")) (sc "y");
          ];
      ]
  in
  let loc = Memclust_locality.Locality.analyze ~line_size:64 p in
  let l = outer_of p in
  let packed = Schedule.pack_misses loc l.Ast.body in
  let p2 = replace_nest p [ Ast.Loop { l with Ast.body = packed } ] in
  let init d =
    for i = 0 to 63 do
      let v = Stdlib.( mod ) (Stdlib.( * ) i 7) 64 in
      Data.set d "a" i (Ast.Vfloat (float_of_int v))
    done
  in
  Alcotest.(check bool) "semantics with address chain" true (semantics_equal p p2 init)


(* ------------------------------ Fusion ----------------------------- *)

let two_loops ?(second_reads_ahead = false) () =
  let open Builder in
  let idx = if second_reads_ahead then ix "i" +: cst 1 else ix "i" in
  program "pair"
    ~arrays:[ array_decl "a" 128; array_decl "b" 128; array_decl "oa" 128; array_decl "ob" 128 ]
    [
      loop "i" (cst 0) (cst 100)
        [ store (aref "oa" (ix "i")) (arr "a" (ix "i") * flt 2.0) ];
      loop "i" (cst 0) (cst 100)
        [ store (aref "ob" (ix "i")) (arr "b" (ix "i") + arr "oa" idx) ];
    ]

let loops_of p =
  match p.Ast.body with
  | [ Ast.Loop l1; Ast.Loop l2 ] -> (l1, l2)
  | _ -> assert false

let test_fusion_forward_dep_legal () =
  let p = two_loops () in
  let l1, l2 = loops_of p in
  match Fuse.apply l1 l2 with
  | Error e -> Alcotest.failf "fusion failed: %a" Fuse.pp_error e
  | Ok fused ->
      let p2 = replace_nest p [ fused ] in
      Alcotest.(check bool) "semantics" true
        (semantics_equal p p2 (float_init [ "a"; "b" ] 128))

let test_fusion_backward_dep_illegal () =
  (* loop 2 reads oa[i+1], produced by loop 1 only at iteration i+1 *)
  let p = two_loops ~second_reads_ahead:true () in
  let l1, l2 = loops_of p in
  match Fuse.apply l1 l2 with
  | Error (Fuse.Illegal _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Fuse.pp_error e
  | Ok _ -> Alcotest.fail "backward dependence must forbid fusion"

let test_fusion_shape_mismatch () =
  let open Builder in
  let p =
    program "mismatch"
      ~arrays:[ array_decl "a" 64; array_decl "b" 64 ]
      [
        loop "i" (cst 0) (cst 32) [ store (aref "a" (ix "i")) (flt 1.0) ];
        loop "j" (cst 0) (cst 33) [ store (aref "b" (ix "j")) (flt 2.0) ];
      ]
  in
  let l1, l2 = loops_of p in
  match Fuse.apply l1 l2 with
  | Error (Fuse.Shape_mismatch _) -> ()
  | _ -> Alcotest.fail "expected shape mismatch"

let test_fusion_renames_second_var () =
  let open Builder in
  let p =
    program "vars"
      ~arrays:[ array_decl "a" 64; array_decl "b" 64; array_decl "c" 64 ]
      [
        loop "i" (cst 0) (cst 64) [ store (aref "a" (ix "i")) (arr "c" (ix "i")) ];
        loop "j" (cst 0) (cst 64) [ store (aref "b" (ix "j")) (arr "c" (ix "j") * flt 3.0) ];
      ]
  in
  let l1, l2 = loops_of p in
  match Fuse.apply l1 l2 with
  | Error e -> Alcotest.failf "fusion failed: %a" Fuse.pp_error e
  | Ok fused ->
      let p2 = replace_nest p [ fused ] in
      Alcotest.(check bool) "semantics across variable rename" true
        (semantics_equal p p2 (float_init [ "c" ] 64))

let test_fusion_privatizes_scalars () =
  let open Builder in
  let p =
    program "scal"
      ~arrays:[ array_decl "a" 64; array_decl "oa" 64; array_decl "ob" 64 ]
      [
        loop "i" (cst 0) (cst 64)
          [ assign "t" (arr "a" (ix "i")); store (aref "oa" (ix "i")) (sc "t" * sc "t") ];
        loop "i" (cst 0) (cst 64)
          [ assign "t" (arr "a" (ix "i")); store (aref "ob" (ix "i")) (sc "t" + flt 1.0) ];
      ]
  in
  let l1, l2 = loops_of p in
  match Fuse.apply l1 l2 with
  | Error e -> Alcotest.failf "fusion failed: %a" Fuse.pp_error e
  | Ok fused ->
      let p2 = replace_nest p [ fused ] in
      Alcotest.(check bool) "semantics with renamed temporaries" true
        (semantics_equal p p2 (float_init [ "a" ] 64))

let test_fuse_adjacent_sweep () =
  let p = two_loops () in
  let p2, n = Fuse.fuse_adjacent p in
  Alcotest.(check int) "one fusion" 1 n;
  Alcotest.(check int) "single top-level loop" 1 (List.length p2.Ast.body);
  Alcotest.(check bool) "semantics" true
    (semantics_equal p p2 (float_init [ "a"; "b" ] 128))



let test_fusion_irregular_store_illegal () =
  let open Builder in
  let p =
    program "irrf"
      ~arrays:[ array_decl "a" 64; array_decl "idx" 64; array_decl "b" 64 ]
      [
        loop "i" (cst 0) (cst 64)
          [ store (iref "a" (arr "idx" (ix "i"))) (flt 1.0) ];
        loop "i" (cst 0) (cst 64)
          [ store (aref "b" (ix "i")) (arr "a" (ix "i")) ];
      ]
  in
  let l1, l2 = loops_of p in
  match Fuse.apply l1 l2 with
  | Error (Fuse.Illegal _) -> ()
  | _ -> Alcotest.fail "irregular store must forbid fusion"

let test_fusion_scalar_conflict () =
  let open Builder in
  (* the second loop reads s before writing it: its value comes from the
     end of the first loop, which fusion would change *)
  let p =
    program "conflict"
      ~arrays:[ array_decl "a" 64; array_decl "o" 64 ]
      [
        loop "i" (cst 0) (cst 64) [ assign "s" (arr "a" (ix "i")) ];
        loop "i" (cst 0) (cst 64)
          [ store (aref "o" (ix "i")) (sc "s"); assign "s" (flt 0.0) ];
      ]
  in
  let l1, l2 = loops_of p in
  match Fuse.apply l1 l2 with
  | Error (Fuse.Scalar_conflict _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Fuse.pp_error e
  | Ok _ -> Alcotest.fail "carried scalar must forbid fusion"

(* ---------------------------- Prefetching -------------------------- *)

let test_prefetch_preserves_semantics () =
  let p = fig2a ~rows:17 ~cols:13 () in
  let p2, added = Prefetch_pass.insert p in
  Alcotest.(check bool) "hints inserted" true (added > 0);
  Alcotest.(check bool) "prefetch is a pure hint" true
    (semantics_equal p p2 (float_init [ "a" ] (17 * 13)))

let test_prefetch_distance () =
  (* tiny body: distance = latency / (ops/width) is large *)
  let small =
    let open Builder in
    [ store (aref "a" (ix "i")) (flt 1.0) ]
  in
  let d_small = Prefetch_pass.distance_for ~latency:85 ~issue_width:4 small in
  Alcotest.(check bool) "small body -> far ahead" true (d_small >= 20);
  let big =
    let open Builder in
    List.init 30 (fun k -> store (aref "a" (ix "i" +: cst k)) (flt 1.0))
  in
  let d_big = Prefetch_pass.distance_for ~latency:85 ~issue_width:4 big in
  Alcotest.(check bool) "big body -> closer" true (d_big < d_small && d_big >= 1)

let test_prefetch_skips_chases () =
  let p = chains_program ~chains:4 ~region_nodes:50 ~count:(Some 5) in
  let _, added = Prefetch_pass.insert p in
  Alcotest.(check int) "no hints for pointer chasing" 0 added

let test_prefetch_irregular () =
  let open Builder in
  let p =
    program "irr"
      ~arrays:[ array_decl "v" 128; array_decl "idx" 128; array_decl "o" 128 ]
      [
        loop "i" (cst 0) (cst 128)
          [ store (aref "o" (ix "i")) (ld (iref "v" (arr "idx" (ix "i")))) ];
      ]
  in
  let p2, added = Prefetch_pass.insert p in
  Alcotest.(check bool) "irregular hint present" true (added >= 1);
  let init d =
    for i = 0 to 127 do
      let v = Stdlib.( mod ) (Stdlib.( * ) i 31) 128 in
      Data.set d "idx" i (Ast.Vint v);
      Data.set d "v" i (Ast.Vfloat (float_of_int i))
    done
  in
  Alcotest.(check bool) "semantics with indirect prefetch" true
    (semantics_equal p p2 init)


(* ------------------------- Balanced scheduling --------------------- *)

let test_balanced_is_permutation () =
  let open Builder in
  let p =
    program "bal"
      ~arrays:[ array_decl "a" 640; array_decl "b" 640; array_decl "o" 640 ]
      [
        loop "i" (cst 0) (cst 64)
          [
            assign "x" (arr "a" (8 *: ix "i"));
            store (aref "o" (8 *: ix "i")) (sc "x" * flt 2.0);
            assign "y" (arr "b" (8 *: ix "i"));
            store (aref "o" ((8 *: ix "i")) ) (sc "x" + sc "y");
          ];
      ]
  in
  let loc = Memclust_locality.Locality.analyze ~line_size:64 p in
  let l = outer_of p in
  let out = Balanced_sched.reorder loc l.Ast.body in
  Alcotest.(check int) "permutation" (List.length l.Ast.body) (List.length out);
  let p2 = replace_nest p [ Ast.Loop { l with Ast.body = out } ] in
  Alcotest.(check bool) "semantics" true
    (semantics_equal p p2 (float_init [ "a"; "b" ] 640))

let prop_balanced_semantics =
  QCheck.Test.make ~name:"balanced scheduling preserves semantics" ~count:40
    Gen_program.arbitrary
    (fun cfg ->
      let p = Gen_program.build cfg in
      let loc = Memclust_locality.Locality.analyze ~line_size:64 p in
      let p2 =
        Program.renumber
          { p with
            Ast.body =
              List.map
                (fun st ->
                  match st with
                  | Ast.Loop l ->
                      Ast.Loop
                        {
                          l with
                          Ast.body =
                            List.map
                              (function
                                | Ast.Loop il ->
                                    Ast.Loop
                                      { il with Ast.body = Balanced_sched.reorder loc il.Ast.body }
                                | s -> s)
                              l.Ast.body;
                        }
                  | s -> s)
                p.Ast.body;
          }
      in
      semantics_equal p p2 (Gen_program.init cfg))

let () =
  Alcotest.run "transform"
    [
      ( "subst",
        [
          Alcotest.test_case "shift var" `Quick test_shift_var;
          Alcotest.test_case "rename scalars/chase" `Quick test_rename_scalars_chase;
        ] );
      ( "legality",
        [
          Alcotest.test_case "independent rows" `Quick test_legal_independent_rows;
          Alcotest.test_case "carried dependence" `Quick test_illegal_carried;
          Alcotest.test_case "parallel override" `Quick test_parallel_overrides;
          Alcotest.test_case "GCD saves LU pattern" `Quick test_gcd_saves_lu_pattern;
          Alcotest.test_case "interchange (<,>) illegal" `Quick test_interchange_stencil_illegal;
          Alcotest.test_case "interchange legal" `Quick test_interchange_legal_and_semantics;
        ] );
      ( "unroll-and-jam",
        [
          Alcotest.test_case "exact division" `Quick test_uj_exact_division;
          Alcotest.test_case "with postlude" `Quick test_uj_with_postlude;
          Alcotest.test_case "factor 1" `Quick test_uj_factor_one;
          Alcotest.test_case "too few iterations" `Quick test_uj_too_few_iterations;
          Alcotest.test_case "carried scalar refused" `Quick test_uj_carried_scalar_refused;
          Alcotest.test_case "postlude interchanged" `Quick test_uj_postlude_interchanged;
          Alcotest.test_case "scalar renaming" `Quick test_uj_scalar_renaming;
          qtest prop_uj_semantics;
        ] );
      ( "chase jam",
        [
          Alcotest.test_case "equal counts" `Quick test_jam_equal_counts;
          Alcotest.test_case "variable lengths" `Quick test_jam_variable_lengths_guarded;
          qtest prop_jam_ragged;
        ] );
      ( "inner unroll",
        [
          Alcotest.test_case "accumulator" `Quick test_inner_unroll_semantics;
          Alcotest.test_case "privatizes temps" `Quick test_inner_unroll_privatizes_temps;
        ] );
      ( "strip-mine",
        [
          Alcotest.test_case "semantics" `Quick test_strip_mine_semantics;
          Alcotest.test_case "strip+interchange" `Quick test_strip_and_interchange;
          Alcotest.test_case "indivisible" `Quick test_strip_indivisible;
        ] );
      ( "scalar replace",
        [
          Alcotest.test_case "cse" `Quick test_scalar_replace_cse;
          Alcotest.test_case "store forward" `Quick test_scalar_replace_store_forward;
          Alcotest.test_case "aliasing safe" `Quick test_scalar_replace_aliasing_safe;
          Alcotest.test_case "irregular store skipped" `Quick test_scalar_replace_skips_irregular_store;
          qtest prop_scalar_replace_semantics;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "permutation + packing" `Quick test_pack_is_permutation;
          Alcotest.test_case "respects deps" `Quick test_pack_respects_deps;
        ] );
      ( "prefetch",
        [
          Alcotest.test_case "pure hint" `Quick test_prefetch_preserves_semantics;
          Alcotest.test_case "distance rule" `Quick test_prefetch_distance;
          Alcotest.test_case "skips chases" `Quick test_prefetch_skips_chases;
          Alcotest.test_case "irregular" `Quick test_prefetch_irregular;
        ] );
      ( "balanced scheduling",
        [
          Alcotest.test_case "permutation + semantics" `Quick test_balanced_is_permutation;
          QCheck_alcotest.to_alcotest prop_balanced_semantics;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "forward dep legal" `Quick test_fusion_forward_dep_legal;
          Alcotest.test_case "backward dep illegal" `Quick test_fusion_backward_dep_illegal;
          Alcotest.test_case "shape mismatch" `Quick test_fusion_shape_mismatch;
          Alcotest.test_case "variable rename" `Quick test_fusion_renames_second_var;
          Alcotest.test_case "scalar privatization" `Quick test_fusion_privatizes_scalars;
          Alcotest.test_case "fuse_adjacent" `Quick test_fuse_adjacent_sweep;
          Alcotest.test_case "irregular store illegal" `Quick test_fusion_irregular_store_illegal;
          Alcotest.test_case "scalar conflict" `Quick test_fusion_scalar_conflict;
        ] );
    ]
