open Memclust_ir
open Memclust_locality
open Memclust_workloads

(* scaled-down instances so the suite stays fast *)
let small () =
  [
    Latbench.make ~chains:8 ~derefs:32 ();
    Em3d.make ~nodes:256 ~degree:4 ();
    Erlebacher.make ~n:8 ();
    Fft.make ~m:16 ();
    Lu.make ~n:32 ~block:8 ();
    Mp3d.make ~particles:256 ~cells_per_side:4 ~steps:1 ();
    Mst.make ~vertices:64 ~buckets:16 ~nodes:128 ();
    Ocean.make ~n:18 ~iters:1 ();
  ]

let test_validates (w : Workload.t) () =
  match Program.validate w.Workload.program with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_executes (w : Workload.t) () =
  let d = Data.create w.Workload.program in
  w.Workload.init d;
  Exec.run ~max_ops:50_000_000 w.Workload.program d

let test_deterministic (w : Workload.t) () =
  let d1 = Data.create w.Workload.program in
  let d2 = Data.create w.Workload.program in
  w.Workload.init d1;
  w.Workload.init d2;
  Alcotest.(check bool) "init deterministic" true (Data.equal d1 d2);
  Exec.run w.Workload.program d1;
  Exec.run w.Workload.program d2;
  Alcotest.(check bool) "execution deterministic" true (Data.equal d1 d2)

let per_workload () =
  List.concat_map
    (fun w ->
      [
        Alcotest.test_case (w.Workload.name ^ " validates") `Quick (test_validates w);
        Alcotest.test_case (w.Workload.name ^ " executes") `Quick (test_executes w);
        Alcotest.test_case (w.Workload.name ^ " deterministic") `Quick
          (test_deterministic w);
      ])
    (small ())

(* ------------------- structural expectations ----------------------- *)

let test_registry () =
  Alcotest.(check int) "seven applications" 7 (List.length (Registry.applications ()));
  Alcotest.(check bool) "lookup case-insensitive" true
    (Registry.by_name "em3d" <> None);
  Alcotest.(check bool) "latbench found" true (Registry.by_name "Latbench" <> None);
  Alcotest.(check bool) "unknown none" true (Registry.by_name "nope" = None)

let test_latbench_all_miss () =
  (* shuffled chains: virtually every dereference misses a 4KB cache *)
  let w = Latbench.make ~chains:8 ~derefs:64 () in
  let d = Data.create w.Workload.program in
  w.Workload.init d;
  let prof = Profile.run ~cache_bytes:4096 w.Workload.program d in
  let c = List.hd (Program.chases w.Workload.program) in
  Alcotest.(check bool) "miss rate ~1" true
    (Profile.miss_rate prof c.Ast.next_ref_id > 0.95)

let test_latbench_chain_lengths () =
  let w = Latbench.make ~chains:4 ~derefs:16 () in
  let d = Data.create w.Workload.program in
  w.Workload.init d;
  (* walking each chain takes exactly derefs steps before null *)
  for j = 0 to 3 do
    let rec walk p n =
      if p = 0 then n
      else
        match Data.field_get d "nodes" ~ptr:p ~field:0 with
        | Ast.Vptr next -> walk next (n + 1)
        | _ -> Alcotest.fail "next not a pointer"
    in
    match Data.get d "starts" j with
    | Ast.Vptr p -> Alcotest.(check int) "chain length" 16 (walk p 0)
    | _ -> Alcotest.fail "start not a pointer"
  done

let test_em3d_remote_fraction () =
  let nodes = 1024 and degree = 8 in
  let w = Em3d.make ~nodes ~degree ~remote_pct:20 () in
  let d = Data.create w.Workload.program in
  w.Workload.init d;
  (* with 16-processor partitioning, ~20% of eidx entries leave the
     owner's chunk (local picks can also cross by chance, so allow slack) *)
  let chunk = (nodes + 15) / 16 in
  let crossing = ref 0 in
  let total = nodes * degree in
  for e = 0 to total - 1 do
    let n = e / degree in
    match Data.get d "eidx" e with
    | Ast.Vint target -> if target / chunk <> n / chunk then incr crossing
    | _ -> Alcotest.fail "eidx not int"
  done;
  let frac = float_of_int !crossing /. float_of_int total in
  Alcotest.(check bool) "remote fraction near 20%" true (frac > 0.1 && frac < 0.35)

let test_mst_buckets_nonempty () =
  let w = Mst.make ~vertices:32 ~buckets:8 ~nodes:64 () in
  let d = Data.create w.Workload.program in
  w.Workload.init d;
  for b = 0 to 7 do
    match Data.get d "heads" b with
    | Ast.Vptr p -> Alcotest.(check bool) "bucket nonempty" true (p <> 0)
    | _ -> Alcotest.fail "head not pointer"
  done

let test_mp3d_padded_records () =
  let w = Mp3d.make ~particles:16 ~cells_per_side:4 ~steps:1 () in
  let loc = Locality.analyze ~line_size:64 w.Workload.program in
  (* every particle-field load shares one leading reference per record *)
  let part_leaders =
    List.filter
      (fun (i : Locality.info) ->
        i.Locality.array = Some "part"
        && (not i.Locality.is_store)
        && match i.Locality.kind with Locality.Leading_regular _ -> true | _ -> false)
      (Locality.infos loc)
  in
  Alcotest.(check int) "one leading load per padded record" 1
    (List.length part_leaders)

let test_ocean_row_alignment () =
  let w = Ocean.make ~n:18 ~iters:1 () in
  let d = Data.create w.Workload.program in
  (* padded pitch: consecutive rows are whole cache lines apart *)
  let row_bytes = Data.array_bytes d "q" / 18 in
  Alcotest.(check int) "row pitch is line-aligned" 0 (row_bytes mod 64)

let test_table2_scaling () =
  List.iter
    (fun (w : Workload.t) ->
      Alcotest.(check bool)
        (w.Workload.name ^ " has paper-consistent procs")
        true
        (match w.Workload.name with
        | "Latbench" | "MST" -> w.Workload.mp_procs = 1
        | "LU" | "Mp3d" | "Ocean" | "Erlebacher" -> w.Workload.mp_procs = 8
        | _ -> w.Workload.mp_procs = 16))
    (Registry.latbench () :: Registry.applications ())

let () =
  Alcotest.run "workloads"
    [
      ("each", per_workload ());
      ( "structure",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "latbench all-miss" `Quick test_latbench_all_miss;
          Alcotest.test_case "latbench chains" `Quick test_latbench_chain_lengths;
          Alcotest.test_case "em3d remote edges" `Quick test_em3d_remote_fraction;
          Alcotest.test_case "mst buckets" `Quick test_mst_buckets_nonempty;
          Alcotest.test_case "mp3d padding" `Quick test_mp3d_padded_records;
          Alcotest.test_case "ocean row alignment" `Quick test_ocean_row_alignment;
          Alcotest.test_case "table2 scaling" `Quick test_table2_scaling;
        ] );
    ]
