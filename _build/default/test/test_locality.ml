open Memclust_ir
open Memclust_locality

let qtest = QCheck_alcotest.to_alcotest

(* the paper's first example:
   for j: for i: b[j,2i] = b[j,2i] + a[j,i] + a[j,i-1] *)
let paper_example_1 n =
  let open Builder in
  program "ex1"
    ~arrays:[ array_decl "a" (Stdlib.( * ) n n); array_decl "b" (Stdlib.( * ) (Stdlib.( * ) 2 n) n) ]
    [
      loop "j" (cst 0) (cst n)
        [
          loop "i" (cst 1) (cst n)
            [
              store
                (aref "b" (idx2 ~cols:(Stdlib.( * ) 2 n) (ix "j") (2 *: ix "i")))
                (arr "b" (idx2 ~cols:(Stdlib.( * ) 2 n) (ix "j") (2 *: ix "i"))
                + arr "a" (idx2 ~cols:n (ix "j") (ix "i"))
                + arr "a" (idx2 ~cols:n (ix "j") (ix "i" -: cst 1)));
            ];
        ];
    ]

let find_ref p ~array ~konst =
  let refs = Program.refs p in
  (List.find
     (fun (r : Program.ref_info) ->
       match r.ref_.target with
       | Ast.Direct { array = a; index } ->
           String.equal a array && Affine.constant index = konst
       | _ -> false)
     refs)
    .ref_.ref_id

let test_paper_example_1 () =
  let p = paper_example_1 16 in
  let loc = Locality.analyze ~line_size:64 p in
  (* a[j,i] leads; a[j,i-1] follows at distance 1 *)
  let a_i = find_ref p ~array:"a" ~konst:0 in
  let a_im1 = find_ref p ~array:"a" ~konst:(-1) in
  (match (Locality.info loc a_i).kind with
  | Locality.Leading_regular { lm = 8; self_spatial = true } -> ()
  | k -> Alcotest.failf "a[j,i]: %s" (match k with
      | Locality.Leading_regular _ -> "leading with wrong lm"
      | Locality.Leading_irregular -> "irregular"
      | Locality.Follower _ -> "follower"
      | Locality.Inner_invariant -> "invariant"));
  (match (Locality.info loc a_im1).kind with
  | Locality.Follower { leader; distance = 1 } when leader = a_i -> ()
  | _ -> Alcotest.fail "a[j,i-1] should follow a[j,i] at distance 1");
  (* b refs: stride 2 elements = 16B -> self-spatial with lm = 4 *)
  let infos = Locality.infos loc in
  let b_leaders =
    List.filter
      (fun (i : Locality.info) ->
        i.array = Some "b"
        && match i.kind with Locality.Leading_regular _ -> true | _ -> false)
      infos
  in
  Alcotest.(check int) "one b leader (load/store same element)" 1
    (List.length b_leaders);
  match (List.hd b_leaders).kind with
  | Locality.Leading_regular { lm = 4; self_spatial = true } -> ()
  | _ -> Alcotest.fail "b lm should be 4"

let test_indirect_irregular () =
  let p =
    let open Builder in
    program "ind"
      ~arrays:[ array_decl "idx" 64; array_decl "v" 64; array_decl "out" 64 ]
      [
        loop "i" (cst 0) (cst 64)
          [ store (aref "out" (ix "i")) (ld (iref "v" (arr "idx" (ix "i")))) ];
      ]
  in
  let loc = Locality.analyze ~line_size:64 p in
  let v_ref =
    List.find
      (fun (r : Program.ref_info) ->
        match r.ref_.target with Ast.Indirect _ -> true | _ -> false)
      (Program.refs p)
  in
  match (Locality.info loc v_ref.ref_.ref_id).kind with
  | Locality.Leading_irregular -> ()
  | _ -> Alcotest.fail "indirect ref must be irregular leading"

(* regression: unrolled copies touching different rows must be separate
   leading references, not same-line followers *)
let test_unrolled_rows_are_leaders () =
  let n = 64 in
  let p =
    let open Builder in
    program "rows"
      ~arrays:[ array_decl "a" (Stdlib.( * ) n n); array_decl "s" 4 ]
      [
        loop ~step:4 "j" (cst 0) (cst n)
          [
            loop "i" (cst 0) (cst n)
              [
                assign "t0" (arr "a" (idx2 ~cols:n (ix "j") (ix "i")));
                assign "t1" (arr "a" (idx2 ~cols:n (ix "j" +: cst 1) (ix "i")));
                assign "t2" (arr "a" (idx2 ~cols:n (ix "j" +: cst 2) (ix "i")));
                store (aref "s" (cst 0)) (sc "t0" + sc "t1" + sc "t2");
              ];
          ];
      ]
  in
  let loc = Locality.analyze ~line_size:64 p in
  let leaders =
    List.filter
      (fun (i : Locality.info) ->
        i.array = Some "a"
        && match i.kind with Locality.Leading_regular _ -> true | _ -> false)
      (Locality.infos loc)
  in
  Alcotest.(check int) "three separate row streams" 3 (List.length leaders)

(* stencil rows: q[i-1,j] and q[i+1,j] reuse across the outer loop *)
let test_stencil_outer_reuse () =
  let n = 64 in
  let p =
    let open Builder in
    program "stencil"
      ~arrays:[ array_decl "q" (Stdlib.( * ) n n); array_decl "o" (Stdlib.( * ) n n) ]
      [
        loop "i" (cst 1) (cst (Stdlib.( - ) n 1))
          [
            loop "j" (cst 0) (cst n)
              [
                store (aref "o" (idx2 ~cols:n (ix "i") (ix "j")))
                  (arr "q" (idx2 ~cols:n (ix "i" -: cst 1) (ix "j"))
                  + arr "q" (idx2 ~cols:n (ix "i") (ix "j"))
                  + arr "q" (idx2 ~cols:n (ix "i" +: cst 1) (ix "j")));
              ];
          ];
      ]
  in
  let loc = Locality.analyze ~line_size:64 p in
  let q_infos =
    List.filter (fun (i : Locality.info) -> i.array = Some "q") (Locality.infos loc)
  in
  let leaders =
    List.filter
      (fun (i : Locality.info) ->
        match i.kind with Locality.Leading_regular _ -> true | _ -> false)
      q_infos
  in
  Alcotest.(check int) "one q leader" 1 (List.length leaders);
  Alcotest.(check int) "two q followers" 2
    (List.length
       (List.filter
          (fun (i : Locality.info) ->
            match i.kind with Locality.Follower _ -> true | _ -> false)
          q_infos))

let test_inner_invariant () =
  let p =
    let open Builder in
    program "inv"
      ~arrays:[ array_decl "a" 64; array_decl "s" 64 ]
      [
        loop "j" (cst 0) (cst 8)
          [
            loop "i" (cst 0) (cst 8)
              [ store (aref "s" (ix "j")) (arr "s" (ix "j") + arr "a" (idx2 ~cols:8 (ix "j") (ix "i"))) ];
          ];
      ]
  in
  let loc = Locality.analyze ~line_size:64 p in
  let s_infos =
    List.filter (fun (i : Locality.info) -> i.array = Some "s") (Locality.infos loc)
  in
  Alcotest.(check bool) "s refs inner-invariant" true
    (List.for_all
       (fun (i : Locality.info) -> i.kind = Locality.Inner_invariant)
       s_infos)

(* pointer chase: body field leads, the implicit next load follows *)
let test_chase_field_grouping () =
  let p =
    let open Builder in
    program "walk"
      ~arrays:[ array_decl "start" 4 ]
      ~regions:[ region_decl ~node_size:32 "n" 16 ]
      [
        loop "v" (cst 0) (cst 4)
          [
            assign "s" (flt 0.0);
            chase "p" ~init:(ld (aref "start" (ix "v"))) ~region:"n" ~next:0
              [ assign "s" (sc "s" + ld (fref "n" (sc "p") 2)) ];
          ];
      ]
  in
  let loc = Locality.analyze ~line_size:64 p in
  let c = List.hd (Program.chases p) in
  let data_ref =
    List.find
      (fun (r : Program.ref_info) ->
        match r.ref_.target with Ast.Field _ -> true | _ -> false)
      (Program.refs p)
  in
  (match (Locality.info loc data_ref.ref_.ref_id).kind with
  | Locality.Leading_irregular -> ()
  | _ -> Alcotest.fail "body field should lead");
  match (Locality.info loc c.Ast.next_ref_id).kind with
  | Locality.Follower { leader; distance = 0 } when leader = data_ref.ref_.ref_id -> ()
  | _ -> Alcotest.fail "next load should follow the body field (same node line)"

let test_chase_empty_body_next_leads () =
  let p =
    let open Builder in
    program "walk2"
      ~arrays:[ array_decl "start" 4 ]
      ~regions:[ region_decl ~node_size:64 "n" 16 ]
      [
        loop "v" (cst 0) (cst 4)
          [ chase "p" ~init:(ld (aref "start" (ix "v"))) ~region:"n" ~next:0 [] ];
      ]
  in
  let loc = Locality.analyze ~line_size:64 p in
  let c = List.hd (Program.chases p) in
  match (Locality.info loc c.Ast.next_ref_id).kind with
  | Locality.Leading_irregular -> ()
  | _ -> Alcotest.fail "lone next load must lead"

let test_negative_stride () =
  let p =
    let open Builder in
    program "neg"
      ~arrays:[ array_decl "a" 64; array_decl "o" 64 ]
      [
        loop "i" (cst 0) (cst 64)
          [ store (aref "o" (ix "i")) (arr "a" (cst 63 -: ix "i")) ];
      ]
  in
  let loc = Locality.analyze ~line_size:64 p in
  let a_info =
    List.find (fun (i : Locality.info) -> i.array = Some "a") (Locality.infos loc)
  in
  (match a_info.kind with
  | Locality.Leading_regular { lm = 8; self_spatial = true } -> ()
  | _ -> Alcotest.fail "negative stride still self-spatial");
  Alcotest.(check int) "stride bytes" (-8) a_info.stride_bytes

(* large stride: no self-spatial locality *)
let test_column_stride () =
  let n = 64 in
  let p =
    let open Builder in
    program "col"
      ~arrays:[ array_decl "a" (Stdlib.( * ) n n); array_decl "o" 64 ]
      [
        loop "i" (cst 0) (cst n)
          [ store (aref "o" (cst 0)) (arr "a" (idx2 ~cols:n (ix "i") (cst 3))) ];
      ]
  in
  let loc = Locality.analyze ~line_size:64 p in
  let a_info =
    List.find (fun (i : Locality.info) -> i.array = Some "a") (Locality.infos loc)
  in
  match a_info.kind with
  | Locality.Leading_regular { lm = 1; self_spatial = false } -> ()
  | _ -> Alcotest.fail "column traversal is leading without self-spatial reuse"


let test_invariant_group_all () =
  (* several inner-invariant refs to one array stay invariant *)
  let p =
    let open Builder in
    program "invg"
      ~arrays:[ array_decl "c" 16; array_decl "o" 64 ]
      [
        loop "j" (cst 0) (cst 8)
          [
            loop "i" (cst 0) (cst 8)
              [
                store (aref "o" (idx2 ~cols:8 (ix "j") (ix "i")))
                  (arr "c" (ix "j") + arr "c" (ix "j" +: cst 1));
              ];
          ];
      ]
  in
  let loc = Locality.analyze ~line_size:64 p in
  let c_infos =
    List.filter (fun (i : Locality.info) -> i.array = Some "c") (Locality.infos loc)
  in
  Alcotest.(check int) "two refs" 2 (List.length c_infos);
  Alcotest.(check bool) "all invariant" true
    (List.for_all (fun (i : Locality.info) -> i.kind = Locality.Inner_invariant) c_infos)

let test_profile_direct_mapped_conflict () =
  (* two streams 4 KB apart thrash a 4 KB direct-mapped cache *)
  let p =
    let open Builder in
    program "dmc"
      ~arrays:[ array_decl "a" 512; array_decl "b" 512; array_decl "o" 1 ]
      [
        assign "s" (flt 0.0);
        loop "t" (cst 0) (cst 4)
          [
            loop "i" (cst 0) (cst 512)
              [ assign "s" (sc "s" + arr "a" (ix "i") + arr "b" (ix "i")) ];
          ];
        store (aref "o" (cst 0)) (sc "s");
      ]
  in
  let d = Data.create p in
  let direct = Profile.run ~cache_bytes:4096 ~assoc:1 ~line_size:64 p d in
  let assoc2 = Profile.run ~cache_bytes:4096 ~assoc:2 ~line_size:64 p d in
  let total t =
    List.fold_left
      (fun acc (r : Program.ref_info) -> acc + Profile.misses t r.ref_.ref_id)
      0 (Program.refs p)
  in
  Alcotest.(check bool) "associativity removes conflict misses" true
    (total assoc2 < total direct)

(* ---------------------------- Profile ------------------------------ *)

let test_profile_stream () =
  (* streaming over 64KB with a 4KB cache: miss once per line *)
  let p =
    let open Builder in
    program "stream"
      ~arrays:[ array_decl "a" 8192; array_decl "o" 1 ]
      [
        assign "s" (flt 0.0);
        loop "i" (cst 0) (cst 8192) [ assign "s" (sc "s" + arr "a" (ix "i")) ];
        store (aref "o" (cst 0)) (sc "s");
      ]
  in
  let d = Data.create p in
  let prof = Profile.run ~cache_bytes:4096 ~assoc:4 ~line_size:64 p d in
  let a_ref =
    (List.find
       (fun (r : Program.ref_info) ->
         match r.ref_.target with Ast.Direct { array = "a"; _ } -> true | _ -> false)
       (Program.refs p))
      .ref_.ref_id
  in
  Alcotest.(check int) "accesses" 8192 (Profile.accesses prof a_ref);
  Alcotest.(check int) "one miss per 8-element line" 1024 (Profile.misses prof a_ref);
  Alcotest.(check (float 1e-9)) "miss rate" 0.125 (Profile.miss_rate prof a_ref)

let test_profile_resident () =
  (* data fits: only cold misses *)
  let p =
    let open Builder in
    program "hot"
      ~arrays:[ array_decl "a" 64; array_decl "o" 1 ]
      [
        assign "s" (flt 0.0);
        loop "t" (cst 0) (cst 16)
          [ loop "i" (cst 0) (cst 64) [ assign "s" (sc "s" + arr "a" (ix "i")) ] ];
        store (aref "o" (cst 0)) (sc "s");
      ]
  in
  let d = Data.create p in
  let prof = Profile.run ~cache_bytes:4096 ~assoc:4 ~line_size:64 p d in
  let a_ref =
    (List.find
       (fun (r : Program.ref_info) ->
         match r.ref_.target with Ast.Direct { array = "a"; _ } -> true | _ -> false)
       (Program.refs p))
      .ref_.ref_id
  in
  Alcotest.(check int) "cold misses only" 8 (Profile.misses prof a_ref)

let test_profile_unexecuted () =
  let p =
    let open Builder in
    program "dead"
      ~arrays:[ array_decl "a" 8 ]
      [ if_ (flt 1.0 < flt 0.0) [ use (arr "a" (cst 0)) ] [] ]
  in
  let d = Data.create p in
  let prof = Profile.run p d in
  let a_ref =
    (List.find (fun (_ : Program.ref_info) -> true) (Program.refs p)).ref_.ref_id
  in
  Alcotest.(check (float 1e-9)) "unexecuted assumed 1.0" 1.0
    (Profile.miss_rate prof a_ref)

let prop_profile_doesnt_mutate =
  QCheck.Test.make ~name:"profile leaves caller data intact" ~count:20
    QCheck.small_int (fun seed ->
      let p =
        let open Builder in
        program "mut"
          ~arrays:[ array_decl "a" 32 ]
          [ loop "i" (cst 0) (cst 32) [ store (aref "a" (ix "i")) (arr "a" (ix "i") + flt 1.0) ] ]
      in
      let d = Data.create p in
      Data.set d "a" 0 (Ast.Vfloat (float_of_int seed));
      let before = Data.copy d in
      ignore (Profile.run p d);
      Data.equal before d)

let () =
  Alcotest.run "locality"
    [
      ( "classification",
        [
          Alcotest.test_case "paper example 1" `Quick test_paper_example_1;
          Alcotest.test_case "indirect irregular" `Quick test_indirect_irregular;
          Alcotest.test_case "unrolled rows lead" `Quick test_unrolled_rows_are_leaders;
          Alcotest.test_case "stencil outer reuse" `Quick test_stencil_outer_reuse;
          Alcotest.test_case "inner invariant" `Quick test_inner_invariant;
          Alcotest.test_case "chase field grouping" `Quick test_chase_field_grouping;
          Alcotest.test_case "lone next leads" `Quick test_chase_empty_body_next_leads;
          Alcotest.test_case "negative stride" `Quick test_negative_stride;
          Alcotest.test_case "column stride" `Quick test_column_stride;
          Alcotest.test_case "invariant group" `Quick test_invariant_group_all;
        ] );
      ( "profile",
        [
          Alcotest.test_case "stream" `Quick test_profile_stream;
          Alcotest.test_case "resident" `Quick test_profile_resident;
          Alcotest.test_case "unexecuted" `Quick test_profile_unexecuted;
          Alcotest.test_case "direct-mapped conflicts" `Quick test_profile_direct_mapped_conflict;
          qtest prop_profile_doesnt_mutate;
        ] );
    ]
