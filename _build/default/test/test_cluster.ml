open Memclust_ir
open Memclust_locality
open Memclust_depgraph
open Memclust_cluster

(* ------------------------- f estimation ---------------------------- *)

let fig2a ?(rows = 64) ?(cols = 64) () =
  let open Builder in
  program "fig2a"
    ~arrays:[ array_decl "a" (Stdlib.( * ) rows cols); array_decl "s" rows ]
    [
      loop "j" (cst 0) (cst rows)
        [
          loop "i" (cst 0) (cst cols)
            [
              store (aref "s" (ix "j"))
                (arr "s" (ix "j") + arr "a" (idx2 ~cols (ix "j") (ix "i")));
            ];
        ];
    ]

let inner_of p =
  match p.Ast.body with
  | [ Ast.Loop l ] -> (
      match l.Ast.body with [ Ast.Loop i ] -> Depgraph.Counted i | _ -> assert false)
  | _ -> assert false

let test_f_base () =
  let p = fig2a () in
  let loc = Locality.analyze ~line_size:64 p in
  let inner = inner_of p in
  let graph = Depgraph.analyze loc inner in
  let f = Festimate.compute Machine_model.base loc ~pm:(fun _ -> 1.0) ~graph inner in
  (* one regular leading ref (a), lm=8, body ~7 ops: C = ceil(64/56) = 2 *)
  Alcotest.(check int) "regular leading refs" 1 f.Festimate.regular_leading;
  Alcotest.(check int) "irregular leading refs" 0 f.Festimate.irregular_leading;
  Alcotest.(check bool) "f small" true (f.Festimate.f <= 2.0);
  Alcotest.(check (float 1e-9)) "density 1/8" 0.125 f.Festimate.misses_per_iteration

let test_f_address_recurrence_c1 () =
  (* pointer chase: C_m forced to 1 even with a tiny body *)
  let p =
    let open Builder in
    program "chase"
      ~arrays:[ array_decl "start" 8 ]
      ~regions:[ region_decl ~node_size:64 "n" 64 ]
      [
        loop "j" (cst 0) (cst 8)
          [ chase "p" ~init:(ld (aref "start" (ix "j"))) ~region:"n" ~next:0 [] ];
      ]
  in
  let loc = Locality.analyze ~line_size:64 p in
  let c = List.hd (Program.chases p) in
  let graph = Depgraph.analyze loc (Depgraph.Chased c) in
  let f =
    Festimate.compute Machine_model.base loc ~pm:(fun _ -> 1.0) ~graph
      (Depgraph.Chased c)
  in
  Alcotest.(check (float 1e-9)) "f = 1 (one serialized chain)" 1.0 f.Festimate.f

let test_f_irregular_rounding () =
  (* two irregular refs with Pm=0.2: sum 0.4 rounds up to 1 *)
  let p =
    let open Builder in
    program "irr"
      ~arrays:[ array_decl "v" 256; array_decl "idx" 256; array_decl "o" 64 ]
      [
        loop "i" (cst 0) (cst 64)
          [
            store (aref "o" (ix "i"))
              (ld (iref "v" (arr "idx" (ix "i"))) + ld (iref "v" (arr "idx" (ix "i" +: cst 64))));
          ];
      ]
  in
  let loc = Locality.analyze ~line_size:64 p in
  let l = match p.Ast.body with [ Ast.Loop l ] -> l | _ -> assert false in
  let graph = Depgraph.analyze loc (Depgraph.Counted l) in
  let f =
    Festimate.compute Machine_model.base loc ~pm:(fun _ -> 0.01) ~graph
      (Depgraph.Counted l)
  in
  Alcotest.(check bool) "irregulars reserve at least one" true
    (f.Festimate.f_irreg >= 1.0)

(* --------------------------- the driver ---------------------------- *)

let no_profile = { Driver.default_options with Driver.profile_pm = false }

let test_driver_picks_lp () =
  let p = fig2a ~rows:128 ~cols:64 () in
  let p', report = Driver.run ~options:no_profile p in
  (match report.Driver.nests with
  | [ n ] -> (
      match
        List.find_opt
          (function Driver.Unroll_jam _ -> true | _ -> false)
          n.Driver.actions
      with
      | Some (Driver.Unroll_jam { factor; f_after; _ }) ->
          Alcotest.(check bool) "factor within (5,10]" true (factor > 5 && factor <= 10);
          Alcotest.(check bool) "f_after <= lp" true (f_after <= 10.0)
      | _ -> Alcotest.fail "expected an unroll-and-jam action")
  | _ -> Alcotest.fail "expected one nest");
  match Program.validate p' with Ok () -> () | Error e -> Alcotest.fail e

let test_driver_semantics () =
  let p = fig2a ~rows:77 ~cols:33 () in
  let init d =
    for i = 0 to (77 * 33) - 1 do
      Data.set d "a" i (Ast.Vfloat (float_of_int i *. 0.01))
    done
  in
  let p', _ = Driver.run ~options:no_profile ~init p in
  let d1 = Data.create p and d2 = Data.create p' in
  init d1;
  init d2;
  Exec.run p d1;
  Exec.run p' d2;
  Alcotest.(check bool) "clustered program computes the same result" true
    (Data.equal d1 d2)

let test_driver_no_enclosing_loop () =
  (* single loop with a recurrence and no parent: nothing to unroll-and-jam *)
  let p =
    let open Builder in
    program "single"
      ~arrays:[ array_decl "a" 4096; array_decl "o" 1 ]
      [
        assign "s" (flt 0.0);
        loop "i" (cst 0) (cst 4096) [ assign "s" (sc "s" + arr "a" (ix "i")) ];
        store (aref "o" (cst 0)) (sc "s");
      ]
  in
  let _, report = Driver.run ~options:no_profile p in
  Alcotest.(check bool) "no unroll-and-jam action" true
    (List.for_all
       (fun n ->
         List.for_all
           (function Driver.Unroll_jam _ -> false | _ -> true)
           n.Driver.actions)
       report.Driver.nests)

let test_driver_window_resolution () =
  (* big body, padded records, no recurrence: inner unrolling kicks in *)
  let p =
    let open Builder in
    let big_expr base =
      (* enough arithmetic to exceed the window in a few iterations *)
      let rec build k acc =
        if Stdlib.( = ) k 0 then acc
        else build (Stdlib.( - ) k 1) (acc * flt 1.0001 + flt 0.5)
      in
      build 18 base
    in
    program "bigbody"
      ~arrays:[ array_decl "recs" 8192; array_decl "o" 8192 ]
      [
        loop "i" (cst 0) (cst 1024)
          [
            assign "x" (arr "recs" (8 *: ix "i"));
            store (aref "o" (8 *: ix "i")) (big_expr (sc "x"));
          ];
      ]
  in
  let _, report = Driver.run ~options:no_profile p in
  let has_inner_unroll =
    List.exists
      (fun n ->
        List.exists
          (function Driver.Inner_unroll _ -> true | _ -> false)
          n.Driver.actions)
      report.Driver.nests
  in
  Alcotest.(check bool) "window constraints resolved by inner unrolling" true
    has_inner_unroll

let test_driver_respects_flags () =
  let p = fig2a () in
  let opts = { no_profile with Driver.do_unroll_jam = false; do_window = false } in
  let _, report = Driver.run ~options:opts p in
  Alcotest.(check bool) "no transform actions" true
    (List.for_all
       (fun n ->
         List.for_all
           (function Driver.Rejected _ -> true | _ -> false)
           n.Driver.actions)
       report.Driver.nests)

let test_machine_models () =
  Alcotest.(check int) "base window" 64 Machine_model.base.Machine_model.window;
  Alcotest.(check int) "base mshrs" 10 Machine_model.base.Machine_model.mshrs;
  Alcotest.(check int) "exemplar window" 56
    Machine_model.exemplar_like.Machine_model.window;
  Alcotest.(check int) "exemplar line" 32
    Machine_model.exemplar_like.Machine_model.line_size

(* every workload's transformation preserves semantics: the strongest
   integration property in the suite *)
let test_workload_semantics name =
  Alcotest.test_case name `Slow (fun () ->
      match Memclust_workloads.Registry.by_name name with
      | None -> Alcotest.fail "unknown workload"
      | Some w ->
          let open Memclust_workloads in
          let p', _ =
            Driver.run ~options:Driver.default_options ~init:w.Workload.init
              w.Workload.program
          in
          let d1 = Data.create w.Workload.program in
          let d2 = Data.create p' in
          w.Workload.init d1;
          w.Workload.init d2;
          Exec.run w.Workload.program d1;
          Exec.run p' d2;
          Alcotest.(check bool) "semantics preserved" true (Data.equal d1 d2))



(* regression: sibling loops sharing a variable name (FFT stages, Ocean
   sweeps) must be transformed independently, not overwritten by one
   another's rewrite *)
let test_sibling_loops_same_var () =
  let n = 32 in
  let p =
    let open Builder in
    program "siblings"
      ~arrays:
        [ array_decl "a" (Stdlib.( * ) n n); array_decl "b" (Stdlib.( * ) n n);
          array_decl "s" n ]
      [
        loop "r" (cst 0) (cst n)
          [
            loop "g" (cst 0) (cst n)
              [ store (aref "s" (ix "r")) (arr "s" (ix "r") + arr "a" (idx2 ~cols:n (ix "r") (ix "g"))) ];
            loop "g" (cst 0) (cst n)
              [ store (aref "s" (ix "r")) (arr "s" (ix "r") * arr "b" (idx2 ~cols:n (ix "r") (ix "g"))) ];
          ];
      ]
  in
  let init d =
    for i = 0 to (n * n) - 1 do
      Data.set d "a" i (Ast.Vfloat (float_of_int i *. 0.001));
      Data.set d "b" i (Ast.Vfloat (1.0 +. (float_of_int i *. 0.0001)))
    done;
    for i = 0 to n - 1 do
      Data.set d "s" i (Ast.Vfloat 1.0)
    done
  in
  let p', _ = Driver.run ~options:no_profile ~init p in
  let d1 = Data.create p and d2 = Data.create p' in
  init d1;
  init d2;
  Exec.run p d1;
  Exec.run p' d2;
  Alcotest.(check bool) "both sibling stages computed correctly" true
    (Data.equal d1 d2)

(* regression: repeated unroll-and-jam over the same code must not
   collide renamed scalars (the FFT r-then-g jam bug) *)
let test_nested_jam_rename_stamps () =
  let n = 16 in
  let p =
    let open Builder in
    program "nested_jam"
      ~arrays:[ array_decl "a" (Stdlib.( * ) n n); array_decl "o" (Stdlib.( * ) n n) ]
      [
        loop ~parallel:true "r" (cst 0) (cst n)
          [
            loop "g" (cst 0) (cst n)
              [
                assign "t" (arr "a" (idx2 ~cols:n (ix "r") (ix "g")));
                store (aref "o" (idx2 ~cols:n (ix "r") (ix "g"))) (sc "t" * sc "t");
              ];
          ];
      ]
  in
  let open Memclust_transform in
  let r_loop = match p.Ast.body with [ Ast.Loop l ] -> l | _ -> assert false in
  let g_loop = match r_loop.Ast.body with [ Ast.Loop l ] -> l | _ -> assert false in
  (* first jam g by 4 inside r, then jam r by 2 over the result *)
  match Unroll_jam.apply ~factor:4 g_loop with
  | Error e -> Alcotest.failf "inner jam: %a" Unroll_jam.pp_error e
  | Ok g_stmts -> (
      let r_loop = { r_loop with Ast.body = g_stmts } in
      match Unroll_jam.apply ~factor:2 r_loop with
      | Error e -> Alcotest.failf "outer jam: %a" Unroll_jam.pp_error e
      | Ok r_stmts ->
          let p' = Program.renumber { p with Ast.body = r_stmts } in
          let init d =
            for i = 0 to (n * n) - 1 do
              Data.set d "a" i (Ast.Vfloat (float_of_int i))
            done
          in
          let d1 = Data.create p and d2 = Data.create p' in
          init d1;
          init d2;
          Exec.run p d1;
          Exec.run p' d2;
          Alcotest.(check bool) "no renamed-scalar collisions" true
            (Data.equal d1 d2))

(* ------------------------ pipeline fuzzing ------------------------- *)

let exec_equal p1 p2 init =
  let d1 = Data.create p1 and d2 = Data.create p2 in
  init d1;
  init d2;
  Exec.run p1 d1;
  Exec.run p2 d2;
  Data.equal d1 d2

let prop_driver_fuzz =
  QCheck.Test.make ~name:"driver preserves semantics on random nests" ~count:60
    Gen_program.arbitrary
    (fun cfg ->
      let p = Gen_program.build cfg in
      (match Program.validate p with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "generator produced invalid program: %s" e);
      let p', _ = Driver.run ~options:no_profile ~init:(Gen_program.init cfg) p in
      exec_equal p p' (Gen_program.init cfg))

let prop_prefetch_fuzz =
  QCheck.Test.make ~name:"prefetch pass is a no-op on semantics" ~count:60
    Gen_program.arbitrary
    (fun cfg ->
      let p = Gen_program.build cfg in
      let p', _ = Memclust_transform.Prefetch_pass.insert p in
      exec_equal p p' (Gen_program.init cfg))

let prop_driver_then_prefetch_fuzz =
  QCheck.Test.make ~name:"driver + prefetch compose" ~count:30
    Gen_program.arbitrary
    (fun cfg ->
      let p = Gen_program.build cfg in
      let p', _ = Driver.run ~options:no_profile ~init:(Gen_program.init cfg) p in
      let p'', _ = Memclust_transform.Prefetch_pass.insert p' in
      exec_equal p p'' (Gen_program.init cfg))

let () =
  Alcotest.run "cluster"
    [
      ( "festimate",
        [
          Alcotest.test_case "base f" `Quick test_f_base;
          Alcotest.test_case "address recurrence C=1" `Quick test_f_address_recurrence_c1;
          Alcotest.test_case "irregular rounding" `Quick test_f_irregular_rounding;
        ] );
      ( "driver",
        [
          Alcotest.test_case "picks factor near lp" `Quick test_driver_picks_lp;
          Alcotest.test_case "semantics" `Quick test_driver_semantics;
          Alcotest.test_case "no enclosing loop" `Quick test_driver_no_enclosing_loop;
          Alcotest.test_case "window resolution" `Quick test_driver_window_resolution;
          Alcotest.test_case "option flags" `Quick test_driver_respects_flags;
          Alcotest.test_case "machine models" `Quick test_machine_models;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "sibling same-var loops" `Quick test_sibling_loops_same_var;
          Alcotest.test_case "nested jam rename stamps" `Quick test_nested_jam_rename_stamps;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_driver_fuzz;
          QCheck_alcotest.to_alcotest prop_prefetch_fuzz;
          QCheck_alcotest.to_alcotest prop_driver_then_prefetch_fuzz;
        ] );
      ( "workload semantics",
        List.map test_workload_semantics
          [ "Latbench"; "Em3d"; "Erlebacher"; "FFT"; "LU"; "Mp3d"; "MST"; "Ocean" ] );
    ]
