open Memclust_ir
open Memclust_codegen

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------ Trace ------------------------------- *)

let test_trace_roundtrip () =
  let t = Trace.create () in
  let i0 = Trace.push t ~kind:Trace.Load ~aux:4096 ~dep1:(-1) ~dep2:(-1) ~ref_:7 in
  let i1 = Trace.push t ~kind:Trace.Fp_op ~aux:3 ~dep1:i0 ~dep2:(-1) ~ref_:0 in
  Alcotest.(check int) "indices sequential" 0 i0;
  Alcotest.(check int) "indices sequential" 1 i1;
  Alcotest.(check int) "length" 2 (Trace.length t);
  Alcotest.(check bool) "kind" true (Trace.kind t 0 = Trace.Load);
  Alcotest.(check int) "aux" 4096 (Trace.aux t 0);
  Alcotest.(check int) "ref" 7 (Trace.ref_id t 0);
  Alcotest.(check int) "dep1" 0 (Trace.dep1 t 1);
  Alcotest.(check int) "dep2" (-1) (Trace.dep2 t 1)

let prop_trace_growth =
  QCheck.Test.make ~name:"trace grows past initial capacity" ~count:5
    (QCheck.int_range 5000 20000) (fun n ->
      let t = Trace.create () in
      for i = 0 to n - 1 do
        ignore (Trace.push t ~kind:Trace.Int_op ~aux:i ~dep1:(i - 1) ~dep2:(-1) ~ref_:0)
      done;
      let ok = ref (Trace.length t = n) in
      for i = 0 to n - 1 do
        if Trace.aux t i <> i || Trace.dep1 t i <> i - 1 then ok := false
      done;
      !ok)

let test_count_kind () =
  let t = Trace.create () in
  ignore (Trace.push t ~kind:Trace.Load ~aux:0 ~dep1:(-1) ~dep2:(-1) ~ref_:0);
  ignore (Trace.push t ~kind:Trace.Store ~aux:0 ~dep1:(-1) ~dep2:(-1) ~ref_:0);
  ignore (Trace.push t ~kind:Trace.Load ~aux:0 ~dep1:(-1) ~dep2:(-1) ~ref_:0);
  Alcotest.(check int) "loads" 2 (Trace.count_kind t Trace.Load);
  Alcotest.(check int) "stores" 1 (Trace.count_kind t Trace.Store);
  Alcotest.(check int) "branches" 0 (Trace.count_kind t Trace.Branch)

(* ------------------------------ Lower ------------------------------- *)

let stream_program n =
  let open Builder in
  program "stream"
    ~arrays:[ array_decl "a" n; array_decl "o" n ]
    [
      loop "i" (cst 0) (cst n)
        [ store (aref "o" (ix "i")) (arr "a" (ix "i") + flt 1.0) ];
    ]

let test_lower_counts () =
  let n = 16 in
  let p = stream_program n in
  let d = Data.create p in
  let lowered = Lower.build p d in
  Alcotest.(check int) "one trace" 1 (Array.length lowered.Lower.traces);
  let t = lowered.Lower.traces.(0) in
  Alcotest.(check int) "one load per iteration" n (Trace.count_kind t Trace.Load);
  Alcotest.(check int) "one store per iteration" n (Trace.count_kind t Trace.Store);
  Alcotest.(check int) "one branch per iteration" n (Trace.count_kind t Trace.Branch);
  Alcotest.(check int) "no barriers uniprocessor" 0 lowered.Lower.barriers

let test_lower_addresses () =
  let n = 8 in
  let p = stream_program n in
  let d = Data.create p in
  let base_a = Data.array_base d "a" in
  let lowered = Lower.build p d in
  let t = lowered.Lower.traces.(0) in
  let load_addrs = ref [] in
  for i = 0 to Trace.length t - 1 do
    if Trace.kind t i = Trace.Load then load_addrs := Trace.aux t i :: !load_addrs
  done;
  let expect = List.init n (fun i -> base_a + (8 * i)) in
  Alcotest.(check (list int)) "load addresses in order" expect (List.rev !load_addrs)

let test_lower_chase_serialized () =
  (* each next load must depend on the previous one *)
  let p =
    let open Builder in
    program "chain"
      ~arrays:[ array_decl "start" 1 ]
      ~regions:[ region_decl ~node_size:64 "n" 8 ]
      [
        chase "p" ~init:(ld (aref "start" (cst 0))) ~region:"n" ~next:0
          ~count:(cst 6) [];
      ]
  in
  let d = Data.create p in
  Data.set d "start" 0 (Data.node_ptr d "n" 0);
  for k = 0 to 7 do
    Data.field_set d "n" ~ptr:(Data.node_addr d "n" k) ~field:0
      (Data.node_ptr d "n" ((k + 1) mod 8))
  done;
  let lowered = Lower.build p d in
  let t = lowered.Lower.traces.(0) in
  let loads = ref [] in
  for i = 0 to Trace.length t - 1 do
    if Trace.kind t i = Trace.Load then loads := i :: !loads
  done;
  let loads = List.rev !loads in
  Alcotest.(check int) "start + 6 next loads" 7 (List.length loads);
  (* every next load depends on the previous load *)
  List.iteri
    (fun k idx ->
      if k > 0 then begin
        let prev = List.nth loads (k - 1) in
        Alcotest.(check int) (Printf.sprintf "load %d dep" k) prev (Trace.dep1 t idx)
      end)
    loads

let test_lower_multiproc () =
  let n = 16 in
  let p =
    let open Builder in
    program "par"
      ~arrays:[ array_decl "a" n; array_decl "o" n ]
      [
        loop ~parallel:true "i" (cst 0) (cst n)
          [ store (aref "o" (ix "i")) (arr "a" (ix "i") + flt 1.0) ];
        Ast.Barrier;
      ]
  in
  let d = Data.create p in
  let lowered = Lower.build ~nprocs:4 p d in
  Alcotest.(check int) "4 traces" 4 (Array.length lowered.Lower.traces);
  (* work split evenly: each proc has n/4 loads *)
  Array.iteri
    (fun pi t ->
      Alcotest.(check int)
        (Printf.sprintf "proc %d loads" pi)
        (n / 4)
        (Trace.count_kind t Trace.Load))
    lowered.Lower.traces;
  (* two barriers (implicit after the parallel loop + explicit) on every proc *)
  Array.iter
    (fun t ->
      Alcotest.(check int) "barriers per proc" 2 (Trace.count_kind t Trace.Barrier_op))
    lowered.Lower.traces;
  Alcotest.(check int) "barrier count" 2 lowered.Lower.barriers;
  Alcotest.(check int) "total instructions add up"
    (Lower.total_instructions lowered)
    (Array.fold_left (fun acc t -> acc + Trace.length t) 0 lowered.Lower.traces)

let test_lower_cross_proc_deps_dropped () =
  (* a scalar defined before the parallel loop is used inside it: the
     consumer must not carry a dependence into another processor's trace *)
  let p =
    let open Builder in
    program "crossdep"
      ~arrays:[ array_decl "a" 8; array_decl "o" 8 ]
      [
        assign "c" (arr "a" (cst 0));
        loop ~parallel:true "i" (cst 0) (cst 8)
          [ store (aref "o" (ix "i")) (sc "c" + arr "a" (ix "i")) ];
      ]
  in
  let d = Data.create p in
  let lowered = Lower.build ~nprocs:2 p d in
  (* proc 1's trace: every dep index must point inside its own trace *)
  let t = lowered.Lower.traces.(1) in
  let ok = ref true in
  for i = 0 to Trace.length t - 1 do
    if Trace.dep1 t i >= i || Trace.dep2 t i >= i then ok := false
  done;
  Alcotest.(check bool) "deps are local and backward" true !ok


let test_tracestats () =
  let n = 8 in
  let p = stream_program n in
  let d = Data.create p in
  let lowered = Lower.build p d in
  let st = Tracestats.of_lowered lowered in
  Alcotest.(check int) "loads" n st.Tracestats.loads;
  Alcotest.(check int) "stores" n st.Tracestats.stores;
  Alcotest.(check int) "branches" n st.Tracestats.branches;
  Alcotest.(check int) "total adds up"
    (Lower.total_instructions lowered)
    st.Tracestats.total;
  (* a and o are 64 B each: two lines *)
  Alcotest.(check int) "distinct lines" 2 st.Tracestats.distinct_lines


let prop_kind_roundtrip =
  QCheck.Test.make ~name:"trace kind codes roundtrip" ~count:50
    (QCheck.int_range 0 6) (fun c ->
      Trace.kind_code (Trace.kind_of_code c) = c)

let () =
  Alcotest.run "codegen"
    [
      ( "trace",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          qtest prop_kind_roundtrip;
          qtest prop_trace_growth;
          Alcotest.test_case "count kind" `Quick test_count_kind;
        ] );
      ( "lower",
        [
          Alcotest.test_case "instruction counts" `Quick test_lower_counts;
          Alcotest.test_case "addresses" `Quick test_lower_addresses;
          Alcotest.test_case "chase serialization" `Quick test_lower_chase_serialized;
          Alcotest.test_case "multiprocessor split" `Quick test_lower_multiproc;
          Alcotest.test_case "cross-proc deps dropped" `Quick test_lower_cross_proc_deps_dropped;
          Alcotest.test_case "tracestats" `Quick test_tracestats;
        ] );
    ]
