(* QCheck generator of small random loop-nest programs, used to fuzz the
   transformation pipeline end to end: whatever the driver does to these,
   executing base and transformed programs on the same data must agree.

   The generated programs are always well-formed (validated) and total:
   - 2-deep counted loop nests over a handful of declared arrays;
   - regular affine accesses (with random row/column/diagonal shapes and
     constant offsets), plus optional indirect accesses through a
     non-negative integer index array;
   - accumulator statements, temporaries, stores and conditionals. *)

open Memclust_ir
open Ast

type cfg = {
  rows : int;
  cols : int;
  stmts : int;  (* inner-body statements *)
  seed : int;
}

let cfg_gen =
  QCheck.Gen.(
    map2
      (fun (rows, cols) (stmts, seed) -> { rows; cols; stmts; seed })
      (pair (int_range 3 24) (int_range 3 24))
      (pair (int_range 1 5) (int_range 0 1_000_000)))

let arrays = [ "m0"; "m1"; "m2" ]

(* A random affine subscript within bounds for any (j,i) in range. Stores
   are kept row-major (with small constant offsets) so that the legality
   tests usually accept unroll-and-jam — otherwise the fuzz property would
   mostly exercise the "reject" path; loads roam over more shapes. *)
let subscript ?(store = false) rng ~rows ~cols =
  let open Memclust_util in
  let row_major off =
    Affine.add
      (Affine.scale cols (Affine.var "j"))
      (Affine.add (Affine.var "i") (Affine.const off))
  in
  if store then row_major (Rng.int rng 4)
  else
    match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 -> row_major 0
    | 4 | 5 | 6 -> row_major (Rng.int rng 8)
    | 7 | 8 ->
        (* previous row (outer-carried reuse) *)
        Affine.add
          (Affine.scale cols (Affine.var "j"))
          (Affine.add (Affine.var "i") (Affine.const cols))
    | _ ->
        (* column-major *)
        Affine.add (Affine.scale rows (Affine.var "i")) (Affine.var "j")

let value_expr rng ~rows ~cols depth =
  let open Memclust_util in
  let rec go depth =
    if depth = 0 then
      match Rng.int rng 3 with
      | 0 -> Const (Vfloat (Rng.float rng 2.0))
      | 1 -> Load { ref_id = 0; target = Direct { array = List.nth arrays (Rng.int rng 3); index = subscript rng ~rows ~cols } }
      | _ -> Ivar "i"
    else
      match Rng.int rng 6 with
      | 0 | 1 -> Binop (Add, go (depth - 1), go (depth - 1))
      | 2 | 3 -> Binop (Mul, go (depth - 1), go (depth - 1))
      | 4 -> Binop (Sub, go (depth - 1), go (depth - 1))
      | _ ->
          (* indirect access through the index array *)
          Load
            {
              ref_id = 0;
              target =
                Indirect
                  {
                    array = "m2";
                    index =
                      Load
                        {
                          ref_id = 0;
                          target = Direct { array = "idx"; index = subscript rng ~rows ~cols };
                        };
                  };
            }
  in
  go depth

let body rng ~rows ~cols ~stmts =
  let open Memclust_util in
  List.init stmts (fun k ->
      match Rng.int rng 4 with
      | 0 ->
          (* accumulate into a per-row cell *)
          Assign
            ( Lmem { ref_id = 0; target = Direct { array = "acc"; index = Affine.var "j" } },
              Binop
                ( Add,
                  Load { ref_id = 0; target = Direct { array = "acc"; index = Affine.var "j" } },
                  value_expr rng ~rows ~cols 1 ) )
      | 1 ->
          (* temporary then store *)
          Assign (Lscalar (Printf.sprintf "t%d" k), value_expr rng ~rows ~cols 2)
      | 2 ->
          Assign
            ( Lmem
                { ref_id = 0;
                  target = Direct { array = "out"; index = subscript ~store:true rng ~rows ~cols }
                },
              value_expr rng ~rows ~cols 1 )
      | _ ->
          (* conditional store, row-major so rows stay independent *)
          If
            ( Binop (Lt, Ivar "i", Const (Vint (Rng.int rng 20))),
              [
                Assign
                  ( Lmem
                      {
                        ref_id = 0;
                        target =
                          Direct
                            { array = "out2"; index = subscript ~store:true rng ~rows ~cols };
                      },
                    value_expr rng ~rows ~cols 1 );
              ],
              [] ))

let build (c : cfg) =
  let open Memclust_util in
  let rng = Rng.create c.seed in
  let n = c.rows * c.cols in
  let p =
    {
      p_name = Printf.sprintf "fuzz-%d" c.seed;
      params = [];
      arrays =
        [
          { a_name = "m0"; elem_size = 8; length = n + c.rows + c.cols + 8 };
          { a_name = "m1"; elem_size = 8; length = n + c.rows + c.cols + 8 };
          { a_name = "m2"; elem_size = 8; length = n + c.rows + c.cols + 8 };
          { a_name = "idx"; elem_size = 8; length = n + c.rows + c.cols + 8 };
          { a_name = "acc"; elem_size = 8; length = c.rows };
          { a_name = "out"; elem_size = 8; length = n + c.rows + c.cols + 8 };
          { a_name = "out2"; elem_size = 8; length = n + c.rows + c.cols + 8 };
        ];
      regions = [];
      body =
        [
          Loop
            {
              var = "j";
              lo = Affine.const 0;
              hi = Affine.const c.rows;
              step = 1;
              parallel = false;
              body =
                [
                  Loop
                    {
                      var = "i";
                      lo = Affine.const 0;
                      hi = Affine.const c.cols;
                      step = 1;
                      parallel = false;
                      body = body rng ~rows:c.rows ~cols:c.cols ~stmts:c.stmts;
                    };
                ];
            };
        ];
    }
  in
  Program.renumber p

let init (c : cfg) data =
  let open Memclust_util in
  let rng = Rng.create (c.seed + 1) in
  let n = (c.rows * c.cols) + c.rows + c.cols + 8 in
  List.iter
    (fun a ->
      for i = 0 to n - 1 do
        Data.set data a i (Vfloat (Rng.float rng 4.0 -. 2.0))
      done)
    [ "m0"; "m1"; "m2"; "out"; "out2" ];
  for i = 0 to n - 1 do
    Data.set data "idx" i (Vint (Rng.int rng n))
  done;
  for i = 0 to c.rows - 1 do
    Data.set data "acc" i (Vfloat 0.0)
  done

let arbitrary =
  QCheck.make cfg_gen ~print:(fun c ->
      Printf.sprintf "rows=%d cols=%d stmts=%d seed=%d" c.rows c.cols c.stmts
        c.seed)
