open Memclust_ir
open Memclust_sim
open Memclust_workloads
open Memclust_harness

(* a tiny custom workload so harness tests stay fast *)
let tiny () =
  let n = 32 in
  let program =
    let open Builder in
    program "tiny"
      ~arrays:[ array_decl "a" (Stdlib.( * ) n n); array_decl "s" n ]
      [
        loop ~parallel:true "j" (cst 0) (cst n)
          [
            loop "i" (cst 0) (cst n)
              [
                store (aref "s" (ix "j"))
                  (arr "s" (ix "j") + arr "a" (idx2 ~cols:n (ix "j") (ix "i")));
              ];
          ];
      ]
  in
  let init d =
    for i = 0 to (n * n) - 1 do
      Data.set d "a" i (Ast.Vfloat (float_of_int i))
    done
  in
  {
    Workload.name = "tiny";
    program;
    init;
    l2_bytes = 16 * 1024;
    mp_procs = 4;
    description = "test workload";
  }

let test_machine_of_config () =
  let m = Experiment.machine_of_config Config.base in
  Alcotest.(check int) "window" 64 m.Memclust_cluster.Machine_model.window;
  Alcotest.(check int) "mshrs" 10 m.Memclust_cluster.Machine_model.mshrs;
  let m = Experiment.machine_of_config Config.exemplar_like in
  Alcotest.(check int) "exemplar line" 32 m.Memclust_cluster.Machine_model.line_size

let test_execute_base_vs_clustered () =
  let w = tiny () in
  let spec version =
    { Experiment.workload = w; config = Config.base; nprocs = 1; version }
  in
  let b = Experiment.execute (spec Experiment.Base) in
  let c = Experiment.execute (spec Experiment.Clustered) in
  Alcotest.(check bool) "base has no cluster report" true
    (b.Experiment.cluster_report = None);
  Alcotest.(check bool) "clustered has report" true
    (c.Experiment.cluster_report <> None);
  Alcotest.(check bool) "clustering helps the miss-bound kernel" true
    (Experiment.exec_cycles c < Experiment.exec_cycles b);
  Alcotest.(check bool) "data stall reduced" true
    (Experiment.data_stall c < Experiment.data_stall b)

let test_execute_multiproc () =
  let w = tiny () in
  let spec nprocs =
    {
      Experiment.workload = w;
      config = Config.base;
      nprocs;
      version = Experiment.Base;
    }
  in
  let up = Experiment.execute (spec 1) in
  let mp = Experiment.execute (spec 4) in
  Alcotest.(check bool) "parallel run is faster" true
    (Experiment.exec_cycles mp < Experiment.exec_cycles up)

let test_cached_is_stable () =
  let w = tiny () in
  let spec =
    {
      Experiment.workload = w;
      config = Config.base;
      nprocs = 1;
      version = Experiment.Base;
    }
  in
  let a = Experiment.execute_cached spec in
  let b = Experiment.execute_cached spec in
  Alcotest.(check bool) "same outcome object" true (a == b)

let test_l2_scaling_applied () =
  let w = tiny () in
  (* scaled config: the workload's small L2 makes the kernel miss more than
     with the default 64KB *)
  let o =
    Experiment.execute
      {
        Experiment.workload = w;
        config = Config.base;
        nprocs = 1;
        version = Experiment.Base;
      }
  in
  Alcotest.(check bool) "misses observed" true (o.Experiment.result.Machine.l2_misses > 0)

let test_figures_registry () =
  List.iter
    (fun id ->
      match Figures.by_id id with
      | Some _ -> ()
      | None -> Alcotest.failf "missing experiment %s" id)
    Figures.all_ids;
  Alcotest.(check bool) "unknown id" true (Figures.by_id "nope" = None);
  Alcotest.(check int) "all nine paper artifacts covered" 9
    (List.length Figures.paper_ids);
  Alcotest.(check bool) "extensions registered" true
    (List.length Figures.extension_ids >= 2)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table1_contents () =
  let s = Figures.table1 () in
  Alcotest.(check bool) "names base" true (contains ~sub:"base-500MHz" s);
  Alcotest.(check bool) "shows window" true (contains ~sub:"window 64" s);
  Alcotest.(check bool) "shows exemplar" true (contains ~sub:"exemplar-like" s)

let test_table2_contents () =
  let s = Figures.table2 () in
  List.iter
    (fun (w : Workload.t) ->
      Alcotest.(check bool) (w.Workload.name ^ " listed") true
        (contains ~sub:w.Workload.name s))
    (Registry.latbench () :: Registry.applications ())


let test_prefetched_versions () =
  let w = tiny () in
  let spec version =
    { Experiment.workload = w; config = Config.base; nprocs = 1; version }
  in
  let pf = Experiment.execute (spec Experiment.Prefetched) in
  Alcotest.(check bool) "hints were issued" true
    (pf.Experiment.result.Machine.prefetches > 0);
  Alcotest.(check bool) "no cluster report" true
    (pf.Experiment.cluster_report = None);
  let both = Experiment.execute (spec Experiment.Clustered_prefetched) in
  Alcotest.(check bool) "clustered and hinted" true
    (both.Experiment.result.Machine.prefetches > 0
    && both.Experiment.cluster_report <> None)

let test_transform_respects_max_procs () =
  (* workload with a 16-iteration distributed loop and mp_procs = 8:
     the driver must keep at least 8 chunks (factor <= 2) *)
  let n = 16 in
  let cols = 512 in
  let program =
    let open Builder in
    program "narrow"
      ~arrays:[ array_decl "a" (Stdlib.( * ) n cols); array_decl "s" n ]
      [
        loop ~parallel:true "j" (cst 0) (cst n)
          [
            loop "i" (cst 0) (cst cols)
              [
                store (aref "s" (ix "j"))
                  (arr "s" (ix "j") + arr "a" (idx2 ~cols (ix "j") (ix "i")));
              ];
          ];
      ]
  in
  let w =
    { Workload.name = "narrow"; program; init = (fun _ -> ()); l2_bytes = 16 * 1024;
      mp_procs = 8; description = "" }
  in
  let _, report = Experiment.transform Config.base w in
  List.iter
    (fun nest ->
      List.iter
        (function
          | Memclust_cluster.Driver.Unroll_jam { factor; _ } ->
              Alcotest.(check bool) "factor preserves 8 chunks" true (factor <= 2)
          | _ -> ())
        nest.Memclust_cluster.Driver.actions)
    report.Memclust_cluster.Driver.nests

let () =
  Alcotest.run "harness"
    [
      ( "experiment",
        [
          Alcotest.test_case "machine of config" `Quick test_machine_of_config;
          Alcotest.test_case "base vs clustered" `Quick test_execute_base_vs_clustered;
          Alcotest.test_case "multiprocessor" `Quick test_execute_multiproc;
          Alcotest.test_case "memoization" `Quick test_cached_is_stable;
          Alcotest.test_case "l2 scaling" `Quick test_l2_scaling_applied;
          Alcotest.test_case "prefetched versions" `Quick test_prefetched_versions;
          Alcotest.test_case "max_procs cap" `Quick test_transform_respects_max_procs;
        ] );
      ( "figures",
        [
          Alcotest.test_case "registry" `Quick test_figures_registry;
          Alcotest.test_case "table1" `Quick test_table1_contents;
          Alcotest.test_case "table2" `Quick test_table2_contents;
        ] );
    ]
