test/test_ir.ml: Affine Alcotest Ast Builder Data Exec List Measure Memclust_ir Memclust_transform Pretty Program QCheck QCheck_alcotest String
