test/test_sim.ml: Alcotest Array Breakdown Cache Config List Lower Machine Memclust_codegen Memclust_sim Memclust_util Memsys Stats Trace
