test/test_codegen.ml: Alcotest Array Ast Builder Data List Lower Memclust_codegen Memclust_ir Printf QCheck QCheck_alcotest Trace Tracestats
