test/gen_program.ml: Affine Ast Data List Memclust_ir Memclust_util Printf Program QCheck Rng
