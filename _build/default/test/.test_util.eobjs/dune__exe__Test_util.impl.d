test/test_util.ml: Alcotest Array Gen Int64 List Memclust_util Plot Pqueue QCheck QCheck_alcotest Rng Stats String Table
