test/test_locality.ml: Affine Alcotest Ast Builder Data List Locality Memclust_ir Memclust_locality Profile Program QCheck QCheck_alcotest Stdlib String
