test/test_harness.ml: Alcotest Ast Builder Config Data Experiment Figures List Machine Memclust_cluster Memclust_harness Memclust_ir Memclust_sim Memclust_workloads Registry Stdlib String Workload
