test/test_workloads.ml: Alcotest Ast Data Em3d Erlebacher Exec Fft Latbench List Locality Lu Memclust_ir Memclust_locality Memclust_workloads Mp3d Mst Ocean Profile Program Registry Workload
