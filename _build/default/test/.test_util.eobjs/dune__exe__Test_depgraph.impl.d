test/test_depgraph.ml: Alcotest Array Ast Builder Depgraph Fun List Locality Memclust_depgraph Memclust_ir Memclust_locality Option QCheck QCheck_alcotest Scc String
