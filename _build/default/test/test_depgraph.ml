open Memclust_ir
open Memclust_locality
open Memclust_depgraph

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------- SCC -------------------------------- *)

let test_scc_simple_cycle () =
  let succ = function 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 0 ] | _ -> [] in
  let sccs = Scc.compute ~nodes:[ 0; 1; 2; 3 ] ~succ in
  let big = List.find (fun c -> List.length c > 1) sccs in
  Alcotest.(check (list int)) "cycle" [ 0; 1; 2 ] (List.sort compare big);
  Alcotest.(check int) "two components" 2 (List.length sccs)

let test_scc_dag () =
  let succ = function 0 -> [ 1; 2 ] | 1 -> [ 2 ] | _ -> [] in
  let sccs = Scc.compute ~nodes:[ 0; 1; 2 ] ~succ in
  Alcotest.(check int) "all singletons" 3 (List.length sccs)

let test_scc_reverse_topological () =
  let succ = function 0 -> [ 1 ] | _ -> [] in
  match Scc.compute ~nodes:[ 0; 1 ] ~succ with
  | [ [ 1 ]; [ 0 ] ] -> ()
  | other ->
      Alcotest.failf "unexpected order: %s"
        (String.concat ";" (List.map (fun c -> String.concat "," (List.map string_of_int c)) other))

(* qcheck: nodes share an SCC iff mutually reachable *)
let prop_scc_mutual_reachability =
  let gen =
    QCheck.Gen.(
      let n = 6 in
      list_size (0 -- 12) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      |> map (fun edges -> edges))
  in
  QCheck.Test.make ~name:"SCC = mutual reachability" ~count:300 (QCheck.make gen)
    (fun edges ->
      let n = 6 in
      let succ v = List.filter_map (fun (a, b) -> if a = v then Some b else None) edges in
      let reach = Array.make_matrix n n false in
      let rec dfs src v =
        if not reach.(src).(v) then begin
          reach.(src).(v) <- true;
          List.iter (dfs src) (succ v)
        end
      in
      for v = 0 to n - 1 do List.iter (dfs v) (succ v) done;
      let sccs = Scc.compute ~nodes:(List.init n Fun.id) ~succ in
      let comp_of = Array.make n (-1) in
      List.iteri (fun ci c -> List.iter (fun v -> comp_of.(v) <- ci) c) sccs;
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if a <> b then begin
            let same = comp_of.(a) = comp_of.(b) in
            let mutual = reach.(a).(b) && reach.(b).(a) in
            if same <> mutual then ok := false
          end
        done
      done;
      !ok)

(* --------------------------- Dependence graphs --------------------- *)

let analyze_first_inner p =
  let loc = Locality.analyze ~line_size:64 p in
  let rec find stmt =
    match stmt with
    | Ast.Loop l ->
        let nested = List.filter_map (function Ast.Loop l' -> Some (`L l') | Ast.Chase c -> Some (`C c) | _ -> None) l.Ast.body in
        (match nested with
        | [] -> Some (Depgraph.Counted l)
        | `L l' :: _ -> find (Ast.Loop l')
        | `C c :: _ -> Some (Depgraph.Chased c))
    | _ -> None
  in
  let inner = List.find_map find p.Ast.body |> Option.get in
  (loc, Depgraph.analyze loc inner)

let test_self_spatial_recurrence () =
  let p =
    let open Builder in
    program "fig2a"
      ~arrays:[ array_decl "a" 4096; array_decl "s" 64 ]
      [
        loop "j" (cst 0) (cst 64)
          [
            loop "i" (cst 0) (cst 64)
              [ store (aref "s" (ix "j")) (arr "s" (ix "j") + arr "a" (idx2 ~cols:64 (ix "j") (ix "i"))) ];
          ];
      ]
  in
  let _, g = analyze_first_inner p in
  Alcotest.(check int) "one recurrence" 1 (List.length g.Depgraph.recurrences);
  let r = List.hd g.Depgraph.recurrences in
  Alcotest.(check bool) "cache-line class" true (r.Depgraph.rec_class = Depgraph.Cache_line);
  Alcotest.(check int) "R" 1 r.Depgraph.r_count;
  Alcotest.(check int) "iota" 1 r.Depgraph.iota;
  Alcotest.(check (float 1e-9)) "alpha" 1.0 (Depgraph.alpha g);
  Alcotest.(check bool) "no address recurrence" false g.Depgraph.has_address_recurrence

let test_indirect_address_edge_no_cycle () =
  (* ind = a[j,i]; sum[j] += b[ind] — address dep a->b, recurrence only on a *)
  let p =
    let open Builder in
    program "sparse"
      ~arrays:[ array_decl "a" 4096; array_decl "b" 4096; array_decl "sum" 64 ]
      [
        loop "j" (cst 0) (cst 64)
          [
            loop "i" (cst 0) (cst 64)
              [
                assign "ind" (arr "a" (idx2 ~cols:64 (ix "j") (ix "i")));
                store (aref "sum" (ix "j")) (arr "sum" (ix "j") + ld (iref "b" (sc "ind")));
              ];
          ];
      ]
  in
  let _, g = analyze_first_inner p in
  Alcotest.(check bool) "has address edge" true
    (List.exists (fun e -> e.Depgraph.cls = Depgraph.Address) g.Depgraph.edges);
  Alcotest.(check bool) "but no address recurrence" false g.Depgraph.has_address_recurrence;
  Alcotest.(check (float 1e-9)) "alpha from a's cache-line recurrence" 1.0
    (Depgraph.alpha g)

let test_pointer_chase_recurrence () =
  let p =
    let open Builder in
    program "list"
      ~arrays:[ array_decl "start" 8 ]
      ~regions:[ region_decl ~node_size:32 "n" 64 ]
      [
        loop "v" (cst 0) (cst 8)
          [
            assign "s" (flt 0.0);
            chase "p" ~init:(ld (aref "start" (ix "v"))) ~region:"n" ~next:0
              [ assign "s" (sc "s" + ld (fref "n" (sc "p") 2)) ];
          ];
      ]
  in
  let _, g = analyze_first_inner p in
  Alcotest.(check bool) "address recurrence" true g.Depgraph.has_address_recurrence;
  let r = List.find (fun r -> r.Depgraph.rec_class = Depgraph.Address) g.Depgraph.recurrences in
  Alcotest.(check int) "serializes the node line's leading ref" 1 r.Depgraph.r_count;
  Alcotest.(check (float 1e-9)) "alpha 1" 1.0 (Depgraph.alpha g)

let test_scalar_carried_address_recurrence () =
  (* q = a[trunc q]: the loaded value feeds the next iteration's address *)
  let p =
    let open Builder in
    program "feedback"
      ~arrays:[ array_decl "a" 256; array_decl "o" 1 ]
      [
        assign "q" (num 0);
        loop "i" (cst 0) (cst 16)
          [ assign "q" (ld (iref "a" (sc "q"))) ];
        store (aref "o" (cst 0)) (sc "q");
      ]
  in
  let loc = Locality.analyze ~line_size:64 p in
  let l = match p.Ast.body with [ _; Ast.Loop l; _ ] -> l | _ -> assert false in
  let g = Depgraph.analyze loc (Depgraph.Counted l) in
  Alcotest.(check bool) "address recurrence" true g.Depgraph.has_address_recurrence;
  let e =
    List.find (fun e -> e.Depgraph.cls = Depgraph.Address && e.Depgraph.src = e.Depgraph.dst)
      g.Depgraph.edges
  in
  Alcotest.(check int) "distance 1" 1 e.Depgraph.distance

let test_accumulator_not_address_recurrence () =
  (* s = s + a[i]: scalar recurrence but no miss serialization *)
  let p =
    let open Builder in
    program "acc"
      ~arrays:[ array_decl "a" 256; array_decl "o" 1 ]
      [
        assign "s" (flt 0.0);
        loop "i" (cst 0) (cst 256) [ assign "s" (sc "s" + arr "a" (ix "i")) ];
        store (aref "o" (cst 0)) (sc "s");
      ]
  in
  let loc = Locality.analyze ~line_size:64 p in
  let l = match p.Ast.body with [ _; Ast.Loop l; _ ] -> l | _ -> assert false in
  let g = Depgraph.analyze loc (Depgraph.Counted l) in
  Alcotest.(check bool) "no address recurrence" false g.Depgraph.has_address_recurrence;
  (* only the self-spatial cache-line recurrence of a[i] remains *)
  Alcotest.(check int) "one recurrence" 1 (List.length g.Depgraph.recurrences)

let test_two_recurrences_max_alpha () =
  (* two self-spatial streams with different strides: alpha is the max *)
  let p =
    let open Builder in
    program "two"
      ~arrays:[ array_decl "a" 1024; array_decl "b" 1024; array_decl "o" 64 ]
      [
        loop "j" (cst 0) (cst 4)
          [
            loop "i" (cst 0) (cst 128)
              [
                store (aref "o" (ix "j"))
                  (arr "o" (ix "j") + arr "a" (ix "i") + arr "b" (2 *: ix "i"));
              ];
          ];
      ]
  in
  let _, g = analyze_first_inner p in
  Alcotest.(check int) "two cache-line recurrences" 2
    (List.length g.Depgraph.recurrences);
  Alcotest.(check (float 1e-9)) "alpha max" 1.0 (Depgraph.alpha g)

let test_no_recurrence_big_body () =
  (* padded records: lm=1, no self edges, no recurrences *)
  let p =
    let open Builder in
    program "pad"
      ~arrays:[ array_decl "rec" 1024; array_decl "o" 1024 ]
      [
        loop "i" (cst 0) (cst 128)
          [ store (aref "o" (8 *: ix "i")) (arr "rec" (8 *: ix "i")) ];
      ]
  in
  let _, g = analyze_first_inner p in
  Alcotest.(check int) "no recurrences" 0 (List.length g.Depgraph.recurrences);
  Alcotest.(check (float 1e-9)) "alpha 0" 0.0 (Depgraph.alpha g)


let test_to_dot () =
  let p =
    let open Builder in
    program "dot"
      ~arrays:[ array_decl "a" 4096; array_decl "s" 64 ]
      [
        loop "j" (cst 0) (cst 64)
          [
            loop "i" (cst 0) (cst 64)
              [ store (aref "s" (ix "j")) (arr "s" (ix "j") + arr "a" (idx2 ~cols:64 (ix "j") (ix "i"))) ];
          ];
      ]
  in
  let loc, g = analyze_first_inner p in
  let dot = Depgraph.to_dot loc g in
  let contains sub =
    let n = String.length dot and m = String.length sub in
    let rec go i = i + m <= n && (String.sub dot i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph");
  Alcotest.(check bool) "dotted cache-line edge" true (contains "style=dotted");
  Alcotest.(check bool) "labels locality" true (contains "leading")

let () =
  Alcotest.run "depgraph"
    [
      ( "scc",
        [
          Alcotest.test_case "cycle" `Quick test_scc_simple_cycle;
          Alcotest.test_case "dag" `Quick test_scc_dag;
          Alcotest.test_case "reverse topological" `Quick test_scc_reverse_topological;
          qtest prop_scc_mutual_reachability;
        ] );
      ( "recurrences",
        [
          Alcotest.test_case "self-spatial" `Quick test_self_spatial_recurrence;
          Alcotest.test_case "indirect edge, no cycle" `Quick test_indirect_address_edge_no_cycle;
          Alcotest.test_case "pointer chase" `Quick test_pointer_chase_recurrence;
          Alcotest.test_case "scalar feedback" `Quick test_scalar_carried_address_recurrence;
          Alcotest.test_case "accumulator benign" `Quick test_accumulator_not_address_recurrence;
          Alcotest.test_case "max alpha" `Quick test_two_recurrences_max_alpha;
          Alcotest.test_case "padded no recurrence" `Quick test_no_recurrence_big_body;
          Alcotest.test_case "dot export" `Quick test_to_dot;
        ] );
    ]
