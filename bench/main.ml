(* Benchmark harness.

   Two parts:

   1. Reproduction of every table and figure in the paper's evaluation
      (Table 1, Table 2, Section 5.1 Latbench, Figure 3(a)/(b), Table 3,
      Figure 4(a)/(b), Section 5.2 1 GHz) — each regenerated from scratch
      by the experiment harness and printed next to the paper's numbers.
      Pass experiment ids as arguments to run a subset.

   2. Bechamel microbenchmarks of the pipeline stages those experiments
      are built from (analysis, transformation, lowering, simulation), so
      regressions in the machinery itself are visible. Pass "micro" to run
      only these.  *)

open Bechamel
open Toolkit
open Memclust_ir
open Memclust_locality
open Memclust_depgraph
open Memclust_transform
open Memclust_cluster
open Memclust_codegen
open Memclust_sim
open Memclust_workloads
open Memclust_harness

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures                              *)
(* ------------------------------------------------------------------ *)

let run_experiments ids =
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun id ->
      match Figures.by_id id with
      | Some f -> Printf.printf "==== %s ====\n%s\n\n%!" id (f ())
      | None -> Printf.eprintf "unknown experiment id %s\n" id)
    ids;
  Printf.printf
    "==== sweep wall-clock: %.1f s (%d experiments, sim mode %s, %d pool \
     domains) ====\n\
     %!"
    (Unix.gettimeofday () -. t0)
    (List.length ids)
    (match Machine.default_mode () with
    | Machine.Cycle -> "cycle"
    | Machine.Event -> "event")
    (Memclust_util.Domain_pool.size (Memclust_util.Domain_pool.default ()))

(* ------------------------------------------------------------------ *)
(* Part 1b: per-pass transformation time                               *)
(* ------------------------------------------------------------------ *)

(* Wall time each pipeline pass spends on each workload, straight from
   the pass manager's instrumentation trace — the transformation-side
   complement to the microbenchmarks below. *)
let run_pass_times () =
  let ws = Registry.latbench () :: Registry.applications () in
  let rows =
    List.map
      (fun (w : Workload.t) ->
        let machine =
          {
            (Experiment.machine_of_config Config.base) with
            Machine_model.max_procs = max 1 w.Workload.mp_procs;
          }
        in
        let options = { Driver.default_options with machine } in
        let _, report =
          Driver.run ~options ~init:w.Workload.init w.Workload.program
        in
        let t = report.Driver.trace in
        w.Workload.name
        :: List.map
             (fun (e : Pass.Pipeline.entry) ->
               if e.Pass.Pipeline.ran then
                 Memclust_util.Table.fmt_float e.Pass.Pipeline.wall_ms
               else "-")
             t.Pass.Pipeline.entries)
      ws
  in
  Printf.printf "==== per-pass transformation time (ms) ====\n";
  Memclust_util.Table.print ~header:("workload" :: Driver.pass_names) rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2: pipeline microbenchmarks                                    *)
(* ------------------------------------------------------------------ *)

(* a small matrix-traversal nest (the Figure 2 example) *)
let fig2_program n =
  let open Builder in
  program "fig2"
    ~arrays:[ array_decl "a" (Stdlib.( * ) n n); array_decl "s" n ]
    [
      loop "j" (cst 0) (cst n)
        [
          loop "i" (cst 0) (cst n)
            [
              store (aref "s" (ix "j"))
                (arr "s" (ix "j") + arr "a" (idx2 ~cols:n (ix "j") (ix "i")));
            ];
        ];
    ]

let micro_tests () =
  let n = 64 in
  let p = fig2_program n in
  let loc = Locality.analyze ~line_size:64 p in
  let inner =
    match p.Ast.body with
    | [ Ast.Loop l ] -> (
        match l.Ast.body with
        | [ Ast.Loop i ] -> Depgraph.Counted i
        | _ -> assert false)
    | _ -> assert false
  in
  let outer =
    match p.Ast.body with [ Ast.Loop l ] -> l | _ -> assert false
  in
  let graph = Depgraph.analyze loc inner in
  let data = Data.create p in
  let em3d = Em3d.make ~nodes:512 ~degree:4 () in
  let affine = Affine.of_terms [ ("i", 1); ("j", n) ] 3 in
  let env v = if String.equal v "i" then 7 else 11 in
  let small_sim () =
    let d = Data.create p in
    let lowered = Lower.build ~nprocs:1 p d in
    ignore (Machine.run Config.base ~home:(fun _ -> 0) lowered)
  in
  [
    Test.make ~name:"affine-eval" (Staged.stage (fun () -> Affine.eval env affine));
    Test.make ~name:"locality-analyze"
      (Staged.stage (fun () -> Locality.analyze ~line_size:64 p));
    Test.make ~name:"depgraph-analyze"
      (Staged.stage (fun () -> Depgraph.analyze loc inner));
    Test.make ~name:"f-estimate"
      (Staged.stage (fun () ->
           Festimate.compute Machine_model.base loc ~pm:(fun _ -> 1.0) ~graph inner));
    Test.make ~name:"unroll-and-jam"
      (Staged.stage (fun () -> Unroll_jam.apply ~factor:8 outer));
    Test.make ~name:"scalar-replace"
      (Staged.stage (fun () -> Scalar_replace.apply_innermost p));
    Test.make ~name:"miss-pack-schedule"
      (Staged.stage (fun () -> Schedule.pack_misses loc outer.Ast.body));
    Test.make ~name:"lower-trace"
      (Staged.stage (fun () -> Lower.build ~nprocs:1 p (Data.copy data)));
    Test.make ~name:"simulate-small" (Staged.stage small_sim);
    Test.make ~name:"profile-pm"
      (Staged.stage (fun () ->
           let d = Data.create em3d.Workload.program in
           em3d.Workload.init d;
           Profile.run em3d.Workload.program d));
    Test.make ~name:"cluster-driver"
      (Staged.stage (fun () ->
           Driver.run
             ~options:{ Driver.default_options with profile_pm = false }
             p));
  ]

let run_micro () =
  let tests = Test.make_grouped ~name:"memclust" ~fmt:"%s %s" (micro_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Bechamel.Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  Printf.printf "==== microbenchmarks (ns per run) ====\n";
  let json_rows = ref [] in
  Hashtbl.iter
    (fun _metric tbl ->
      let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
      let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
      List.iter
        (fun (name, ols_result) ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Printf.printf "  %-36s %12.1f\n" name est;
              json_rows := (name, Some est) :: !json_rows
          | Some l ->
              Printf.printf "  %-36s %12s\n" name
                (String.concat ","
                   (List.map (fun e -> Printf.sprintf "%.1f" e) l));
              json_rows := (name, None) :: !json_rows
          | None ->
              Printf.printf "  %-36s %12s\n" name "n/a";
              json_rows := (name, None) :: !json_rows)
        rows)
    results;
  print_newline ();
  (* machine-readable trail for tracking the perf trajectory across PRs *)
  let rows = List.rev !json_rows in
  let oc = open_out "BENCH_micro.json" in
  Printf.fprintf oc "{\n";
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "  %S: %s%s\n" name
        (match est with Some e -> Printf.sprintf "%.1f" e | None -> "null")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "(ns/run also written to BENCH_micro.json)\n%!"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
      run_experiments Figures.all_ids;
      run_pass_times ();
      run_micro ()
  | [ "micro" ] -> run_micro ()
  | [ "passes" ] -> run_pass_times ()
  | ids -> run_experiments ids
