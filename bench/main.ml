(* Benchmark harness.

   Two parts:

   1. Reproduction of every table and figure in the paper's evaluation
      (Table 1, Table 2, Section 5.1 Latbench, Figure 3(a)/(b), Table 3,
      Figure 4(a)/(b), Section 5.2 1 GHz) — each regenerated from scratch
      by the experiment harness and printed next to the paper's numbers.
      Pass experiment ids as arguments to run a subset.

   2. Bechamel microbenchmarks of the pipeline stages those experiments
      are built from (analysis, transformation, lowering, simulation), so
      regressions in the machinery itself are visible. Pass "micro" to run
      only these.

   3. Simulator-mode wall-clock comparison ("sim"): exact event-driven vs
      sampled simulation on the registry workloads, recording speedups and
      whether the exact results land inside the sampled confidence
      intervals. "sim smoke" runs the tiny workload sizes and additionally
      cross-checks cycle-vs-event bit-identity.

   JSON trails (BENCH_micro.json, BENCH_sim.json) are written at the repo
   root regardless of the working directory.  *)

open Bechamel
open Toolkit
open Memclust_ir
open Memclust_locality
open Memclust_depgraph
open Memclust_transform
open Memclust_cluster
open Memclust_codegen
open Memclust_sim
open Memclust_workloads
open Memclust_harness

(* JSON trails go next to dune-project so "dune exec bench/main.exe" and a
   direct _build/default/bench/main.exe run agree on where they land. *)
let repo_root () =
  let rec up d =
    if Sys.file_exists (Filename.concat d "dune-project") then d
    else
      let parent = Filename.dirname d in
      if String.equal parent d then Sys.getcwd () else up parent
  in
  up (Sys.getcwd ())

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures                              *)
(* ------------------------------------------------------------------ *)

let run_experiments ids =
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun id ->
      match Figures.by_id id with
      | Some f -> Printf.printf "==== %s ====\n%s\n\n%!" id (f ())
      | None -> Printf.eprintf "unknown experiment id %s\n" id)
    ids;
  Printf.printf
    "==== sweep wall-clock: %.1f s (%d experiments, sim mode %s, %d pool \
     domains) ====\n\
     %!"
    (Unix.gettimeofday () -. t0)
    (List.length ids)
    (Machine.mode_to_string (Machine.default_mode ()))
    (Memclust_util.Domain_pool.size (Memclust_util.Domain_pool.default ()))

(* ------------------------------------------------------------------ *)
(* Part 1b: per-pass transformation time                               *)
(* ------------------------------------------------------------------ *)

(* Wall time each pipeline pass spends on each workload, straight from
   the pass manager's instrumentation trace — the transformation-side
   complement to the microbenchmarks below. *)
let run_pass_times () =
  let ws = Registry.latbench () :: Registry.applications () in
  let rows =
    List.map
      (fun (w : Workload.t) ->
        let machine =
          {
            (Experiment.machine_of_config Config.base) with
            Machine_model.max_procs = max 1 w.Workload.mp_procs;
          }
        in
        let options = { Driver.default_options with machine } in
        let _, report =
          Driver.run ~options ~init:w.Workload.init w.Workload.program
        in
        let t = report.Driver.trace in
        w.Workload.name
        :: List.map
             (fun (e : Pass.Pipeline.entry) ->
               if e.Pass.Pipeline.ran then
                 Memclust_util.Table.fmt_float e.Pass.Pipeline.wall_ms
               else "-")
             t.Pass.Pipeline.entries)
      ws
  in
  Printf.printf "==== per-pass transformation time (ms) ====\n";
  Memclust_util.Table.print ~header:("workload" :: Driver.pass_names) rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2: pipeline microbenchmarks                                    *)
(* ------------------------------------------------------------------ *)

(* a small matrix-traversal nest (the Figure 2 example) *)
let fig2_program n =
  let open Builder in
  program "fig2"
    ~arrays:[ array_decl "a" (Stdlib.( * ) n n); array_decl "s" n ]
    [
      loop "j" (cst 0) (cst n)
        [
          loop "i" (cst 0) (cst n)
            [
              store (aref "s" (ix "j"))
                (arr "s" (ix "j") + arr "a" (idx2 ~cols:n (ix "j") (ix "i")));
            ];
        ];
    ]

let micro_tests () =
  let n = 64 in
  let p = fig2_program n in
  let loc = Locality.analyze ~line_size:64 p in
  let inner =
    match p.Ast.body with
    | [ Ast.Loop l ] -> (
        match l.Ast.body with
        | [ Ast.Loop i ] -> Depgraph.Counted i
        | _ -> assert false)
    | _ -> assert false
  in
  let outer =
    match p.Ast.body with [ Ast.Loop l ] -> l | _ -> assert false
  in
  let graph = Depgraph.analyze loc inner in
  let data = Data.create p in
  let em3d = Em3d.make ~nodes:512 ~degree:4 () in
  let affine = Affine.of_terms [ ("i", 1); ("j", n) ] 3 in
  let env v = if String.equal v "i" then 7 else 11 in
  let small_sim () =
    let d = Data.create p in
    let lowered = Lower.build ~nprocs:1 p d in
    ignore (Machine.run Config.base ~home:(fun _ -> 0) lowered)
  in
  [
    Test.make ~name:"affine-eval" (Staged.stage (fun () -> Affine.eval env affine));
    Test.make ~name:"locality-analyze"
      (Staged.stage (fun () -> Locality.analyze ~line_size:64 p));
    Test.make ~name:"depgraph-analyze"
      (Staged.stage (fun () -> Depgraph.analyze loc inner));
    Test.make ~name:"f-estimate"
      (Staged.stage (fun () ->
           Festimate.compute Machine_model.base loc ~pm:(fun _ -> 1.0) ~graph inner));
    Test.make ~name:"unroll-and-jam"
      (Staged.stage (fun () -> Unroll_jam.apply ~factor:8 outer));
    Test.make ~name:"scalar-replace"
      (Staged.stage (fun () -> Scalar_replace.apply_innermost p));
    Test.make ~name:"miss-pack-schedule"
      (Staged.stage (fun () -> Schedule.pack_misses loc outer.Ast.body));
    Test.make ~name:"lower-trace"
      (Staged.stage (fun () -> Lower.build ~nprocs:1 p (Data.copy data)));
    Test.make ~name:"simulate-small" (Staged.stage small_sim);
    Test.make ~name:"profile-pm"
      (Staged.stage (fun () ->
           let d = Data.create em3d.Workload.program in
           em3d.Workload.init d;
           Profile.run em3d.Workload.program d));
    Test.make ~name:"cluster-driver"
      (Staged.stage (fun () ->
           Driver.run
             ~options:{ Driver.default_options with profile_pm = false }
             p));
  ]

let run_micro () =
  let tests = Test.make_grouped ~name:"memclust" ~fmt:"%s %s" (micro_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Bechamel.Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  Printf.printf "==== microbenchmarks (ns per run) ====\n";
  let json_rows = ref [] in
  Hashtbl.iter
    (fun _metric tbl ->
      let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
      let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
      List.iter
        (fun (name, ols_result) ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Printf.printf "  %-36s %12.1f\n" name est;
              json_rows := (name, Some est) :: !json_rows
          | Some l ->
              Printf.printf "  %-36s %12s\n" name
                (String.concat ","
                   (List.map (fun e -> Printf.sprintf "%.1f" e) l));
              json_rows := (name, None) :: !json_rows
          | None ->
              Printf.printf "  %-36s %12s\n" name "n/a";
              json_rows := (name, None) :: !json_rows)
        rows)
    results;
  print_newline ();
  (* machine-readable trail for tracking the perf trajectory across PRs *)
  let rows = List.rev !json_rows in
  let oc = open_out (Filename.concat (repo_root ()) "BENCH_micro.json") in
  Printf.fprintf oc "{\n";
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "  %S: %s%s\n" name
        (match est with Some e -> Printf.sprintf "%.1f" e | None -> "null")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "(ns/run also written to BENCH_micro.json)\n%!"

(* ------------------------------------------------------------------ *)
(* Part 3: simulator-mode wall-clock comparison                        *)
(* ------------------------------------------------------------------ *)

type sim_row = {
  sr_workload : string;
  sr_version : string;
  sr_mode : string;
  sr_cycles : int;
  sr_wall_s : float;
  sr_speedup_vs_event : float option;
  sr_exact_in_ci : bool option;
      (* sampled rows: exact event cycle count inside the sampled CI *)
}

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let write_sim_json rows ratio_checks =
  let path = Filename.concat (repo_root ()) "BENCH_sim.json" in
  let oc = open_out path in
  let b = function true -> "true" | false -> "false" in
  Printf.fprintf oc "{\n  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"version\": %S, \"mode\": %S, \"cycles\": \
         %d, \"wall_s\": %.4f, \"speedup_vs_event\": %s, \"exact_in_ci\": \
         %s}%s\n"
        r.sr_workload r.sr_version r.sr_mode r.sr_cycles r.sr_wall_s
        (match r.sr_speedup_vs_event with
        | Some s -> Printf.sprintf "%.2f" s
        | None -> "null")
        (match r.sr_exact_in_ci with Some v -> b v | None -> "null")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"ratio_checks\": [\n";
  List.iteri
    (fun i (w, exact, est, rel, ok) ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"exact_ratio\": %.4f, \"sampled_ratio\": \
         %.4f, \"rel_ci\": %.4f, \"within_ci\": %s}%s\n"
        w exact est rel (b ok)
        (if i = List.length ratio_checks - 1 then "" else ","))
    ratio_checks;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "(written to %s)\n%!" path

let run_sim args =
  let smoke = List.mem "smoke" args in
  let names = List.filter (fun a -> not (String.equal a "smoke")) args in
  let ws =
    if smoke then Registry.small ()
    else if names = [] then Registry.latbench () :: Registry.applications ()
    else
      List.filter_map
        (fun n ->
          match Registry.by_name n with
          | Some w -> Some w
          | None ->
              Printf.eprintf "unknown workload %s\n" n;
              None)
        names
  in
  let sampled_params =
    if smoke then
      (* tiny traces: shrink the period so several windows still fit *)
      match Sampling.parse "sampled:2048:512:128" with
      | Some p -> p
      | None -> assert false
    else Sampling.default
  in
  Printf.printf "==== simulator modes: event vs %s ====\n%!"
    (Sampling.to_string sampled_params);
  let rows = ref [] in
  let ratio_checks = ref [] in
  List.iter
    (fun (w : Workload.t) ->
      let nprocs = max 1 w.Workload.mp_procs in
      let cfg = Config.with_l2 w.Workload.l2_bytes Config.base in
      let versions =
        [
          ("base", Program.renumber w.Workload.program);
          ("clustered", fst (Experiment.transform cfg w));
        ]
      in
      let cis =
        List.map
          (fun (vname, program) ->
            let data = Data.create program in
            w.Workload.init data;
            let lowered = Lower.build ~nprocs program data in
            let home = Data.home_of_addr data ~nprocs in
            let ev, ev_wall =
              time (fun () ->
                  Machine.run cfg ~mode:Machine.Event ~home lowered)
            in
            rows :=
              {
                sr_workload = w.Workload.name;
                sr_version = vname;
                sr_mode = "event";
                sr_cycles = ev.Machine.cycles;
                sr_wall_s = ev_wall;
                sr_speedup_vs_event = None;
                sr_exact_in_ci = None;
              }
              :: !rows;
            if smoke then begin
              let cy, cy_wall =
                time (fun () ->
                    Machine.run cfg ~mode:Machine.Cycle ~home lowered)
              in
              if cy.Machine.cycles <> ev.Machine.cycles then
                failwith
                  (Printf.sprintf "%s/%s: cycle mode %d <> event mode %d"
                     w.Workload.name vname cy.Machine.cycles ev.Machine.cycles);
              rows :=
                {
                  sr_workload = w.Workload.name;
                  sr_version = vname;
                  sr_mode = "cycle";
                  sr_cycles = cy.Machine.cycles;
                  sr_wall_s = cy_wall;
                  sr_speedup_vs_event = None;
                  sr_exact_in_ci = None;
                }
                :: !rows
            end;
            let (sres, est), s_wall =
              time (fun () ->
                  Machine.run_estimated cfg
                    ~mode:(Machine.Sampled sampled_params) ~home lowered)
            in
            let est =
              match est with Some e -> e | None -> assert false
            in
            let ci = est.Sampling.cycles_ci in
            let in_ci =
              Sampling.in_ci ci (float_of_int ev.Machine.cycles)
            in
            let speedup = ev_wall /. Float.max 1e-9 s_wall in
            rows :=
              {
                sr_workload = w.Workload.name;
                sr_version = vname;
                sr_mode = "sampled";
                sr_cycles = sres.Machine.cycles;
                sr_wall_s = s_wall;
                sr_speedup_vs_event = Some speedup;
                sr_exact_in_ci = Some in_ci;
              }
              :: !rows;
            Printf.printf
              "  %-10s %-10s event %8d cyc %7.3fs | sampled %8d ± %.0f cyc \
               %7.3fs | %5.1fx %s\n\
               %!"
              w.Workload.name vname ev.Machine.cycles ev_wall sres.Machine.cycles
              ci.Sampling.half s_wall speedup
              (if in_ci then "(exact in CI)" else "(exact OUTSIDE CI)");
            (ev, est))
          versions
      in
      (* does the sampled base-vs-clustered cycle ratio agree with the
         exact one, to within the combined relative CI? *)
      match cis with
      | [ (ev_b, est_b); (ev_c, est_c) ] ->
          let exact =
            float_of_int ev_b.Machine.cycles /. float_of_int ev_c.Machine.cycles
          in
          let est =
            est_b.Sampling.cycles_ci.Sampling.est
            /. est_c.Sampling.cycles_ci.Sampling.est
          in
          let rel =
            (est_b.Sampling.cycles_ci.Sampling.half
            /. est_b.Sampling.cycles_ci.Sampling.est)
            +. est_c.Sampling.cycles_ci.Sampling.half
               /. est_c.Sampling.cycles_ci.Sampling.est
          in
          let ok = Float.abs (exact -. est) <= est *. rel in
          Printf.printf
            "  %-10s base/clustered ratio: exact %.3f, sampled %.3f ± %.1f%% \
             %s\n\
             %!"
            w.Workload.name exact est (100.0 *. rel)
            (if ok then "(agrees)" else "(DISAGREES)");
          ratio_checks := (w.Workload.name, exact, est, rel, ok) :: !ratio_checks
      | _ -> ())
    ws;
  write_sim_json (List.rev !rows) (List.rev !ratio_checks)

let () =
  (* fail fast if a preset was edited into an inconsistent state *)
  List.iter Config.validate_exn
    [ Config.base; Config.exemplar_like; Config.three_level ];
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
      run_experiments Figures.all_ids;
      run_pass_times ();
      run_micro ()
  | [ "micro" ] -> run_micro ()
  | [ "passes" ] -> run_pass_times ()
  | "sim" :: rest -> run_sim rest
  | ids -> run_experiments ids
