(* memclust-repro: command-line driver for the paper reproduction.

   Subcommands:
     list                      — list experiments and workloads
     experiment <id> [...]     — reproduce a table/figure by id
     run <workload>            — base-vs-clustered on one workload
     sweep [<workload>..]      — lp / line-size sensitivity sweep (JSON)
     show <workload>           — print base and transformed IR
     analyze <workload>        — locality / dependence / f analyses
     trace [<workload>..]      — per-pass pipeline instrumentation *)

open Cmdliner
open Memclust_ir
open Memclust_codegen
open Memclust_sim
open Memclust_workloads
open Memclust_harness

(* --sim-mode / --sample-period: exported through MEMCLUST_SIM_MODE so the
   choice reaches every Config the harness builds internally (Figures
   constructs its own), via Machine.resolve_mode's env fallback. *)

let sim_mode_arg =
  let doc =
    "Simulation mode: $(b,cycle), $(b,event) or \
     $(b,sampled)[:PERIOD:WINDOW[:WARMUP]]. Defaults to the \
     $(b,MEMCLUST_SIM_MODE) environment variable, else event."
  in
  Arg.(value & opt (some string) None & info [ "sim-mode" ] ~docv:"MODE" ~doc)

let sample_period_arg =
  let doc =
    "Sampled mode with the given period (retired instructions per \
     processor between detailed windows); window and warm-up scale \
     proportionally. Shorthand for --sim-mode sampled:PERIOD:.."
  in
  Arg.(value & opt (some int) None & info [ "sample-period" ] ~docv:"N" ~doc)

let apply_sim_flags mode period =
  let s =
    match (period, mode) with
    | None, m -> m
    | Some p, (None | Some "sampled") ->
        let w =
          max 2
            (p * Sampling.default.Sampling.window
            / Sampling.default.Sampling.period)
        in
        Some (Printf.sprintf "sampled:%d:%d:%d" p w (max 1 (w / 4)))
    | Some _, Some m ->
        Printf.eprintf
          "--sample-period only combines with sampled mode (got --sim-mode %s)\n"
          m;
        exit 1
  in
  match s with
  | None -> ()
  | Some s -> (
      match Machine.mode_of_string s with
      | Some _ -> Unix.putenv "MEMCLUST_SIM_MODE" s
      | None ->
          Printf.eprintf
            "bad simulation mode %s (cycle, event or \
             sampled[:PERIOD:WINDOW[:WARMUP]])\n"
            s;
          exit 1)

(* Resilience flags, exported the same way: environment variables are the
   only channel that reaches Machines and Pipelines constructed deep
   inside the harness (Figures builds its own Configs; Experiment builds
   its own pass options). Each value is validated here so a typo fails
   fast instead of deep inside a worker domain. *)

let watchdog_arg =
  let doc =
    "Simulator forward-progress watchdog: abort (with a state dump) any \
     simulation making no progress for $(docv) cycles. Defaults to the \
     $(b,MEMCLUST_WATCHDOG_CYCLES) environment variable, else 1000000."
  in
  Arg.(value & opt (some int) None & info [ "watchdog-cycles" ] ~docv:"N" ~doc)

let time_budget_arg =
  let doc =
    "Wall-clock budget per simulation in seconds (0 disables, the \
     default); exceeding it raises the same structured deadlock error as \
     the cycle watchdog."
  in
  Arg.(value & opt (some float) None & info [ "time-budget" ] ~docv:"SECONDS" ~doc)

let faults_arg =
  let doc =
    "Deterministic memory-system fault injection: $(b,SEED[:RATE]) \
     (delayed fills at RATE, NACKs and bank stalls at RATE/2; RATE \
     defaults to 0.05). Same syntax as $(b,MEMCLUST_FAULTS)."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SEED[:RATE]" ~doc)

let chaos_arg =
  let doc =
    "Chaos-test the clustering pipeline: sabotage passes (crash or \
     corrupt, drawn from SEED) with probability RATE (default 0.25). The \
     fail-safe pipeline must degrade, never crash or mis-transform. Same \
     syntax as $(b,MEMCLUST_CHAOS_PASSES)."
  in
  Arg.(
    value & opt (some string) None & info [ "chaos-passes" ] ~docv:"SEED[:RATE]" ~doc)

let fail_pass_arg =
  let doc =
    "Unconditionally corrupt the named clustering pass (resilience demo: \
     the run must complete with that pass rolled back and recorded as \
     degraded). Same as $(b,MEMCLUST_FAIL_PASS)."
  in
  Arg.(value & opt (some string) None & info [ "fail-pass" ] ~docv:"PASS" ~doc)

let apply_resilience_flags watchdog budget faults chaos fail_pass =
  let bad fmt = Printf.ksprintf (fun s -> Printf.eprintf "%s\n" s; exit 1) fmt in
  Option.iter
    (fun n ->
      if n <= 0 then bad "--watchdog-cycles must be positive (got %d)" n;
      Unix.putenv "MEMCLUST_WATCHDOG_CYCLES" (string_of_int n))
    watchdog;
  Option.iter
    (fun s ->
      if s < 0.0 then bad "--time-budget must be >= 0 (got %g)" s;
      Unix.putenv "MEMCLUST_TIME_BUDGET_S" (string_of_float s))
    budget;
  Option.iter
    (fun s ->
      (match Faults.of_string s with
      | Ok _ -> ()
      | Error e -> bad "bad --faults %s: %s" s e);
      Unix.putenv "MEMCLUST_FAULTS" s)
    faults;
  Option.iter
    (fun s ->
      Unix.putenv "MEMCLUST_CHAOS_PASSES" s;
      try ignore (Memclust_cluster.Pass.chaos_of_env ())
      with Invalid_argument m -> bad "bad --chaos-passes %s: %s" s m)
    chaos;
  Option.iter
    (fun p ->
      if not (List.mem p Memclust_cluster.Driver.pass_names) then
        bad "unknown --fail-pass %s (have: %s)" p
          (String.concat ", " Memclust_cluster.Driver.pass_names);
      Unix.putenv "MEMCLUST_FAIL_PASS" p)
    fail_pass

let resilience_term =
  Term.(
    const apply_resilience_flags $ watchdog_arg $ time_budget_arg $ faults_arg
    $ chaos_arg $ fail_pass_arg)

let list_cmd =
  let doc = "List experiment ids and workloads." in
  let run () =
    print_endline "experiments:";
    List.iter (fun id -> Printf.printf "  %s\n" id) Figures.all_ids;
    print_endline "workloads:";
    List.iter
      (fun w ->
        Printf.printf "  %-11s %s\n" w.Workload.name w.Workload.description)
      (Registry.latbench () :: Registry.applications ())
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let experiment_cmd =
  let doc = "Reproduce one or more of the paper's tables/figures." in
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  let checkpoint_arg =
    let doc =
      "Checkpoint completed artifacts to directory $(docv) (created if \
       missing) and skip artifacts already checkpointed there, so an \
       interrupted batch resumes instead of recomputing."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc)
  in
  let run () mode period ckpt ids =
    apply_sim_flags mode period;
    List.iter
      (fun id ->
        if not (List.mem id Figures.all_ids) then begin
          Printf.eprintf "unknown experiment %s (see `repro list`)\n" id;
          exit 1
        end)
      ids;
    let ck = Option.map Checkpoint.create ckpt in
    (* one wedged artifact degrades; the others still run and checkpoint *)
    let degraded =
      List.filter_map
        (fun id ->
          match Option.bind ck (fun c -> Checkpoint.load c id) with
          | Some text ->
              Printf.printf "==== %s (from checkpoint) ====\n%s\n\n%!" id text;
              None
          | None -> (
              match Figures.run_safe id with
              | Ok text ->
                  Printf.printf "==== %s ====\n%s\n\n%!" id text;
                  Option.iter (fun c -> Checkpoint.save c id text) ck;
                  Some (id, None)
              | Error e ->
                  Printf.printf "==== %s DEGRADED ====\n%s\n\n%!" id
                    (Memclust_util.Error.to_string e);
                  Some (id, Some e)))
        ids
      |> List.filter_map (fun (id, e) -> Option.map (fun e -> (id, e)) e)
    in
    if degraded <> [] then begin
      Printf.printf "degraded artifacts (%d of %d):\n" (List.length degraded)
        (List.length ids);
      List.iter
        (fun (id, e) ->
          Printf.printf "  %s: %s\n" id (Memclust_util.Error.kind e))
        degraded
    end
  in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(
      const run $ resilience_term $ sim_mode_arg $ sample_period_arg
      $ checkpoint_arg $ ids)

let workload_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let procs_arg =
  Arg.(value & opt (some int) None & info [ "p"; "procs" ] ~docv:"N")

let lookup name =
  match Registry.by_name name with
  | Some w -> w
  | None ->
      Printf.eprintf "unknown workload %s (see `repro list`)\n" name;
      exit 1

let run_cmd =
  let doc = "Simulate one workload, base vs clustered, and report." in
  let run () name procs mode period =
    apply_sim_flags mode period;
    let w = lookup name in
    let nprocs = Option.value ~default:w.Workload.mp_procs procs in
    let go version =
      match
        Experiment.execute_result
          { Experiment.workload = w; config = Config.base; nprocs; version }
      with
      | Ok o -> o
      | Error e ->
          (* a wedged or crashed simulation must not take the CLI down
             with a backtrace: report what is known and stop cleanly *)
          Format.printf
            "== %s on %d processor(s): DEGRADED ==@.%a@.@.\
             run aborted; no results for this point.@."
            w.Workload.name nprocs Memclust_util.Error.pp e;
          exit 0
    in
    let b = go Experiment.Base in
    let c = go Experiment.Clustered in
    Format.printf "== %s on %d processor(s) ==@." w.Workload.name nprocs;
    let mix label (o : Experiment.outcome) =
      let data = Data.create o.Experiment.program in
      w.Workload.init data;
      let lowered = Lower.build ~nprocs o.Experiment.program data in
      Format.printf "%s mix: %a@." label Tracestats.pp (Tracestats.of_lowered lowered)
    in
    mix "base     " b;
    mix "clustered" c;
    (match c.Experiment.cluster_report with
    | Some r -> Format.printf "%a@.@." Memclust_cluster.Driver.pp_report r
    | None -> ());
    (match c.Experiment.trace with
    | Some t -> (
        match Memclust_cluster.Pass.Pipeline.degraded_passes t with
        | [] -> ()
        | ds ->
            Format.printf
              "== DEGRADED: %d pass(es) rolled back (fail-safe pipeline) ==@."
              (List.length ds);
            List.iter
              (fun (pass, reason) -> Format.printf "  %s: %s@." pass reason)
              ds;
            Format.printf "@.")
    | None -> ());
    Format.printf "base:@.  %a@.clustered:@.  %a@." Machine.pp_result
      b.Experiment.result Machine.pp_result c.Experiment.result;
    let ci label (o : Experiment.outcome) =
      match o.Experiment.estimate with
      | Some est -> Format.printf "%s sampling estimate:@.  %a@." label Sampling.pp est
      | None -> ()
    in
    ci "base" b;
    ci "clustered" c;
    Format.printf "execution time reduction: %.1f%%@."
      (100.0
      *. (1.0
         -. float_of_int (Experiment.exec_cycles c)
            /. float_of_int (Experiment.exec_cycles b)))
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ resilience_term $ workload_arg $ procs_arg $ sim_mode_arg
      $ sample_period_arg)

(* lp / line-size sensitivity sweep: re-cluster and re-simulate the
   workload for every (MSHR count, line size) point. The clustering
   pipeline keys on the analysis machine model, so each point gets a
   transformation tuned to its lp — the paper's f >= alpha * lp rule
   means the base/clustered speedup should saturate once lp reaches the
   loop's achievable parallelism. *)
let sweep_cmd =
  let doc =
    "Sweep MSHR count (the outstanding-miss bound lp) and line size, \
     re-clustering for each point, and write the base/clustered cycle \
     counts to a JSON file."
  in
  let workloads_arg =
    let doc = "Workloads to sweep (default: Latbench)." in
    Arg.(value & pos_all string [] & info [] ~docv:"WORKLOAD" ~doc)
  in
  let mshrs_arg =
    let doc = "Comma-separated MSHR counts to sweep." in
    Arg.(
      value
      & opt (list ~sep:',' int) [ 1; 2; 4; 8; 16 ]
      & info [ "mshrs" ] ~docv:"N,.." ~doc)
  in
  let line_arg =
    let doc = "Comma-separated line sizes (bytes) to sweep." in
    Arg.(
      value
      & opt (list ~sep:',' int)
          [ Config.line Config.base ]
      & info [ "line" ] ~docv:"BYTES,.." ~doc)
  in
  let out_arg =
    let doc = "Output JSON file." in
    Arg.(
      value & opt string "BENCH_sweep.json" & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run () names mshrs lines out mode period =
    apply_sim_flags mode period;
    let ws =
      match names with [] -> [ Registry.latbench () ] | ns -> List.map lookup ns
    in
    let points =
      List.concat_map
        (fun m -> List.map (fun l -> (m, l)) lines)
        mshrs
    in
    let configs =
      List.map
        (fun (m, l) ->
          let cfg =
            { (Config.base |> Config.with_mshrs m |> Config.with_line l) with
              Config.name = Printf.sprintf "base-m%d-l%d" m l
            }
          in
          (match Config.validate cfg with
          | Ok () -> ()
          | Error e ->
              Printf.eprintf "invalid sweep point (mshrs=%d, line=%d): %s\n" m l
                (Memclust_util.Error.to_string e);
              exit 1);
          (m, l, cfg))
        points
    in
    let rows =
      List.concat_map
        (fun (w : Workload.t) ->
          let nprocs = max 1 w.Workload.mp_procs in
          Printf.printf "== %s ==\n%-6s %-6s %10s %10s %8s %10s %10s\n%!"
            w.Workload.name "mshrs" "line" "base" "clustered" "speedup"
            "b.full" "c.full";
          List.map
            (fun (m, l, cfg) ->
              let go version =
                Experiment.execute_cached
                  { Experiment.workload = w; config = cfg; nprocs; version }
              in
              let b = go Experiment.Base in
              let c = go Experiment.Clustered in
              let bc = Experiment.exec_cycles b
              and cc = Experiment.exec_cycles c in
              let speedup = float_of_int bc /. float_of_int cc in
              Printf.printf "%-6d %-6d %10d %10d %8.3f %10d %10d\n%!" m l bc cc
                speedup b.Experiment.result.Machine.mshr_full_events
                c.Experiment.result.Machine.mshr_full_events;
              Printf.sprintf
                "  {\"workload\": %S, \"mshrs\": %d, \"line\": %d, \
                 \"base_cycles\": %d, \"clustered_cycles\": %d, \"speedup\": \
                 %.4f, \"base_mshr_full\": %d, \"clustered_mshr_full\": %d, \
                 \"base_read_miss_latency\": %.2f, \
                 \"clustered_read_miss_latency\": %.2f}"
                w.Workload.name m l bc cc speedup
                b.Experiment.result.Machine.mshr_full_events
                c.Experiment.result.Machine.mshr_full_events
                b.Experiment.result.Machine.avg_read_miss_latency
                c.Experiment.result.Machine.avg_read_miss_latency)
            configs)
        ws
    in
    let oc = open_out out in
    output_string oc "[\n";
    output_string oc (String.concat ",\n" rows);
    output_string oc "\n]\n";
    close_out oc;
    Printf.printf "wrote %s (%d points)\n" out (List.length rows)
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ resilience_term $ workloads_arg $ mshrs_arg $ line_arg
      $ out_arg $ sim_mode_arg $ sample_period_arg)

let analyze_cmd =
  let doc =
    "Run the paper's analyses on a workload: locality classes, dependence \
     graphs, recurrences and the f estimate for every innermost loop."
  in
  let run name =
    let w = lookup name in
    let open Memclust_locality in
    let open Memclust_depgraph in
    let open Memclust_cluster in
    let p = Program.renumber w.Workload.program in
    let machine = Experiment.machine_of_config Config.base in
    let loc = Locality.analyze ~line_size:machine.Machine_model.line_size p in
    Format.printf "==== %s: locality classification ====@.%a@." w.Workload.name
      Locality.pp loc;
    let data = Data.create p in
    w.Workload.init data;
    let prof = Profile.run ~line_size:machine.Machine_model.line_size p data in
    let pm id = Profile.miss_rate prof id in
    Format.printf "==== irregular miss rates (profiled P_m) ====@.";
    List.iter
      (fun (info : Locality.info) ->
        match info.Locality.kind with
        | Locality.Leading_irregular ->
            Format.printf "  #%d: P_m = %.3f@." info.Locality.id
              (pm info.Locality.id)
        | _ -> ())
      (Locality.infos loc);
    (* every innermost loop-like construct *)
    let rec walk path stmt =
      match stmt with
      | Ast.Loop l ->
          let nested =
            List.filter
              (function Ast.Loop _ | Ast.Chase _ -> true | _ -> false)
              l.Ast.body
          in
          if nested = [] then report path (Depgraph.Counted l)
          else List.iter (walk (path @ [ l.Ast.var ])) l.Ast.body
      | Ast.Chase c -> report path (Depgraph.Chased c)
      | Ast.If (_, t, e) ->
          List.iter (walk path) t;
          List.iter (walk path) e
      | Ast.Assign _ | Ast.Use _ | Ast.Barrier | Ast.Prefetch _ -> ()
    and report path inner =
      let label =
        match inner with
        | Depgraph.Counted l -> "loop " ^ l.Ast.var
        | Depgraph.Chased c -> "chase " ^ c.Ast.cvar
      in
      let graph = Depgraph.analyze loc inner in
      let fest = Festimate.compute machine loc ~pm ~graph inner in
      Format.printf "@.==== innermost %s (under %s) ====@.%a@.alpha = %.2f@.%a@."
        label
        (String.concat ">" path)
        Depgraph.pp graph (Depgraph.alpha graph) Festimate.pp fest
    in
    List.iter (walk []) p.Ast.body
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ workload_arg)

let machine_for (w : Workload.t) =
  {
    (Experiment.machine_of_config Config.base) with
    Memclust_cluster.Machine_model.max_procs = max 1 w.Workload.mp_procs;
  }

let passes_arg =
  let doc =
    "Comma-separated pass names to run instead of the default pipeline \
     (see `repro trace` output for the registered names); uniquify is \
     always included."
  in
  Arg.(
    value
    & opt (some (list ~sep:',' string)) None
    & info [ "passes" ] ~docv:"PASS,.." ~doc)

let show_cmd =
  let doc = "Print a workload's IR before and after clustering." in
  let run name only =
    let w = lookup name in
    Format.printf "==== %s: base ====@.%a@.@." w.Workload.name Pretty.pp_program
      w.Workload.program;
    let open Memclust_cluster in
    let options = { Driver.default_options with Driver.machine = machine_for w } in
    let p, report =
      Driver.run ~options ~init:w.Workload.init ?only w.Workload.program
    in
    Format.printf "==== clustering decisions ====@.%a@.@." Driver.pp_report
      report;
    Format.printf "==== %s: clustered ====@.%a@." w.Workload.name
      Pretty.pp_program p
  in
  Cmd.v (Cmd.info "show" ~doc) Term.(const run $ workload_arg $ passes_arg)

let trace_cmd =
  let doc =
    "Run the clustering pipeline on workloads and report the per-pass \
     instrumentation trace (wall time, IR-size delta, f/alpha summaries)."
  in
  let workloads_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"WORKLOAD")
  in
  let dump_after_arg =
    let doc = "Print the IR as it leaves pass $(docv)." in
    Arg.(value & opt (some string) None & info [ "dump-after" ] ~docv:"PASS" ~doc)
  in
  let json_arg =
    let doc = "Write the traces as a JSON array to $(docv)." in
    Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE" ~doc)
  in
  let run () names only dump_after json_file =
    let open Memclust_cluster in
    let check_pass n =
      if not (List.mem n Driver.pass_names) then begin
        Printf.eprintf "unknown pass %s (have: %s)\n" n
          (String.concat ", " Driver.pass_names);
        exit 1
      end
    in
    Option.iter (List.iter check_pass) only;
    Option.iter check_pass dump_after;
    let ws =
      match names with
      | [] -> Registry.latbench () :: Registry.applications ()
      | names -> List.map lookup names
    in
    let traces =
      List.map
        (fun (w : Workload.t) ->
          let options =
            { Driver.default_options with Driver.machine = machine_for w }
          in
          let observe =
            Option.map
              (fun target pass p ->
                if String.equal pass target then
                  Format.printf "==== %s: IR after %s ====@.%a@.@."
                    w.Workload.name pass Pretty.pp_program p)
              dump_after
          in
          let _, report =
            Driver.run ~options ~init:w.Workload.init ?only ?observe
              w.Workload.program
          in
          Format.printf "%a@." Pass.Pipeline.pp_trace report.Driver.trace;
          report.Driver.trace)
        ws
    in
    match json_file with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc "[\n";
        List.iteri
          (fun i t ->
            if i > 0 then output_string oc ",\n";
            output_string oc (Pass.Pipeline.trace_to_json t))
          traces;
        output_string oc "\n]\n";
        close_out oc;
        Printf.printf "wrote %s (%d trace%s)\n" file (List.length traces)
          (if List.length traces = 1 then "" else "s")
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(
      const run $ resilience_term $ workloads_arg $ passes_arg $ dump_after_arg
      $ json_arg)

let () =
  let doc =
    "Reproduction of 'Code Transformations to Improve Memory Parallelism' \
     (Pai & Adve, MICRO-32 1999)"
  in
  let info = Cmd.info "repro" ~doc in
  (* fail fast if a preset was edited into an inconsistent state *)
  List.iter Config.validate_exn
    [ Config.base; Config.exemplar_like; Config.three_level ];
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            experiment_cmd;
            run_cmd;
            sweep_cmd;
            show_cmd;
            analyze_cmd;
            trace_cmd;
          ]))
