(* Resilience: the watchdog stays silent on healthy runs, fault injection
   is deterministic and bit-transparent when disabled, the chaos-tested
   fail-safe pipeline always ships a valid equivalent program, and the
   domain pool contains crashes to the task that crashed. *)

open Memclust_ir
open Memclust_util
open Memclust_cluster
open Memclust_codegen
open Memclust_sim
open Memclust_workloads

let lowered (w : Workload.t) ~nprocs =
  let p = Program.renumber w.Workload.program in
  let data = Data.create p in
  w.Workload.init data;
  Lower.build ~nprocs p data

(* ------------------------------- watchdog ------------------------------- *)

(* Every small workload, every mode, with a watchdog budget far below the
   run length: a healthy simulation must never trip it, and the exact
   modes must stay bit-identical with it armed. *)
let test_watchdog_silent_on_healthy_runs () =
  List.iter
    (fun (w : Workload.t) ->
      let l = lowered w ~nprocs:1 in
      let run mode =
        Machine.run ~mode ~watchdog_cycles:100_000 Config.base
          ~home:(fun _ -> 0)
          l
      in
      let rc = run Machine.Cycle in
      let re = run Machine.Event in
      Alcotest.(check int)
        (w.Workload.name ^ " cycle/event identical under watchdog")
        rc.Machine.cycles re.Machine.cycles;
      let rs = run (Machine.Sampled Sampling.default) in
      Alcotest.(check bool)
        (w.Workload.name ^ " sampled completes under watchdog")
        true
        (rs.Machine.cycles > 0))
    (Registry.small ())

let test_watchdog_reports_deadlock () =
  let w = List.hd (Registry.small ()) in
  let l = lowered w ~nprocs:1 in
  match
    Machine.run ~watchdog_cycles:2 ~mode:Machine.Cycle Config.base
      ~home:(fun _ -> 0)
      l
  with
  | _ -> Alcotest.fail "a 2-cycle watchdog budget must fire on a miss stall"
  | exception Error.Error (Error.Sim_deadlock d) ->
      Alcotest.(check string) "mode recorded" "cycle" d.mode;
      Alcotest.(check bool) "dump names a proc" true
        (String.length d.state_dump > 0
        && String.index_opt d.state_dump 'p' <> None)
  | exception e -> raise e

(* --------------------------- fault injection ---------------------------- *)

let run_with_faults ?plan () =
  let w = Registry.latbench () in
  let small = { w with Workload.program = w.Workload.program } in
  let cfg =
    match plan with
    | None -> Config.base
    | Some p -> Config.with_faults p Config.base
  in
  let l = lowered small ~nprocs:1 in
  Machine.run ~mode:Machine.Event cfg ~home:(fun _ -> 0) l

let test_fault_plan_deterministic () =
  let plan = Faults.scaled ~seed:42 0.2 in
  let r1 = run_with_faults ~plan () in
  let r2 = run_with_faults ~plan () in
  Alcotest.(check int) "same seed, same cycles" r1.Machine.cycles
    r2.Machine.cycles;
  Alcotest.(check (float 0.0001)) "same seed, same latency"
    r1.Machine.avg_read_miss_latency r2.Machine.avg_read_miss_latency;
  let r3 = run_with_faults ~plan:(Faults.scaled ~seed:43 0.2) () in
  Alcotest.(check bool) "faults actually perturb the run" true
    (r3.Machine.cycles <> r1.Machine.cycles)

let test_faults_slow_the_machine () =
  let clean = run_with_faults () in
  let faulty = run_with_faults ~plan:(Faults.scaled ~seed:7 0.3) () in
  Alcotest.(check bool) "injected faults cost cycles" true
    (faulty.Machine.cycles > clean.Machine.cycles)

let test_zero_probability_plan_is_transparent () =
  let clean = run_with_faults () in
  let zero = run_with_faults ~plan:(Faults.plan ~seed:9 ()) () in
  Alcotest.(check int) "bit-identical cycles" clean.Machine.cycles
    zero.Machine.cycles;
  Alcotest.(check int) "bit-identical misses" clean.Machine.read_misses
    zero.Machine.read_misses

let test_faults_of_string () =
  (match Faults.of_string "42" with
  | Ok p ->
      Alcotest.(check int) "seed" 42 p.Faults.seed;
      Alcotest.(check (float 1e-9)) "default rate" 0.05 p.Faults.delay_prob
  | Error e -> Alcotest.fail e);
  (match Faults.of_string "7:0.5" with
  | Ok p ->
      Alcotest.(check (float 1e-9)) "rate" 0.5 p.Faults.delay_prob;
      Alcotest.(check (float 1e-9)) "nack rate" 0.25 p.Faults.nack_prob
  | Error e -> Alcotest.fail e);
  List.iter
    (fun s ->
      match Faults.of_string s with
      | Ok _ -> Alcotest.failf "%S must not parse" s
      | Error _ -> ())
    [ ""; "x"; "1:2.0"; "1:-0.1"; "1:0.1:3" ]

(* --------------------------- chaos pipeline ----------------------------- *)

let small_lu () = Lu.make ~n:16 ~block:8 ()

let final_store (w : Workload.t) p =
  let d = Data.create p in
  w.Workload.init d;
  Exec.run p d;
  d

(* Under unconditional sabotage (rate 1.0: every pass crashes or
   corrupts), the fail-safe pipeline must still terminate, ship valid IR,
   and preserve the source program's semantics — worst case by shipping
   it untransformed. *)
let test_chaos_pipeline_stays_correct () =
  let w = small_lu () in
  let reference = lazy (final_store w (Program.renumber w.Workload.program)) in
  List.iter
    (fun chaos_seed ->
      let options =
        {
          Driver.default_options with
          chaos = Some { Pass.chaos_seed; chaos_rate = 1.0; fail_pass = None };
        }
      in
      let p, report =
        Driver.run ~options ~init:w.Workload.init w.Workload.program
      in
      (match Program.validate p with
      | Ok () -> ()
      | Error m -> Alcotest.failf "seed %d: invalid IR shipped: %s" chaos_seed m);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: semantics preserved" chaos_seed)
        true
        (Data.equal (Lazy.force reference) (final_store w p));
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: sabotage recorded as degraded" chaos_seed)
        true
        (Pass.Pipeline.degraded_passes report.Driver.trace <> []))
    [ 1; 2; 3; 4; 5 ]

let test_forced_pass_failure_degrades () =
  let w = small_lu () in
  let options =
    {
      Driver.default_options with
      chaos =
        Some
          { Pass.chaos_seed = 0; chaos_rate = 0.0; fail_pass = Some "unroll-jam" };
    }
  in
  let p, report =
    Driver.run ~options ~init:w.Workload.init w.Workload.program
  in
  let degraded = Pass.Pipeline.degraded_passes report.Driver.trace in
  Alcotest.(check bool) "unroll-jam rolled back" true
    (List.mem_assoc "unroll-jam" degraded);
  Alcotest.(check bool) "only the sabotaged pass degrades" true
    (List.for_all (fun (pass, _) -> String.equal pass "unroll-jam") degraded);
  Alcotest.(check bool) "semantics preserved" true
    (Data.equal
       (final_store w (Program.renumber w.Workload.program))
       (final_store w p))

let test_failsafe_off_raises_structured_error () =
  let w = small_lu () in
  let options =
    {
      Driver.default_options with
      failsafe = false;
      chaos =
        Some
          { Pass.chaos_seed = 0; chaos_rate = 0.0; fail_pass = Some "schedule" };
    }
  in
  match Driver.run ~options ~init:w.Workload.init w.Workload.program with
  | _ -> Alcotest.fail "sabotage with failsafe off must raise"
  | exception Error.Error (Error.Legality_violation { pass; _ }) ->
      Alcotest.(check string) "names the pass" "schedule" pass
  | exception Error.Error (Error.Pass_failed { pass; _ }) ->
      Alcotest.(check string) "names the pass" "schedule" pass

let test_chaos_of_env_parses () =
  Unix.putenv "MEMCLUST_CHAOS_PASSES" "11:0.5";
  Unix.putenv "MEMCLUST_FAIL_PASS" "schedule";
  let c = Pass.chaos_of_env () in
  Unix.putenv "MEMCLUST_CHAOS_PASSES" "";
  Unix.putenv "MEMCLUST_FAIL_PASS" "";
  (match c with
  | Some { Pass.chaos_seed = 11; chaos_rate = 0.5; fail_pass = Some "schedule" }
    ->
      ()
  | _ -> Alcotest.fail "env chaos spec not parsed");
  Alcotest.(check bool) "unset -> None" true (Pass.chaos_of_env () = None)

(* --------------------------- crash containment -------------------------- *)

let test_map_result_contains_crashes () =
  let pool = Domain_pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      let results =
        Domain_pool.map_result ~task_name:string_of_int pool
          (fun i -> if i = 3 then failwith "boom" else i * 10)
          [ 1; 2; 3; 4 ]
      in
      match results with
      | [ Ok 10; Ok 20; Error (Error.Worker_crashed { task; attempts; _ }); Ok 40 ]
        ->
          Alcotest.(check string) "task named" "3" task;
          Alcotest.(check int) "retried once" 2 attempts
      | _ -> Alcotest.fail "expected exactly task 3 to fail")

let test_map_result_retries_transient_failures () =
  let pool = Domain_pool.create ~domains:0 () in
  let tries = Atomic.make 0 in
  let results =
    Domain_pool.map_result pool
      (fun i ->
        if i = 1 && Atomic.fetch_and_add tries 1 = 0 then failwith "transient";
        i)
      [ 0; 1 ]
  in
  Alcotest.(check bool) "transient failure retried into Ok" true
    (results = [ Ok 0; Ok 1 ]);
  Alcotest.(check int) "took two attempts" 2 (Atomic.get tries)

let test_map_result_preserves_structured_errors () =
  let pool = Domain_pool.create ~domains:0 () in
  let results =
    Domain_pool.map_result pool
      (fun () ->
        Error.raise_err
          (Error.Sim_deadlock
             { cycle = 9; mode = "cycle"; reason = "r"; state_dump = "d" }))
      [ () ]
  in
  match results with
  | [ Error (Error.Sim_deadlock { cycle = 9; _ }) ] -> ()
  | _ -> Alcotest.fail "structured error must survive the pool unwrapped"

(* ------------------------------ checkpoint ------------------------------ *)

let test_checkpoint_roundtrip () =
  let dir = "checkpoint-test-tmp" in
  let ck = Memclust_harness.Checkpoint.create dir in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      Alcotest.(check bool) "empty" false
        (Memclust_harness.Checkpoint.mem ck "fig3a");
      Memclust_harness.Checkpoint.save ck "fig3a" "table body\n";
      Alcotest.(check bool) "saved" true
        (Memclust_harness.Checkpoint.mem ck "fig3a");
      Alcotest.(check (option string)) "loads back" (Some "table body\n")
        (Memclust_harness.Checkpoint.load ck "fig3a");
      Memclust_harness.Checkpoint.save ck "fig3a" "v2\n";
      Alcotest.(check (option string)) "overwrite is atomic+last-wins"
        (Some "v2\n")
        (Memclust_harness.Checkpoint.load ck "fig3a");
      Memclust_harness.Checkpoint.save ck "table1" "x\n";
      Alcotest.(check (list string)) "saved ids sorted" [ "fig3a"; "table1" ]
        (Memclust_harness.Checkpoint.saved ck);
      match Memclust_harness.Checkpoint.load ck "../escape" with
      | exception Error.Error (Error.Config_invalid _) -> ()
      | _ -> Alcotest.fail "path-escaping ids must be rejected")

let () =
  Alcotest.run "resilience"
    [
      ( "watchdog",
        [
          Alcotest.test_case "silent on healthy runs (all modes)" `Slow
            test_watchdog_silent_on_healthy_runs;
          Alcotest.test_case "reports deadlock with state dump" `Quick
            test_watchdog_reports_deadlock;
        ] );
      ( "faults",
        [
          Alcotest.test_case "deterministic per seed" `Quick
            test_fault_plan_deterministic;
          Alcotest.test_case "faults cost cycles" `Quick
            test_faults_slow_the_machine;
          Alcotest.test_case "zero-probability plan transparent" `Quick
            test_zero_probability_plan_is_transparent;
          Alcotest.test_case "of_string" `Quick test_faults_of_string;
        ] );
      ( "chaos pipeline",
        [
          Alcotest.test_case "always valid and equivalent" `Slow
            test_chaos_pipeline_stays_correct;
          Alcotest.test_case "forced failure degrades" `Quick
            test_forced_pass_failure_degrades;
          Alcotest.test_case "failsafe off raises" `Quick
            test_failsafe_off_raises_structured_error;
          Alcotest.test_case "env spec parses" `Quick test_chaos_of_env_parses;
        ] );
      ( "crash containment",
        [
          Alcotest.test_case "map_result contains crashes" `Quick
            test_map_result_contains_crashes;
          Alcotest.test_case "map_result retries transients" `Quick
            test_map_result_retries_transient_failures;
          Alcotest.test_case "structured errors survive" `Quick
            test_map_result_preserves_structured_errors;
        ] );
      ( "checkpoint",
        [ Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip ] );
    ]
