(* The pass-manager layer: pipeline trace structure, pass selection, the
   var-keyed nest traversal (stable under postlude insertion), and a
   differential semantics check running every registered pass over every
   registry workload at tiny sizes. *)

open Memclust_ir
open Memclust_cluster
open Memclust_workloads

let no_profile = { Driver.default_options with Driver.profile_pm = false }

let fig2a ?(rows = 64) ?(cols = 64) () =
  let open Builder in
  program "fig2a"
    ~arrays:[ array_decl "a" (Stdlib.( * ) rows cols); array_decl "s" rows ]
    [
      loop "j" (cst 0) (cst rows)
        [
          loop "i" (cst 0) (cst cols)
            [
              store (aref "s" (ix "j"))
                (arr "s" (ix "j") + arr "a" (idx2 ~cols (ix "j") (ix "i")));
            ];
        ];
    ]

(* ------------------------- trace structure ------------------------- *)

let test_trace_structure () =
  let _, report = Driver.run ~options:no_profile (fig2a ()) in
  let t = report.Driver.trace in
  Alcotest.(check (list string))
    "one entry per registered pass, in order" Driver.pass_names
    (List.map (fun e -> e.Pass.Pipeline.pass_name) t.Pass.Pipeline.entries);
  Alcotest.(check string) "program name" "fig2a" t.Pass.Pipeline.program_name;
  Alcotest.(check bool) "total time non-negative" true
    (t.Pass.Pipeline.total_ms >= 0.0);
  List.iter
    (fun (e : Pass.Pipeline.entry) ->
      Alcotest.(check bool)
        (e.Pass.Pipeline.pass_name ^ " wall time non-negative")
        true
        (e.Pass.Pipeline.wall_ms >= 0.0);
      if e.Pass.Pipeline.ran then
        Alcotest.(check bool)
          (e.Pass.Pipeline.pass_name ^ " validated")
          true e.Pass.Pipeline.validated
      else
        Alcotest.(check bool)
          (e.Pass.Pipeline.pass_name ^ " skipped pass leaves IR size alone")
          true
          (e.Pass.Pipeline.size_before = e.Pass.Pipeline.size_after))
    t.Pass.Pipeline.entries;
  (* optional passes are off by default *)
  List.iter
    (fun name ->
      let e =
        List.find
          (fun e -> e.Pass.Pipeline.pass_name = name)
          t.Pass.Pipeline.entries
      in
      Alcotest.(check bool) (name ^ " disabled by default") false
        e.Pass.Pipeline.ran)
    [ "fuse"; "strip-mine"; "prefetch" ]

let ran_passes (t : Pass.Pipeline.trace) =
  List.filter_map
    (fun (e : Pass.Pipeline.entry) ->
      if e.Pass.Pipeline.ran then Some e.Pass.Pipeline.pass_name else None)
    t.Pass.Pipeline.entries

let test_pass_selection () =
  let p = fig2a () in
  let _, full = Driver.run ~options:no_profile p in
  let _, only_uj =
    Driver.run ~options:no_profile ~only:[ "analyze"; "unroll-jam" ] p
  in
  Alcotest.(check bool) "full pipeline runs scalar-replace" true
    (List.mem "scalar-replace" (ran_passes full.Driver.trace));
  Alcotest.(check (list string))
    "--passes analyze,unroll-jam runs exactly uniquify + those"
    [ "uniquify"; "analyze"; "unroll-jam" ]
    (ran_passes only_uj.Driver.trace);
  (match Driver.run ~options:no_profile ~only:[ "no-such-pass" ] p with
  | (_ : Ast.program * Driver.report) ->
      Alcotest.fail "unknown pass name should raise"
  | exception Invalid_argument _ -> ());
  (* the trace round-trips through the JSON emitter without raising and
     mentions every pass *)
  let json = Pass.Pipeline.trace_to_json full.Driver.trace in
  List.iter
    (fun name ->
      let needle = Printf.sprintf "\"name\":\"%s\"" name in
      let found =
        let nl = String.length needle and jl = String.length json in
        let rec scan i =
          i + nl <= jl && (String.sub json i nl = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) (name ^ " appears in JSON") true found)
    Driver.pass_names

(* --------------- postlude-stable top-level addressing --------------- *)

(* Two identical reduction nests; [rows] is prime and larger than any
   legal unroll factor, so unroll-and-jam of the first nest must leave a
   top-level postlude loop *between* it and the second nest. The old
   driver walked top-level statements by index and re-visited (or
   skipped) nests when postludes shifted those indices; the var-keyed
   traversal must attribute exactly one unroll-and-jam to each source
   nest and keep the semantics. *)
let two_nests ?(rows = 79) ?(cols = 33) () =
  let open Builder in
  let nest j i src dst =
    loop j (cst 0) (cst rows)
      [
        loop i (cst 0) (cst cols)
          [
            store (aref dst (ix j))
              (arr dst (ix j) + arr src (idx2 ~cols (ix j) (ix i)));
          ];
      ]
  in
  program "two_nests"
    ~arrays:
      [
        array_decl "a" (Stdlib.( * ) rows cols);
        array_decl "s" rows;
        array_decl "b" (Stdlib.( * ) rows cols);
        array_decl "t" rows;
      ]
    [ nest "j" "i" "a" "s"; nest "j2" "i2" "b" "t" ]

let test_postlude_shifted_nests () =
  let rows = 79 and cols = 33 in
  let p = two_nests ~rows ~cols () in
  let init d =
    for i = 0 to (rows * cols) - 1 do
      Data.set d "a" i (Ast.Vfloat (float_of_int i *. 0.01));
      Data.set d "b" i (Ast.Vfloat (float_of_int i *. 0.02))
    done
  in
  let p', report = Driver.run ~options:no_profile ~init p in
  Alcotest.(check int) "both source nests analyzed" 2
    (List.length report.Driver.nests);
  List.iter
    (fun (n : Driver.nest_report) ->
      let jammed =
        List.exists
          (function Driver.Unroll_jam _ -> true | _ -> false)
          n.Driver.actions
      in
      Alcotest.(check bool)
        (Printf.sprintf "nest %d (%s) unroll-and-jammed" n.Driver.nest_index
           n.Driver.inner_desc)
        true jammed)
    report.Driver.nests;
  (* the prime trip count guarantees a postlude, so the transformed
     program has more top-level statements than the source: exactly the
     index-shifting situation the traversal must survive *)
  Alcotest.(check bool) "postludes appended at top level" true
    (List.length p'.Ast.body > 2);
  let d1 = Data.create p and d2 = Data.create p' in
  init d1;
  init d2;
  Exec.run p d1;
  Exec.run p' d2;
  Alcotest.(check bool) "semantics preserved across both nests" true
    (Data.equal d1 d2)

(* ---------------- differential per-pass execution ------------------ *)

(* Every registered pass — including the optional fuse / strip-mine /
   prefetch passes — over every registry workload at tiny sizes: the
   observable store after executing the program as it leaves each pass
   must equal the base program's. *)
let test_differential_passes () =
  let options =
    {
      no_profile with
      Driver.do_fuse = true;
      Driver.do_strip_mine = true;
      Driver.do_prefetch = true;
    }
  in
  List.iter
    (fun (w : Workload.t) ->
      let base = Program.renumber w.Workload.program in
      let d0 = Data.create base in
      w.Workload.init d0;
      Exec.run base d0;
      let observed = ref [] in
      let (_ : Ast.program * Driver.report) =
        Driver.run ~options ~init:w.Workload.init
          ~observe:(fun pass p -> observed := (pass, p) :: !observed)
          w.Workload.program
      in
      Alcotest.(check bool)
        (w.Workload.name ^ ": observe fired")
        true
        (!observed <> []);
      List.iter
        (fun (pass, p) ->
          let d = Data.create p in
          w.Workload.init d;
          Exec.run p d;
          if not (Data.equal d0 d) then
            Alcotest.fail
              (Printf.sprintf
                 "%s: program after pass %S diverges from the base semantics"
                 w.Workload.name pass))
        (List.rev !observed))
    (Registry.small ())

let () =
  Alcotest.run "pass"
    [
      ( "pipeline",
        [
          Alcotest.test_case "trace structure" `Quick test_trace_structure;
          Alcotest.test_case "pass selection" `Quick test_pass_selection;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "postlude-shifted nests" `Quick
            test_postlude_shifted_nests;
        ] );
      ( "differential",
        [
          Alcotest.test_case "all passes, all workloads" `Slow
            test_differential_passes;
        ] );
    ]
