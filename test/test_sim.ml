open Memclust_codegen
open Memclust_sim

(* ------------------------------ Cache ------------------------------- *)

let test_cache_hit_after_fill () =
  let c = Cache.create ~bytes:1024 ~assoc:2 ~line:64 in
  Alcotest.(check bool) "cold miss" false (Cache.lookup c ~version:0 ~addr:128);
  Cache.fill c ~version:0 ~addr:128;
  Alcotest.(check bool) "hit" true (Cache.lookup c ~version:0 ~addr:128);
  Alcotest.(check bool) "same line hits" true (Cache.lookup c ~version:0 ~addr:190);
  Alcotest.(check bool) "next line misses" false (Cache.lookup c ~version:0 ~addr:192)

let test_cache_version_invalidation () =
  let c = Cache.create ~bytes:1024 ~assoc:2 ~line:64 in
  Cache.fill c ~version:1 ~addr:0;
  Alcotest.(check bool) "hit at v1" true (Cache.lookup c ~version:1 ~addr:0);
  Alcotest.(check bool) "stale at v2" false (Cache.lookup c ~version:2 ~addr:0);
  Cache.fill c ~version:2 ~addr:0;
  Alcotest.(check bool) "refreshed" true (Cache.lookup c ~version:2 ~addr:0)

let test_cache_lru () =
  (* 2-way set: fill three lines mapping to the same set; the LRU evicts *)
  let c = Cache.create ~bytes:256 ~assoc:2 ~line:64 in
  (* 2 sets; lines 0,2,4 map to set 0 *)
  Cache.fill c ~version:0 ~addr:0;
  Cache.fill c ~version:0 ~addr:128;
  ignore (Cache.lookup c ~version:0 ~addr:0);
  (* line 0 is MRU *)
  Cache.fill c ~version:0 ~addr:256;
  Alcotest.(check bool) "MRU kept" true (Cache.lookup c ~version:0 ~addr:0);
  Alcotest.(check bool) "LRU evicted" false (Cache.lookup c ~version:0 ~addr:128);
  Alcotest.(check bool) "new line present" true (Cache.lookup c ~version:0 ~addr:256)

let test_cache_direct_mapped_conflict () =
  let c = Cache.create ~bytes:128 ~assoc:1 ~line:64 in
  Cache.fill c ~version:0 ~addr:0;
  Cache.fill c ~version:0 ~addr:128 (* same set *);
  Alcotest.(check bool) "conflict evicts" false (Cache.lookup c ~version:0 ~addr:0)

(* ------------------------------ Memsys ------------------------------ *)

let test_memsys_uncontended () =
  let m = Memsys.create Config.base ~nprocs:2 in
  let done_ = Memsys.request m ~proc:0 ~home:0 ~kind:Memsys.Local ~line:1 ~now:100 in
  Alcotest.(check int) "local = mem_lat" (100 + Config.base.Config.mem_lat) done_;
  let m = Memsys.create Config.base ~nprocs:2 in
  let done_ = Memsys.request m ~proc:0 ~home:1 ~kind:Memsys.Remote ~line:1 ~now:100 in
  Alcotest.(check int) "remote = minimum + 1 hop"
    (100 + Config.base.Config.remote_lat + Config.base.Config.hop_cycles)
    done_;
  let m = Memsys.create Config.base ~nprocs:2 in
  let done_ =
    Memsys.request m ~proc:0 ~home:1 ~kind:Memsys.Dirty_remote ~line:1 ~now:100
  in
  Alcotest.(check int) "cache-to-cache = minimum + 1 hop"
    (100 + Config.base.Config.c2c_lat + Config.base.Config.hop_cycles)
    done_

let test_memsys_bank_contention () =
  let m = Memsys.create Config.base ~nprocs:1 in
  (* two requests to the same line = same bank: the second waits *)
  let d1 = Memsys.request m ~proc:0 ~home:0 ~kind:Memsys.Local ~line:5 ~now:0 in
  let d2 = Memsys.request m ~proc:0 ~home:0 ~kind:Memsys.Local ~line:5 ~now:0 in
  Alcotest.(check bool) "second delayed" true (d2 > d1);
  Alcotest.(check bool) "delay at least bank busy" true
    (d2 - d1 >= Config.base.Config.bank_busy)

let test_memsys_banks_parallel () =
  let m = Memsys.create Config.base ~nprocs:1 in
  (* requests to different banks overlap except for bus occupancy *)
  let lines = List.init 4 (fun i -> i) in
  let dones =
    List.map (fun l -> Memsys.request m ~proc:0 ~home:0 ~kind:Memsys.Local ~line:l ~now:0) lines
  in
  let spread = List.fold_left max 0 dones - List.fold_left min max_int dones in
  Alcotest.(check bool) "different banks mostly overlap" true
    (spread < Config.base.Config.bank_busy)


let test_mesh_hops () =
  (* 16 nodes on a 4x4 mesh *)
  Alcotest.(check int) "self" 0 (Memsys.mesh_hops ~nprocs:16 5 5);
  Alcotest.(check int) "adjacent" 1 (Memsys.mesh_hops ~nprocs:16 0 1);
  Alcotest.(check int) "row hop" 1 (Memsys.mesh_hops ~nprocs:16 0 4);
  Alcotest.(check int) "corner to corner" 6 (Memsys.mesh_hops ~nprocs:16 0 15)

let test_remote_scales_with_distance () =
  let m = Memsys.create Config.base ~nprocs:16 in
  let near = Memsys.request m ~proc:0 ~home:1 ~kind:Memsys.Remote ~line:1 ~now:0 in
  let m = Memsys.create Config.base ~nprocs:16 in
  let far = Memsys.request m ~proc:0 ~home:15 ~kind:Memsys.Remote ~line:1 ~now:0 in
  Alcotest.(check int) "five extra hops" (5 * Config.base.Config.hop_cycles)
    (far - near)

let test_memsys_utilization () =
  let m = Memsys.create Config.base ~nprocs:1 in
  ignore (Memsys.request m ~proc:0 ~home:0 ~kind:Memsys.Local ~line:0 ~now:0);
  let occ = Config.base.Config.bus_req_occ + Config.base.Config.bus_data_occ in
  Alcotest.(check int) "bus busy accounted" occ (Memsys.bus_busy m);
  Alcotest.(check int) "bank busy accounted" Config.base.Config.bank_busy
    (Memsys.bank_busy m)

(* ---------------------------- Breakdown ----------------------------- *)

let test_breakdown () =
  let b = Breakdown.create () in
  b.Breakdown.busy <- 10.0;
  b.Breakdown.data_stall <- 30.0;
  b.Breakdown.cpu_stall <- 5.0;
  Alcotest.(check (float 1e-9)) "total" 45.0 (Breakdown.total b);
  Alcotest.(check (float 1e-9)) "cpu" 15.0 (Breakdown.cpu b);
  let c = Breakdown.scale b 2.0 in
  Alcotest.(check (float 1e-9)) "scaled" 90.0 (Breakdown.total c);
  Breakdown.add b c;
  Alcotest.(check (float 1e-9)) "added" 135.0 (Breakdown.total b)

(* --------------------------- Core/Machine --------------------------- *)

(* hand-built traces *)
let mk_trace instrs =
  let t = Trace.create () in
  List.iter
    (fun (kind, aux, dep1, dep2) ->
      ignore (Trace.push t ~kind ~aux ~dep1 ~dep2 ~ref_:0))
    instrs;
  t

let run_single instrs =
  let lowered = { Lower.traces = [| mk_trace instrs |]; barriers = 0 } in
  Machine.run Config.base ~home:(fun _ -> 0) lowered

let test_single_miss_latency () =
  let r = run_single [ (Trace.Load, 0x40000, -1, -1) ] in
  Alcotest.(check bool) "about mem_lat cycles" true
    (r.Machine.cycles >= Config.base.Config.mem_lat
    && r.Machine.cycles <= Config.base.Config.mem_lat + 20);
  Alcotest.(check int) "one L2 miss" 1 r.Machine.l2_misses

let test_independent_misses_overlap () =
  (* 8 independent misses to distinct lines *)
  let loads = List.init 8 (fun i -> (Trace.Load, 0x40000 + (i * 64), -1, -1)) in
  let r = run_single loads in
  Alcotest.(check bool) "overlapped" true
    (r.Machine.cycles < 2 * Config.base.Config.mem_lat);
  Alcotest.(check int) "8 misses" 8 r.Machine.l2_misses

let test_dependent_misses_serialize () =
  (* each load depends on the previous *)
  let loads =
    List.init 4 (fun i -> (Trace.Load, 0x40000 + (i * 64), i - 1, -1))
  in
  let r = run_single loads in
  Alcotest.(check bool) "serialized" true
    (r.Machine.cycles >= 4 * Config.base.Config.mem_lat)

let test_same_line_coalesce () =
  let loads = List.init 8 (fun i -> (Trace.Load, 0x40000 + (i * 8), -1, -1)) in
  let r = run_single loads in
  Alcotest.(check int) "one miss for one line" 1 r.Machine.l2_misses

let test_store_retires_early () =
  (* store miss followed by lots of cheap work: write buffering hides it *)
  let instrs =
    (Trace.Store, 0x40000, -1, -1)
    :: List.init 40 (fun _ -> (Trace.Int_op, 1, -1, -1))
  in
  let r = run_single instrs in
  (* all instructions retire long before the write completes; the clock
     only runs on because the simulation waits for memory to quiesce *)
  Alcotest.(check bool) "ends soon after the write completes" true
    (r.Machine.cycles < Config.base.Config.mem_lat + 30);
  (* at most the 1-2 front-end cycles before the store enters the write
     buffer; the 85-cycle miss itself never stalls retirement *)
  Alcotest.(check bool) "write miss latency never stalls retire" true
    (r.Machine.breakdown.Breakdown.data_stall < 3.0)

let test_mshr_limit () =
  (* 20 independent misses with only 10 MSHRs: at least two memory rounds *)
  let loads = List.init 20 (fun i -> (Trace.Load, 0x40000 + (i * 64), -1, -1)) in
  let r = run_single loads in
  Alcotest.(check bool) "two waves" true
    (r.Machine.cycles >= 2 * Config.base.Config.bank_busy + Config.base.Config.mem_lat);
  Alcotest.(check bool) "mshr pressure observed" true (r.Machine.mshr_full_events > 0)

let test_window_limits_overlap () =
  (* two misses separated by more than a window of int ops cannot overlap *)
  let instrs =
    ((Trace.Load, 0x40000, -1, -1)
     :: List.init 100 (fun _ -> (Trace.Int_op, 1, -1, -1)))
    @ [ (Trace.Load, 0x50000, -1, -1) ]
  in
  let r = run_single instrs in
  Alcotest.(check bool) "misses not overlapped" true
    (r.Machine.cycles >= 2 * Config.base.Config.mem_lat)

let test_ipc_bounded_by_retire_width () =
  let instrs = List.init 4000 (fun _ -> (Trace.Int_op, 1, -1, -1)) in
  let r = run_single instrs in
  let ipc = float_of_int r.Machine.instructions /. float_of_int r.Machine.cycles in
  Alcotest.(check bool) "IPC <= 4" true (ipc <= 4.0);
  (* only 2 ALUs: IPC can't exceed 2 for pure int streams *)
  Alcotest.(check bool) "IPC <= ALUs" true (ipc <= 2.01)

let test_barrier_sync () =
  (* proc 0 finishes fast then waits at the barrier for proc 1's miss *)
  let t0 =
    mk_trace [ (Trace.Int_op, 1, -1, -1); (Trace.Barrier_op, 1, -1, -1) ]
  in
  let t1 =
    mk_trace
      [
        (Trace.Load, 0x40000, -1, -1);
        (Trace.Load, 0x50000, 0, -1);
        (Trace.Barrier_op, 1, -1, -1);
      ]
  in
  let lowered = { Lower.traces = [| t0; t1 |]; barriers = 1 } in
  let r = Machine.run Config.base ~home:(fun _ -> 0) lowered in
  Alcotest.(check bool) "proc0 spent time in sync" true
    (r.Machine.per_proc.(0).Breakdown.sync_stall > 50.0);
  Alcotest.(check bool) "completed" true
    (r.Machine.cycles >= 2 * Config.base.Config.mem_lat)

let test_mshr_histograms () =
  let loads = List.init 8 (fun i -> (Trace.Load, 0x40000 + (i * 64), -1, -1)) in
  let r = run_single loads in
  let open Memclust_util in
  Alcotest.(check bool) "some time at >=4 outstanding reads" true
    (Stats.Histogram.fraction_at_least r.Machine.read_mshr_hist 4 > 0.0);
  Alcotest.(check bool) "monotone" true
    (Stats.Histogram.fraction_at_least r.Machine.read_mshr_hist 8
    <= Stats.Histogram.fraction_at_least r.Machine.read_mshr_hist 1)

let test_deadlock_guard () =
  let loads = List.init 4 (fun i -> (Trace.Load, 0x40000 + (i * 64), -1, -1)) in
  let lowered = { Lower.traces = [| mk_trace loads |]; barriers = 0 } in
  Alcotest.(check bool) "raises on tiny budget" true
    (try
       ignore (Machine.run ~max_cycles:3 Config.base ~home:(fun _ -> 0) lowered);
       false
     with Memclust_util.Error.Error (Memclust_util.Error.Sim_deadlock _) ->
       true)

let test_config_presets () =
  Alcotest.(check int) "ghz doubles memory" (2 * Config.base.Config.mem_lat)
    (Config.ghz Config.base).Config.mem_lat;
  Alcotest.(check int) "ghz keeps width" Config.base.Config.issue_width
    (Config.ghz Config.base).Config.issue_width;
  Alcotest.(check int) "exemplar is single-level" 1
    (Config.depth Config.exemplar_like);
  Alcotest.(check int) "base is two-level" 2 (Config.depth Config.base);
  Alcotest.(check int) "base line 64B" 64 (Config.line Config.base);
  Alcotest.(check int) "exemplar line 32B" 32 (Config.line Config.exemplar_like);
  Alcotest.(check int) "base lp = 10" 10 (Config.lp Config.base);
  let resized = Config.with_l2 (256 * 1024) Config.base in
  Alcotest.(check int) "with_l2 keeps depth" 2 (Config.depth resized);
  Alcotest.(check int) "with_l2 resizes the last level" (256 * 1024)
    (List.nth (Config.levels resized) 1).Config.bytes;
  Alcotest.(check int) "with_mshrs caps lp" 4
    (Config.lp (Config.with_mshrs 4 Config.base));
  Alcotest.(check int) "with_line resets every level" 128
    (Config.line (Config.with_line 128 Config.base));
  Alcotest.(check (float 1e-9)) "ns per cycle at 500MHz" 2.0
    (Machine.ns_per_cycle Config.base)


(* ----------------------------- Prefetch ----------------------------- *)

let test_prefetch_hides_latency () =
  (* prefetch, then a 100-deep dependence chain, then a load of the
     prefetched line that depends on the chain: by the time the load can
     issue, the line has arrived *)
  let chain = List.init 100 (fun i -> (Trace.Int_op, 1, i, -1)) in
  let instrs =
    ((Trace.Prefetch_op, 0x40000, -1, -1) :: chain)
    @ [ (Trace.Load, 0x40000, 100, -1) ]
  in
  let r = run_single instrs in
  Alcotest.(check int) "one prefetch" 1 r.Machine.prefetches;
  Alcotest.(check int) "fetched by the prefetch" 1 r.Machine.prefetch_misses;
  Alcotest.(check int) "demand load did not miss" 0 r.Machine.read_misses;
  Alcotest.(check bool) "latency mostly hidden" true
    (r.Machine.breakdown.Breakdown.data_stall
     < float_of_int Config.base.Config.mem_lat /. 2.0)

let test_prefetch_late () =
  (* demand load immediately after the prefetch: late-prefetch counted *)
  let instrs = [ (Trace.Prefetch_op, 0x40000, -1, -1); (Trace.Load, 0x40000, -1, -1) ] in
  let r = run_single instrs in
  Alcotest.(check int) "late prefetch counted" 1 r.Machine.late_prefetches;
  Alcotest.(check int) "no separate demand miss" 0 r.Machine.read_misses

let test_prefetch_never_stalls_retire () =
  let instrs = List.init 12 (fun i -> (Trace.Prefetch_op, 0x40000 + (i * 64), -1, -1)) in
  let r = run_single instrs in
  (* 12 hints on 10 MSHRs: the extra ones are dropped, nothing stalls *)
  Alcotest.(check bool) "no data stall from hints" true
    (r.Machine.breakdown.Breakdown.data_stall < 3.0);
  Alcotest.(check bool) "drops under pressure" true (r.Machine.prefetch_misses <= 10)


(* ----------------- Event-mode / cycle-mode equivalence --------------- *)

(* The event-driven loop claims bit-identical results to the reference
   cycle loop — so every comparison below is exact (epsilon 0). *)

let check_breakdown name (a : Breakdown.t) (b : Breakdown.t) =
  Alcotest.(check (float 0.0)) (name ^ ": busy") a.Breakdown.busy b.Breakdown.busy;
  Alcotest.(check (float 0.0))
    (name ^ ": cpu_stall") a.Breakdown.cpu_stall b.Breakdown.cpu_stall;
  Alcotest.(check (float 0.0))
    (name ^ ": data_stall") a.Breakdown.data_stall b.Breakdown.data_stall;
  Alcotest.(check (float 0.0))
    (name ^ ": sync_stall") a.Breakdown.sync_stall b.Breakdown.sync_stall

let check_hist name a b =
  let open Memclust_util in
  Alcotest.(check (float 0.0))
    (name ^ ": total") (Stats.Histogram.total a) (Stats.Histogram.total b);
  for k = 0 to 64 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "%s: fraction >= %d" name k)
      (Stats.Histogram.fraction_at_least a k)
      (Stats.Histogram.fraction_at_least b k)
  done

let check_results_equal (a : Machine.result) (b : Machine.result) =
  Alcotest.(check int) "cycles" a.Machine.cycles b.Machine.cycles;
  Alcotest.(check int) "instructions" a.Machine.instructions b.Machine.instructions;
  Alcotest.(check int) "l2_misses" a.Machine.l2_misses b.Machine.l2_misses;
  Alcotest.(check int) "read_misses" a.Machine.read_misses b.Machine.read_misses;
  Alcotest.(check int) "l1_misses" a.Machine.l1_misses b.Machine.l1_misses;
  Alcotest.(check int) "mshr_full_events" a.Machine.mshr_full_events
    b.Machine.mshr_full_events;
  Alcotest.(check int) "wbuf_full_events" a.Machine.wbuf_full_events
    b.Machine.wbuf_full_events;
  Alcotest.(check int) "prefetches" a.Machine.prefetches b.Machine.prefetches;
  Alcotest.(check int) "prefetch_misses" a.Machine.prefetch_misses
    b.Machine.prefetch_misses;
  Alcotest.(check int) "late_prefetches" a.Machine.late_prefetches
    b.Machine.late_prefetches;
  Alcotest.(check (float 0.0)) "avg_read_miss_latency"
    a.Machine.avg_read_miss_latency b.Machine.avg_read_miss_latency;
  Alcotest.(check (float 0.0)) "bus_utilization" a.Machine.bus_utilization
    b.Machine.bus_utilization;
  Alcotest.(check (float 0.0)) "bank_utilization" a.Machine.bank_utilization
    b.Machine.bank_utilization;
  check_breakdown "breakdown" a.Machine.breakdown b.Machine.breakdown;
  Alcotest.(check int) "nprocs"
    (Array.length a.Machine.per_proc) (Array.length b.Machine.per_proc);
  Array.iteri
    (fun i bd -> check_breakdown (Printf.sprintf "proc %d" i) bd b.Machine.per_proc.(i))
    a.Machine.per_proc;
  check_hist "read_mshr_hist" a.Machine.read_mshr_hist b.Machine.read_mshr_hist;
  check_hist "total_mshr_hist" a.Machine.total_mshr_hist b.Machine.total_mshr_hist;
  Alcotest.(check int) "hierarchy depth"
    (Array.length a.Machine.level_stats)
    (Array.length b.Machine.level_stats);
  Array.iteri
    (fun i (la : Breakdown.level_stat) ->
      let lb = b.Machine.level_stats.(i) in
      Alcotest.(check int)
        (Printf.sprintf "L%d hits" (i + 1))
        la.Breakdown.lv_hits lb.Breakdown.lv_hits;
      Alcotest.(check int)
        (Printf.sprintf "L%d misses" (i + 1))
        la.Breakdown.lv_misses lb.Breakdown.lv_misses)
    a.Machine.level_stats

(* traces are rebuilt per run: a Trace.t is read-only to the simulator,
   but rebuilding keeps the two runs fully independent *)
let run_mode ?(cfg = Config.base) mode traces barriers =
  let lowered =
    { Lower.traces = Array.of_list (List.map mk_trace traces); barriers }
  in
  Machine.run ~mode cfg ~home:(fun _ -> 0) lowered

let equivalence_scenarios =
  [
    ("single miss", [ [ (Trace.Load, 0x40000, -1, -1) ] ], 0);
    ( "independent misses",
      [ List.init 8 (fun i -> (Trace.Load, 0x40000 + (i * 64), -1, -1)) ],
      0 );
    ( "dependent misses",
      [ List.init 4 (fun i -> (Trace.Load, 0x40000 + (i * 64), i - 1, -1)) ],
      0 );
    ( "mshr pressure",
      [ List.init 20 (fun i -> (Trace.Load, 0x40000 + (i * 64), -1, -1)) ],
      0 );
    ( "store burst",
      [ List.init 24 (fun i -> (Trace.Store, 0x40000 + (i * 64), -1, -1)) ],
      0 );
    ( "store then work",
      [
        (Trace.Store, 0x40000, -1, -1)
        :: List.init 40 (fun _ -> (Trace.Int_op, 1, -1, -1));
      ],
      0 );
    ( "window limit",
      [
        ((Trace.Load, 0x40000, -1, -1)
         :: List.init 100 (fun _ -> (Trace.Int_op, 1, -1, -1)))
        @ [ (Trace.Load, 0x50000, 100, -1) ];
      ],
      0 );
    ( "prefetch chain",
      [
        ((Trace.Prefetch_op, 0x40000, -1, -1)
         :: List.init 100 (fun i -> (Trace.Int_op, 1, i, -1)))
        @ [ (Trace.Load, 0x40000, 100, -1) ];
      ],
      0 );
    ( "two procs + barrier",
      [
        [ (Trace.Int_op, 1, -1, -1); (Trace.Barrier_op, 1, -1, -1) ];
        [
          (Trace.Load, 0x40000, -1, -1);
          (Trace.Load, 0x50000, 0, -1);
          (Trace.Barrier_op, 1, -1, -1);
        ];
      ],
      1 );
    ( "uneven procs, two barriers",
      [
        List.init 3 (fun i -> (Trace.Load, 0x40000 + (i * 64), -1, -1))
        @ [ (Trace.Barrier_op, 1, -1, -1); (Trace.Load, 0x70000, -1, -1);
            (Trace.Barrier_op, 2, -1, -1) ];
        [ (Trace.Barrier_op, 1, -1, -1); (Trace.Barrier_op, 2, -1, -1) ];
        [ (Trace.Load, 0x80000, -1, -1); (Trace.Barrier_op, 1, -1, -1);
          (Trace.Barrier_op, 2, -1, -1) ];
      ],
      2 );
  ]

let test_event_equals_cycle_hand () =
  List.iter
    (fun (name, traces, barriers) ->
      let rc = run_mode Machine.Cycle traces barriers in
      let re = run_mode Machine.Event traces barriers in
      Alcotest.(check pass) name () ();
      check_results_equal rc re)
    equivalence_scenarios

(* same scenarios on a deeper stack: the hierarchy refactor must keep the
   two loops in lockstep for >2-level configurations too *)
let test_event_equals_cycle_three_level () =
  List.iter
    (fun (name, traces, barriers) ->
      let rc = run_mode ~cfg:Config.three_level Machine.Cycle traces barriers in
      let re = run_mode ~cfg:Config.three_level Machine.Event traces barriers in
      Alcotest.(check pass) name () ();
      Alcotest.(check int) (name ^ ": three levels reported") 3
        (Array.length rc.Machine.level_stats);
      check_results_equal rc re)
    equivalence_scenarios

(* random whole programs, lowered and simulated in both modes *)
let run_program_mode mode (c : Gen_program.cfg) =
  let p = Gen_program.build c in
  let data = Memclust_ir.Data.create p in
  Gen_program.init c data;
  let lowered = Lower.build ~nprocs:1 p data in
  Machine.run ~mode Config.base ~home:(fun _ -> 0) lowered

let prop_event_equals_cycle =
  QCheck.Test.make ~count:200 ~name:"event mode ≡ cycle mode (random programs)"
    Gen_program.arbitrary (fun c ->
      let rc = run_program_mode Machine.Cycle c in
      let re = run_program_mode Machine.Event c in
      check_results_equal rc re;
      true)

let prop_event_deterministic =
  QCheck.Test.make ~count:50 ~name:"event mode deterministic (same cfg twice)"
    Gen_program.arbitrary (fun c ->
      let r1 = run_program_mode Machine.Event c in
      let r2 = run_program_mode Machine.Event c in
      check_results_equal r1 r2;
      true)

let test_deadlock_guard_event () =
  let loads = List.init 4 (fun i -> (Trace.Load, 0x40000 + (i * 64), -1, -1)) in
  let lowered = { Lower.traces = [| mk_trace loads |]; barriers = 0 } in
  Alcotest.(check bool) "event mode also raises on tiny budget" true
    (try
       ignore
         (Machine.run ~max_cycles:3 ~mode:Machine.Event Config.base
            ~home:(fun _ -> 0) lowered);
       false
     with Memclust_util.Error.Error (Memclust_util.Error.Sim_deadlock _) ->
       true)

(* --------------------------- sampled mode --------------------------- *)

let test_mode_of_string () =
  let ts s = Option.map Machine.mode_to_string (Machine.mode_of_string s) in
  let chk = Alcotest.(check (option string)) in
  chk "cycle" (Some "cycle") (ts "cycle");
  chk "event, case-insensitive" (Some "event") (ts "EVENT");
  chk "sampled defaults"
    (Some (Sampling.to_string Sampling.default))
    (ts "sampled");
  chk "sampled full triple" (Some "sampled:1000:100:25") (ts "sampled:1000:100:25");
  chk "warmup defaults to window/4" (Some "sampled:1000:100:25")
    (ts "sampled:1000:100");
  chk "unknown mode" None (ts "fast");
  chk "window must be below period" None (ts "sampled:100:200");
  chk "junk params" None (ts "sampled:a:b")

(* every tiny registry workload: the sampled estimate's 95% intervals
   must cover the exact event-mode run for the headline metrics *)
let test_sampled_within_ci () =
  let open Memclust_workloads in
  let params =
    match Sampling.parse "sampled:2048:512:128" with
    | Some p -> p
    | None -> assert false
  in
  List.iter
    (fun (w : Workload.t) ->
      let program = Memclust_ir.Program.renumber w.Workload.program in
      let nprocs = max 1 w.Workload.mp_procs in
      let cfg = Config.with_l2 w.Workload.l2_bytes Config.base in
      let data = Memclust_ir.Data.create program in
      w.Workload.init data;
      let lowered = Lower.build ~nprocs program data in
      let home = Memclust_ir.Data.home_of_addr data ~nprocs in
      let exact = Machine.run cfg ~mode:Machine.Event ~home lowered in
      let _, est =
        Machine.run_estimated cfg ~mode:(Machine.Sampled params) ~home lowered
      in
      match est with
      | None -> Alcotest.fail (w.Workload.name ^ ": no sampling estimate")
      | Some est ->
          let name m = w.Workload.name ^ ": exact " ^ m ^ " within CI" in
          Alcotest.(check bool) (name "cycles") true
            (Sampling.in_ci est.Sampling.cycles_ci
               (float_of_int exact.Machine.cycles));
          Alcotest.(check bool) (name "l2 misses") true
            (Sampling.in_ci est.Sampling.l2_misses_ci
               (float_of_int exact.Machine.l2_misses));
          Alcotest.(check bool) (name "read-miss latency") true
            (Sampling.in_ci est.Sampling.read_miss_latency_ci
               exact.Machine.avg_read_miss_latency))
    (Registry.small ())

(* exact modes must return no estimate, and sampled totals must stay
   exact where extrapolation plays no part *)
let test_sampled_estimate_presence () =
  let loads =
    List.init 64 (fun i -> (Trace.Load, 0x40000 + (i * 64), -1, -1))
  in
  let lowered = { Lower.traces = [| mk_trace loads |]; barriers = 0 } in
  let _, none =
    Machine.run_estimated Config.base ~mode:Machine.Event ~home:(fun _ -> 0)
      lowered
  in
  Alcotest.(check bool) "event: no estimate" true (none = None);
  let params =
    match Sampling.parse "sampled:48:16:4" with
    | Some p -> p
    | None -> assert false
  in
  let r, some =
    Machine.run_estimated Config.base ~mode:(Machine.Sampled params)
      ~home:(fun _ -> 0) lowered
  in
  Alcotest.(check bool) "sampled: estimate present" true (some <> None);
  Alcotest.(check int) "instruction total stays exact" 64 r.Machine.instructions

(* --------------------------- golden counts --------------------------- *)

(* Cycle counts captured from the pre-hierarchy-refactor simulator for
   every small-registry workload on both presets, base and clustered.
   The level-list refactor claims bit-identical timing on these configs,
   so both exact modes must land on these numbers exactly. Regenerate
   (only after an intentional timing change) with:
     dune exec tools/golden.exe *)
let golden_cycles =
  [
    ("Latbench", "base-500MHz", "base", 7219);
    ("Latbench", "base-500MHz", "clustered", 2929);
    ("Latbench", "exemplar-like", "base", 7654);
    ("Latbench", "exemplar-like", "clustered", 3064);
    ("Em3d", "base-500MHz", "base", 1395);
    ("Em3d", "base-500MHz", "clustered", 1204);
    ("Em3d", "exemplar-like", "base", 2638);
    ("Em3d", "exemplar-like", "clustered", 2636);
    ("Erlebacher", "base-500MHz", "base", 3404);
    ("Erlebacher", "base-500MHz", "clustered", 3404);
    ("Erlebacher", "exemplar-like", "base", 4124);
    ("Erlebacher", "exemplar-like", "clustered", 4028);
    ("FFT", "base-500MHz", "base", 1388);
    ("FFT", "base-500MHz", "clustered", 1352);
    ("FFT", "exemplar-like", "base", 2489);
    ("FFT", "exemplar-like", "clustered", 2358);
    ("LU", "base-500MHz", "base", 10240);
    ("LU", "base-500MHz", "clustered", 7106);
    ("LU", "exemplar-like", "base", 7932);
    ("LU", "exemplar-like", "clustered", 6578);
    ("Mp3d", "base-500MHz", "base", 3280);
    ("Mp3d", "base-500MHz", "clustered", 3661);
    ("Mp3d", "exemplar-like", "base", 4046);
    ("Mp3d", "exemplar-like", "clustered", 4607);
    ("MST", "base-500MHz", "base", 5596);
    ("MST", "base-500MHz", "clustered", 3717);
    ("MST", "exemplar-like", "base", 11437);
    ("MST", "exemplar-like", "clustered", 8854);
    ("Ocean", "base-500MHz", "base", 2486);
    ("Ocean", "base-500MHz", "clustered", 1759);
    ("Ocean", "exemplar-like", "base", 4153);
    ("Ocean", "exemplar-like", "clustered", 3615);
  ]

let test_golden_cycles () =
  let open Memclust_workloads in
  let open Memclust_harness in
  let workloads = Registry.small () in
  List.iter
    (fun (wname, cname, vname, expect) ->
      let w =
        List.find (fun (w : Workload.t) -> w.Workload.name = wname) workloads
      in
      let cfg =
        if cname = "base-500MHz" then Config.base else Config.exemplar_like
      in
      let nprocs = max 1 w.Workload.mp_procs in
      let program =
        if vname = "base" then Memclust_ir.Program.renumber w.Workload.program
        else fst (Experiment.transform cfg w)
      in
      let data = Memclust_ir.Data.create program in
      w.Workload.init data;
      let lowered = Lower.build ~nprocs program data in
      let home = Memclust_ir.Data.home_of_addr data ~nprocs in
      List.iter
        (fun mode ->
          let r = Machine.run cfg ~mode ~home lowered in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s/%s/%s" wname cname vname
               (Machine.mode_to_string mode))
            expect r.Machine.cycles)
        [ Machine.Cycle; Machine.Event ])
    golden_cycles

let test_simulation_deterministic () =
  let loads = List.init 16 (fun i -> (Trace.Load, 0x40000 + (i * 48), (if i mod 3 = 0 then -1 else i - 1), -1)) in
  let r1 = run_single loads in
  let r2 = run_single loads in
  Alcotest.(check int) "same cycles" r1.Machine.cycles r2.Machine.cycles;
  Alcotest.(check int) "same misses" r1.Machine.l2_misses r2.Machine.l2_misses

let () =
  Alcotest.run "sim"
    [
      ( "cache",
        [
          Alcotest.test_case "hit after fill" `Quick test_cache_hit_after_fill;
          Alcotest.test_case "version invalidation" `Quick test_cache_version_invalidation;
          Alcotest.test_case "lru" `Quick test_cache_lru;
          Alcotest.test_case "direct-mapped conflict" `Quick test_cache_direct_mapped_conflict;
        ] );
      ( "memsys",
        [
          Alcotest.test_case "uncontended latencies" `Quick test_memsys_uncontended;
          Alcotest.test_case "bank contention" `Quick test_memsys_bank_contention;
          Alcotest.test_case "banks parallel" `Quick test_memsys_banks_parallel;
          Alcotest.test_case "utilization accounting" `Quick test_memsys_utilization;
          Alcotest.test_case "mesh hops" `Quick test_mesh_hops;
          Alcotest.test_case "remote scales with distance" `Quick test_remote_scales_with_distance;
        ] );
      ("breakdown", [ Alcotest.test_case "arith" `Quick test_breakdown ]);
      ( "core",
        [
          Alcotest.test_case "single miss" `Quick test_single_miss_latency;
          Alcotest.test_case "independent misses overlap" `Quick test_independent_misses_overlap;
          Alcotest.test_case "dependent misses serialize" `Quick test_dependent_misses_serialize;
          Alcotest.test_case "same line coalesces" `Quick test_same_line_coalesce;
          Alcotest.test_case "store retires early" `Quick test_store_retires_early;
          Alcotest.test_case "MSHR limit" `Quick test_mshr_limit;
          Alcotest.test_case "window limits overlap" `Quick test_window_limits_overlap;
          Alcotest.test_case "IPC bounds" `Quick test_ipc_bounded_by_retire_width;
          Alcotest.test_case "barrier sync" `Quick test_barrier_sync;
          Alcotest.test_case "MSHR histograms" `Quick test_mshr_histograms;
          Alcotest.test_case "deadlock guard" `Quick test_deadlock_guard;
          Alcotest.test_case "config presets" `Quick test_config_presets;
        ] );
      ( "determinism",
        [ Alcotest.test_case "repeatable" `Quick test_simulation_deterministic ] );
      ( "event-mode",
        [
          Alcotest.test_case "hand traces, both modes" `Quick
            test_event_equals_cycle_hand;
          Alcotest.test_case "hand traces, three-level stack" `Quick
            test_event_equals_cycle_three_level;
          Alcotest.test_case "deadlock guard in event mode" `Quick
            test_deadlock_guard_event;
          QCheck_alcotest.to_alcotest prop_event_equals_cycle;
          QCheck_alcotest.to_alcotest prop_event_deterministic;
        ] );
      ( "prefetch",
        [
          Alcotest.test_case "hides latency" `Quick test_prefetch_hides_latency;
          Alcotest.test_case "late prefetch" `Quick test_prefetch_late;
          Alcotest.test_case "never stalls" `Quick test_prefetch_never_stalls_retire;
        ] );
      ( "sampled-mode",
        [
          Alcotest.test_case "mode_of_string" `Quick test_mode_of_string;
          Alcotest.test_case "estimate presence" `Quick
            test_sampled_estimate_presence;
          Alcotest.test_case "small workloads within CI" `Quick
            test_sampled_within_ci;
        ] );
      ( "golden",
        [
          Alcotest.test_case "pre-refactor cycle counts, both modes" `Quick
            test_golden_cycles;
        ] );
    ]
