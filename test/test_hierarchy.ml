(* Direct tests of the memory-hierarchy layer: Cache internals (via the
   side-effect-free [resident] probe), the per-level Mshr file, the
   Hierarchy level stack, and Config.validate. *)
open Memclust_sim

(* ------------------------------ Cache -------------------------------- *)

let res c ~version ~addr = Cache.resident c ~version ~addr

let test_lru_eviction_order () =
  (* 2-way set; three lines to the same set evict in strict LRU order *)
  let c = Cache.create ~bytes:256 ~assoc:2 ~line:64 in
  Cache.fill c ~version:0 ~addr:0;
  Cache.fill c ~version:0 ~addr:128;
  (* touch line 0: line 2 (addr 128) becomes LRU *)
  ignore (Cache.lookup c ~version:0 ~addr:0);
  Cache.fill c ~version:0 ~addr:256;
  Alcotest.(check bool) "MRU survives" true (res c ~version:0 ~addr:0);
  Alcotest.(check bool) "LRU evicted" false (res c ~version:0 ~addr:128);
  Alcotest.(check bool) "newcomer present" true (res c ~version:0 ~addr:256);
  (* next eviction removes the untouched line 0's neighbour: line 4 is
     MRU, line 0 is now LRU *)
  Cache.fill c ~version:0 ~addr:384;
  Alcotest.(check bool) "second LRU evicted" false (res c ~version:0 ~addr:0);
  Alcotest.(check bool) "recent fill survives" true (res c ~version:0 ~addr:256)

let test_resident_no_side_effect () =
  (* [resident] must not refresh LRU: probing the LRU line and then
     filling still evicts it *)
  let c = Cache.create ~bytes:256 ~assoc:2 ~line:64 in
  Cache.fill c ~version:0 ~addr:128;
  Cache.fill c ~version:0 ~addr:0;
  (* addr 128 is LRU; a lookup would promote it, resident must not *)
  ignore (res c ~version:0 ~addr:128);
  Cache.fill c ~version:0 ~addr:256;
  Alcotest.(check bool) "probed line still evicted" false
    (res c ~version:0 ~addr:128)

let test_associativity_conflicts () =
  let c = Cache.create ~bytes:512 ~assoc:2 ~line:64 in
  Alcotest.(check int) "sets" 4 (Cache.sets c);
  Alcotest.(check int) "assoc" 2 (Cache.assoc c);
  Alcotest.(check int) "line size" 64 (Cache.line_size c);
  (* addrs 0 and 1024 share a set (stride = sets * line); both fit *)
  Cache.fill c ~version:0 ~addr:0;
  Cache.fill c ~version:0 ~addr:1024;
  Alcotest.(check bool) "both ways used" true
    (res c ~version:0 ~addr:0 && res c ~version:0 ~addr:1024);
  (* a third conflicting line overflows the set *)
  Cache.fill c ~version:0 ~addr:2048;
  Alcotest.(check bool) "set overflow evicts" false (res c ~version:0 ~addr:0);
  (* a different set is untouched *)
  Cache.fill c ~version:0 ~addr:64;
  Alcotest.(check bool) "other set unaffected" true (res c ~version:0 ~addr:1024)

let test_stale_version_refill_in_place () =
  (* refreshing a stale copy re-tags in place instead of evicting the
     set's LRU way *)
  let c = Cache.create ~bytes:256 ~assoc:2 ~line:64 in
  Cache.fill c ~version:1 ~addr:0;
  Cache.fill c ~version:1 ~addr:128;
  Alcotest.(check bool) "stale miss" false (res c ~version:2 ~addr:0);
  Cache.fill c ~version:2 ~addr:0;
  Alcotest.(check bool) "re-tagged" true (res c ~version:2 ~addr:0);
  Alcotest.(check bool) "neighbour not evicted" true (res c ~version:1 ~addr:128)

(* ------------------------------- Mshr -------------------------------- *)

let entry ?(ready = 100) ?(has_read = true) ?(has_write = false)
    ?(prefetch_only = false) () =
  { Mshr.ready; has_read; has_write; prefetch_only }

let test_mshr_coalesce () =
  let m = Mshr.create ~cap:4 in
  Alcotest.(check bool) "empty" true (Mshr.is_empty m);
  Mshr.insert m ~line:5 (entry ());
  Alcotest.(check int) "one entry" 1 (Mshr.occupancy m);
  Alcotest.(check bool) "coalescing probe finds it" true (Mshr.mem m 5);
  (match Mshr.find m 5 with
  | None -> Alcotest.fail "find lost the entry"
  | Some e -> Alcotest.(check int) "ready preserved" 100 e.Mshr.ready);
  Alcotest.(check bool) "other lines miss" false (Mshr.mem m 6);
  Alcotest.(check int) "read occupancy" 1 (Mshr.read_occupancy m)

let test_mshr_capacity () =
  let m = Mshr.create ~cap:2 in
  Mshr.insert m ~line:0 (entry ());
  Alcotest.(check bool) "not yet full" false (Mshr.full m);
  Mshr.insert m ~line:1 (entry ());
  Alcotest.(check bool) "full at cap" true (Mshr.full m);
  Alcotest.(check int) "capacity" 2 (Mshr.capacity m)

let test_mshr_cleanup_and_read_occ () =
  let m = Mshr.create ~cap:4 in
  Mshr.insert m ~line:0 (entry ~ready:50 ());
  Mshr.insert m ~line:1 (entry ~ready:80 ~has_read:false ());
  let e = entry ~ready:120 ~has_read:false ~prefetch_only:true () in
  Mshr.insert m ~line:2 e;
  Alcotest.(check int) "one read in flight" 1 (Mshr.read_occupancy m);
  (* the prefetch gains a demand read: the caller flips the flag then
     notifies the file *)
  e.Mshr.has_read <- true;
  e.Mshr.prefetch_only <- false;
  Mshr.note_read m;
  Alcotest.(check int) "late read counted" 2 (Mshr.read_occupancy m);
  Alcotest.(check int) "earliest completion" 50 (Mshr.next_ready m);
  Alcotest.(check bool) "nothing expires early" false (Mshr.cleanup m ~now:49);
  Alcotest.(check bool) "expiry at ready" true (Mshr.cleanup m ~now:80);
  Alcotest.(check int) "two entries retired" 1 (Mshr.occupancy m);
  Alcotest.(check int) "retired read released" 1 (Mshr.read_occupancy m);
  Mshr.reset m;
  Alcotest.(check bool) "reset drains" true (Mshr.is_empty m);
  Alcotest.(check int) "reset clears read occupancy" 0 (Mshr.read_occupancy m);
  Alcotest.(check int) "empty file: no completion" max_int (Mshr.next_ready m)

(* ----------------------------- Hierarchy ------------------------------ *)

let mk_hier ?(cfg = Config.base) () =
  let sh = Hierarchy.make_shared cfg ~nprocs:1 ~home:(fun _ -> 0) in
  Hierarchy.create sh ~proc:0

let complete h t =
  (* retire the miss that completes at [t] *)
  ignore (Hierarchy.cleanup h ~now:t)

let test_hierarchy_miss_then_hit () =
  let h = mk_hier () in
  Alcotest.(check int) "depth follows config" 2 (Hierarchy.depth h);
  (match Hierarchy.read h ~now:0 0x40000 with
  | None -> Alcotest.fail "cold miss must allocate"
  | Some t ->
      Alcotest.(check bool) "memory-latency completion" true
        (t >= Config.base.Config.mem_lat);
      complete h t);
  Alcotest.(check int) "one memory miss" 1 (Hierarchy.mem_misses h);
  (* after the fill, the same line hits the first level at its latency *)
  (match Hierarchy.read h ~now:200 0x40000 with
  | None -> Alcotest.fail "filled line must hit"
  | Some t -> Alcotest.(check int) "L1 hit latency" 201 t);
  Alcotest.(check int) "still one memory miss" 1 (Hierarchy.mem_misses h);
  let stats = Hierarchy.level_stats h in
  Alcotest.(check int) "L1: one hit" 1 stats.(0).Breakdown.lv_hits;
  Alcotest.(check int) "L1: one miss" 1 stats.(0).Breakdown.lv_misses

let test_hierarchy_intermediate_hit () =
  (* evict a line from the L1 but not the L2: the read must complete at
     the L2 latency without touching memory *)
  let h = mk_hier () in
  Hierarchy.warm_read h 0x40000;
  (* base L1 is 16 KB direct-mapped: warming addr+16K evicts 0x40000 from
     the L1; the 64 KB 4-way L2 keeps both *)
  Hierarchy.warm_read h (0x40000 + (16 * 1024));
  (match Hierarchy.read h ~now:0 0x40000 with
  | None -> Alcotest.fail "L2-resident line must hit"
  | Some t ->
      let l2_lat = (List.nth (Config.levels Config.base) 1).Config.lat in
      Alcotest.(check int) "completes at the L2 latency" l2_lat t);
  Alcotest.(check int) "no memory traffic" 0 (Hierarchy.mem_misses h);
  let stats = Hierarchy.level_stats h in
  Alcotest.(check int) "L1 missed" 1 stats.(0).Breakdown.lv_misses;
  Alcotest.(check int) "L2 hit" 1 stats.(1).Breakdown.lv_hits;
  (* the hit refilled the L1: the next access hits at the top *)
  match Hierarchy.read h ~now:100 0x40000 with
  | None -> Alcotest.fail "refilled line must hit"
  | Some t -> Alcotest.(check int) "back to L1 latency" 101 t

let test_hierarchy_coalesce () =
  let h = mk_hier () in
  let t1 =
    match Hierarchy.read h ~now:0 0x40000 with
    | Some t -> t
    | None -> Alcotest.fail "first miss rejected"
  in
  (* same line, different byte: coalesces onto the in-flight miss *)
  (match Hierarchy.read h ~now:3 (0x40000 + 8) with
  | None -> Alcotest.fail "coalesced access rejected"
  | Some t2 -> Alcotest.(check int) "same completion" t1 t2);
  Alcotest.(check int) "one memory miss for the line" 1
    (Hierarchy.mem_misses h);
  Alcotest.(check int) "one entry outstanding" 1 (Hierarchy.total_occupancy h);
  Alcotest.(check int) "next completion is the miss" t1
    (Hierarchy.next_completion h)

let test_hierarchy_mshr_full () =
  let h = mk_hier ~cfg:(Config.with_mshrs 2 Config.base) () in
  ignore (Hierarchy.read h ~now:0 0x40000);
  ignore (Hierarchy.read h ~now:0 0x50000);
  Alcotest.(check int) "two in flight" 2 (Hierarchy.total_occupancy h);
  (match Hierarchy.read h ~now:0 0x60000 with
  | None -> ()
  | Some _ -> Alcotest.fail "third distinct line must be rejected at lp=2");
  Alcotest.(check int) "rejection counted" 1 (Hierarchy.mshr_full_events h);
  (* a same-line access still coalesces while the file is full *)
  match Hierarchy.read h ~now:0 (0x40000 + 16) with
  | None -> Alcotest.fail "coalescing must bypass the capacity check"
  | Some _ -> ()

let test_hierarchy_three_level_stats () =
  let h = mk_hier ~cfg:Config.three_level () in
  Alcotest.(check int) "three levels" 3 (Hierarchy.depth h);
  (match Hierarchy.read h ~now:0 0x40000 with
  | Some t -> complete h t
  | None -> Alcotest.fail "cold miss rejected");
  let stats = Hierarchy.level_stats h in
  Alcotest.(check int) "stats row per level" 3 (Array.length stats);
  Array.iteri
    (fun i s ->
      Alcotest.(check int)
        (Printf.sprintf "L%d missed the cold access" (i + 1))
        1 s.Breakdown.lv_misses)
    stats;
  (* warm hit at the top afterwards *)
  (match Hierarchy.read h ~now:500 0x40000 with
  | Some t -> Alcotest.(check int) "L1 hit" 501 t
  | None -> Alcotest.fail "filled line rejected");
  Alcotest.(check int) "single memory miss" 1 (Hierarchy.mem_misses h)

let test_hierarchy_prefetch_coalesce () =
  let h = mk_hier () in
  Hierarchy.prefetch h ~now:0 0x40000;
  Alcotest.(check int) "prefetch issued" 1 (Hierarchy.prefetches h);
  Alcotest.(check int) "prefetch went to memory" 1
    (Hierarchy.prefetch_misses h);
  (* the demand read catches the in-flight prefetch *)
  (match Hierarchy.read h ~now:1 0x40000 with
  | None -> Alcotest.fail "late prefetch must coalesce"
  | Some _ -> ());
  Alcotest.(check int) "late prefetch counted" 1 (Hierarchy.late_prefetches h);
  Alcotest.(check int) "no separate demand miss" 0 (Hierarchy.read_misses h)

(* --------------------------- Config.validate -------------------------- *)

let is_ok = function Ok () -> true | Error _ -> false

let check_valid name cfg = Alcotest.(check bool) name true (is_ok (Config.validate cfg))

let check_invalid name cfg =
  Alcotest.(check bool) name false (is_ok (Config.validate cfg))

let with_first_level f (cfg : Config.t) =
  match Config.levels cfg with
  | l :: rest -> Config.with_levels (f l :: rest) cfg
  | [] -> cfg

let test_validate_presets () =
  check_valid "base" Config.base;
  check_valid "exemplar" Config.exemplar_like;
  check_valid "three-level" Config.three_level;
  check_valid "1 GHz" (Config.ghz Config.base);
  check_valid "resized L2" (Config.with_l2 (1024 * 1024) Config.base)

let test_validate_rejects () =
  check_invalid "empty stack" (Config.with_levels [] Config.base);
  check_invalid "zero MSHRs"
    (with_first_level (fun l -> { l with Config.mshrs = 0 }) Config.base);
  check_invalid "negative MSHRs" (Config.with_mshrs (-1) Config.base);
  check_invalid "non-power-of-two line" (Config.with_line 48 Config.base);
  check_invalid "non-power-of-two size"
    (with_first_level (fun l -> { l with Config.bytes = 3000 }) Config.base);
  check_invalid "zero associativity"
    (with_first_level (fun l -> { l with Config.assoc = 0 }) Config.base);
  check_invalid "capacity below one set"
    (with_first_level
       (fun l -> { l with Config.bytes = 64; assoc = 4 })
       Config.base);
  check_invalid "L1 larger than L2"
    (Config.with_l2 (4 * 1024) Config.base);
  check_invalid "line grows toward the processor"
    (with_first_level (fun l -> { l with Config.line = 128 }) Config.base);
  check_invalid "zero issue width" { Config.base with Config.issue_width = 0 };
  check_invalid "zero window" { Config.base with Config.window = 0 };
  check_invalid "zero write buffer"
    { Config.base with Config.write_buffer = 0 };
  check_invalid "zero banks" { Config.base with Config.banks = 0 }

let test_validate_exn () =
  Alcotest.(check bool) "validate_exn raises" true
    (try
       Config.validate_exn (Config.with_mshrs 0 Config.base);
       false
     with Invalid_argument _ -> true);
  Config.validate_exn Config.base

let () =
  Alcotest.run "hierarchy"
    [
      ( "cache",
        [
          Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "resident has no side effects" `Quick
            test_resident_no_side_effect;
          Alcotest.test_case "associativity conflicts" `Quick
            test_associativity_conflicts;
          Alcotest.test_case "stale-version refill in place" `Quick
            test_stale_version_refill_in_place;
        ] );
      ( "mshr",
        [
          Alcotest.test_case "same-line coalescing" `Quick test_mshr_coalesce;
          Alcotest.test_case "capacity bound" `Quick test_mshr_capacity;
          Alcotest.test_case "cleanup and read occupancy" `Quick
            test_mshr_cleanup_and_read_occ;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "miss then hit" `Quick test_hierarchy_miss_then_hit;
          Alcotest.test_case "intermediate-level hit" `Quick
            test_hierarchy_intermediate_hit;
          Alcotest.test_case "same-line coalescing" `Quick
            test_hierarchy_coalesce;
          Alcotest.test_case "MSHR-full rejection" `Quick
            test_hierarchy_mshr_full;
          Alcotest.test_case "three-level stats" `Quick
            test_hierarchy_three_level_stats;
          Alcotest.test_case "late prefetch" `Quick
            test_hierarchy_prefetch_coalesce;
        ] );
      ( "validate",
        [
          Alcotest.test_case "presets pass" `Quick test_validate_presets;
          Alcotest.test_case "bad configs rejected" `Quick test_validate_rejects;
          Alcotest.test_case "validate_exn" `Quick test_validate_exn;
        ] );
    ]
