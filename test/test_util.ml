open Memclust_util

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------- Rng ------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differ = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.int64 a) (Rng.int64 b)) then differ := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differ

let test_rng_split () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let differ = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.int64 a) (Rng.int64 b)) then differ := true
  done;
  Alcotest.(check bool) "split stream independent" true !differ

let test_rng_copy () =
  let a = Rng.create 9 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int in [0,bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float in [0,bound)" ~count:500
    QCheck.(pair small_int (float_range 0.001 1000.0))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.float rng bound in
      v >= 0.0 && v < bound)

let prop_rng_permutation =
  QCheck.Test.make ~name:"Rng.permutation is a permutation" ~count:200
    QCheck.(pair small_int (int_range 1 200))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let p = Rng.permutation rng n in
      let seen = Array.make n false in
      Array.iter (fun i -> seen.(i) <- true) p;
      Array.length p = n && Array.for_all (fun b -> b) seen)

let prop_rng_shuffle_multiset =
  QCheck.Test.make ~name:"Rng.shuffle preserves elements" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      let a = Array.of_list l in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

(* ------------------------------ Stats ------------------------------ *)

let test_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stats.mean [||])

let test_stddev () =
  Alcotest.(check (float 1e-9)) "constant" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |]);
  Alcotest.(check (float 1e-6)) "known" 2.0
    (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])

let test_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 4.0 (Stats.geomean [| 2.0; 8.0 |])

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "interpolated" 1.5 (Stats.percentile xs 12.5)

let test_percentile_empty () =
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.percentile [||] 50.0))

let prop_acc_matches_arrays =
  QCheck.Test.make ~name:"Stats.Acc matches array stats" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun l ->
      let acc = Stats.Acc.create () in
      List.iter (Stats.Acc.add acc) l;
      let a = Array.of_list l in
      Stats.Acc.count acc = Array.length a
      && abs_float (Stats.Acc.mean acc -. Stats.mean a) < 1e-9
      && Stats.Acc.min acc = Stats.minimum a
      && Stats.Acc.max acc = Stats.maximum a)

let test_histogram () =
  let h = Stats.Histogram.create 4 in
  Stats.Histogram.add h 0;
  Stats.Histogram.add h 1;
  Stats.Histogram.add h 1;
  Stats.Histogram.add h 9 (* clamps to 3 *);
  Alcotest.(check (float 1e-9)) "total" 4.0 (Stats.Histogram.total h);
  Alcotest.(check (float 1e-9)) ">=0" 1.0 (Stats.Histogram.fraction_at_least h 0);
  Alcotest.(check (float 1e-9)) ">=1" 0.75 (Stats.Histogram.fraction_at_least h 1);
  Alcotest.(check (float 1e-9)) ">=2" 0.25 (Stats.Histogram.fraction_at_least h 2);
  Alcotest.(check (float 1e-9)) "clamped bucket" 1.0 (Stats.Histogram.bucket h 3)

let prop_histogram_monotone =
  QCheck.Test.make ~name:"fraction_at_least decreases in N" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (int_range 0 15))
    (fun l ->
      let h = Stats.Histogram.create 16 in
      List.iter (Stats.Histogram.add h) l;
      let ok = ref true in
      for n = 1 to 15 do
        if Stats.Histogram.fraction_at_least h n
           > Stats.Histogram.fraction_at_least h (n - 1) +. 1e-12
        then ok := false
      done;
      !ok)

(* ------------------------------ Table ------------------------------ *)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "xxx"; "1" ]; [ "y"; "22" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  (* all lines equal width *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_mismatch () =
  let raises f =
    match f () with
    | (_ : string) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "short row raises" true
    (raises (fun () -> Table.render ~header:[ "a"; "bb" ] [ [ "xxx" ] ]));
  Alcotest.(check bool) "long row raises" true
    (raises (fun () ->
         Table.render ~header:[ "a"; "bb" ] [ [ "x"; "y"; "z" ] ]));
  Alcotest.(check bool) "short aligns raises" true
    (raises (fun () ->
         Table.render ~aligns:[ Table.Left ] ~header:[ "a"; "bb" ]
           [ [ "x"; "y" ] ]))

let test_table_fmt () =
  Alcotest.(check string) "float" "3.14" (Table.fmt_float 3.14159);
  Alcotest.(check string) "float decimals" "3.1" (Table.fmt_float ~decimals:1 3.14159);
  Alcotest.(check string) "pct" "21.0%" (Table.fmt_pct 0.21)

(* -------------------------- Analysis_cache ------------------------- *)

let test_cache_memoizes () =
  let c = Analysis_cache.create ~name:"test-memo" () in
  let calls = ref 0 in
  let compute () =
    incr calls;
    42
  in
  Alcotest.(check int) "first" 42 (Analysis_cache.find_or_compute c "k" compute);
  Alcotest.(check int) "second" 42 (Analysis_cache.find_or_compute c "k" compute);
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check (option int)) "find_opt" (Some 42)
    (Analysis_cache.find_opt c "k");
  Analysis_cache.clear c;
  Alcotest.(check (option int)) "cleared" None (Analysis_cache.find_opt c "k")

let test_cache_bounded () =
  let cap = 4 in
  let c = Analysis_cache.create ~cap ~name:"test-bounded" () in
  for i = 0 to 9 do
    Analysis_cache.set c (string_of_int i) i
  done;
  Alcotest.(check int) "at cap" cap (Analysis_cache.length c);
  (* FIFO eviction: the oldest entries are gone, the newest survive *)
  Alcotest.(check (option int)) "oldest evicted" None
    (Analysis_cache.find_opt c "0");
  Alcotest.(check (option int)) "newest kept" (Some 9)
    (Analysis_cache.find_opt c "9")

let test_cache_registry () =
  let c = Analysis_cache.create ~name:"test-registry" () in
  Analysis_cache.set c "x" 1;
  Alcotest.(check bool) "registered" true
    (List.exists
       (fun (name, _) -> name = "test-registry")
       (Analysis_cache.registered ()));
  Analysis_cache.clear_all ();
  Alcotest.(check (option int)) "clear_all empties" None
    (Analysis_cache.find_opt c "x")

(* ------------------------------ Plot ------------------------------- *)

let test_plot_bar () =
  Alcotest.(check string) "full" (String.make 10 '#') (Plot.bar ~width:10 1.0);
  Alcotest.(check string) "clipped" (String.make 10 '#') (Plot.bar ~width:10 2.0);
  Alcotest.(check string) "empty" "" (Plot.bar ~width:10 0.0);
  Alcotest.(check string) "half" "#####" (Plot.bar ~width:10 0.5)

let test_plot_stacked () =
  let s = Plot.stacked_bar ~width:10 ~segments:[ ('a', 0.5); ('b', 0.5) ] in
  Alcotest.(check string) "two segments" "aaaaabbbbb" s;
  let s = Plot.stacked_bar ~width:10 ~segments:[ ('a', 0.9); ('b', 0.9) ] in
  Alcotest.(check int) "clipped at width" 10 (String.length s)

let test_plot_series () =
  let s = Plot.series ~labels:[ "x" ] [ [| 0.0; 1.0 |] ] in
  Alcotest.(check bool) "has legend" true
    (String.length s > 0
    &&
    let lines = String.split_on_char '\n' s in
    List.exists (fun l -> String.length l >= 7 && String.sub l 4 7 = "legend:") lines)

(* ------------------------------ Pqueue ----------------------------- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q p v) [ (3, "c"); (1, "a"); (2, "b") ];
  Alcotest.(check (option (pair int string))) "peek" (Some (1, "a")) (Pqueue.peek q);
  Alcotest.(check (option (pair int string))) "pop1" (Some (1, "a")) (Pqueue.pop q);
  Alcotest.(check (option (pair int string))) "pop2" (Some (2, "b")) (Pqueue.pop q);
  Alcotest.(check (option (pair int string))) "pop3" (Some (3, "c")) (Pqueue.pop q);
  Alcotest.(check (option (pair int string))) "empty" None (Pqueue.pop q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  Pqueue.push q 1 "first";
  Pqueue.push q 1 "second";
  Alcotest.(check (option (pair int string))) "fifo" (Some (1, "first")) (Pqueue.pop q);
  Alcotest.(check (option (pair int string))) "fifo2" (Some (1, "second")) (Pqueue.pop q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"Pqueue pops in priority order" ~count:300
    QCheck.(list small_int)
    (fun l ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.push q p p) l;
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      let out = drain [] in
      out = List.sort compare l && Pqueue.is_empty q)

(* the non-allocating accessors (min_prio / min_value / drop_min) must
   observe exactly the sequence pop would return *)
let prop_pqueue_min_accessors =
  QCheck.Test.make ~name:"Pqueue min_prio/min_value/drop_min agree with pop"
    ~count:300
    QCheck.(list small_int)
    (fun l ->
      let q = Pqueue.create () and q' = Pqueue.create () in
      List.iteri
        (fun i p ->
          Pqueue.push q p i;
          Pqueue.push q' p i)
        l;
      let ok = ref true in
      let rec drain () =
        match Pqueue.pop q with
        | None ->
            if Pqueue.min_prio q' <> max_int || not (Pqueue.is_empty q') then
              ok := false
        | Some (p, v) ->
            if Pqueue.min_prio q' <> p || Pqueue.min_value q' <> v then
              ok := false;
            Pqueue.drop_min q';
            drain ()
      in
      drain ();
      !ok)

let prop_pqueue_fifo_ties =
  QCheck.Test.make ~name:"Pqueue equal priorities pop in insertion order"
    ~count:300
    QCheck.(list (int_bound 3))
    (fun l ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q p i) l;
      (* within one priority class, the payloads (insertion indices) must
         come out increasing *)
      let last = Hashtbl.create 8 in
      let rec drain ok =
        match Pqueue.pop q with
        | None -> ok
        | Some (p, i) ->
            let fifo =
              match Hashtbl.find_opt last p with None -> true | Some j -> j < i
            in
            Hashtbl.replace last p i;
            drain (ok && fifo)
      in
      drain true)

let test_pqueue_clear () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q p p) [ 5; 1; 3 ];
  Pqueue.clear q;
  Alcotest.(check bool) "empty after clear" true (Pqueue.is_empty q);
  Alcotest.(check int) "length 0" 0 (Pqueue.length q);
  Alcotest.(check int) "min_prio sentinel" max_int (Pqueue.min_prio q);
  Alcotest.(check (option (pair int int))) "pop none" None (Pqueue.pop q);
  (* still usable after clear, and drop_min on empty stays a no-op *)
  Pqueue.drop_min q;
  Pqueue.push q 2 42;
  Alcotest.(check (option (pair int int))) "reusable" (Some (2, 42)) (Pqueue.pop q)

(* ----------------------------- mean_ci ----------------------------- *)

let test_mean_ci () =
  let m, h = Stats.mean_ci [| 4.0; 4.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "constant mean" 4.0 m;
  Alcotest.(check (float 1e-9)) "constant half-width" 0.0 h;
  let m, h = Stats.mean_ci [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.0 m;
  (* s = 1, n = 3, t(df=2) = 4.303 -> half = 4.303/sqrt 3 *)
  Alcotest.(check (float 1e-3)) "half-width" (4.303 /. sqrt 3.0) h;
  let _, h1 = Stats.mean_ci [| 1.0 |] in
  Alcotest.(check (float 1e-9)) "single sample" 0.0 h1;
  let _, h0 = Stats.mean_ci [||] in
  Alcotest.(check (float 1e-9)) "no samples" 0.0 h0

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          qtest prop_rng_int_bounds;
          qtest prop_rng_float_bounds;
          qtest prop_rng_permutation;
          qtest prop_rng_shuffle_multiset;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile empty" `Quick test_percentile_empty;
          Alcotest.test_case "histogram" `Quick test_histogram;
          qtest prop_acc_matches_arrays;
          qtest prop_histogram_monotone;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "fmt" `Quick test_table_fmt;
          Alcotest.test_case "mismatch" `Quick test_table_mismatch;
        ] );
      ( "analysis-cache",
        [
          Alcotest.test_case "memoizes" `Quick test_cache_memoizes;
          Alcotest.test_case "bounded" `Quick test_cache_bounded;
          Alcotest.test_case "registry" `Quick test_cache_registry;
        ] );
      ( "plot",
        [
          Alcotest.test_case "bar" `Quick test_plot_bar;
          Alcotest.test_case "stacked" `Quick test_plot_stacked;
          Alcotest.test_case "series" `Quick test_plot_series;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "order" `Quick test_pqueue_order;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          qtest prop_pqueue_sorted;
          qtest prop_pqueue_min_accessors;
          qtest prop_pqueue_fifo_ties;
        ] );
      ("stats-ci", [ Alcotest.test_case "mean_ci" `Quick test_mean_ci ]);
    ]
