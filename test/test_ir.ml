open Memclust_ir
open Ast

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------ Affine ----------------------------- *)

let affine_gen =
  QCheck.Gen.(
    let var = oneofl [ "i"; "j"; "k" ] in
    let term = pair var (int_range (-8) 8) in
    map2 (fun terms c -> Affine.of_terms terms c) (list_size (0 -- 4) term)
      (int_range (-100) 100))

let affine_arb = QCheck.make affine_gen ~print:Affine.to_string

let env v = match v with "i" -> 3 | "j" -> 5 | "k" -> -2 | _ -> 0

let prop_affine_add =
  QCheck.Test.make ~name:"eval (a+b) = eval a + eval b" ~count:300
    QCheck.(pair affine_arb affine_arb)
    (fun (a, b) -> Affine.eval env (Affine.add a b) = Affine.eval env a + Affine.eval env b)

let prop_affine_scale =
  QCheck.Test.make ~name:"eval (k*a) = k * eval a" ~count:300
    QCheck.(pair (int_range (-10) 10) affine_arb)
    (fun (k, a) -> Affine.eval env (Affine.scale k a) = k * Affine.eval env a)

let prop_affine_sub_self =
  QCheck.Test.make ~name:"a - a = 0" ~count:300 affine_arb (fun a ->
      Affine.is_const (Affine.sub a a) && Affine.constant (Affine.sub a a) = 0)

let prop_affine_shift =
  QCheck.Test.make ~name:"shift matches eval with shifted env" ~count:300
    QCheck.(pair affine_arb (int_range (-10) 10))
    (fun (a, k) ->
      let shifted = Affine.shift a "i" k in
      let env' v = if v = "i" then env "i" + k else env v in
      Affine.eval env shifted = Affine.eval env' a)

let prop_affine_subst =
  QCheck.Test.make ~name:"subst matches eval composition" ~count:300
    QCheck.(pair affine_arb affine_arb)
    (fun (a, b) ->
      let s = Affine.subst a "j" b in
      let env' v = if v = "j" then Affine.eval env b else env v in
      Affine.eval env s = Affine.eval env' a)

let test_affine_basics () =
  let a = Affine.of_terms [ ("i", 2); ("j", 0); ("i", 1) ] 5 in
  Alcotest.(check int) "coeff merged" 3 (Affine.coeff a "i");
  Alcotest.(check int) "zero coeff dropped" 0 (Affine.coeff a "j");
  Alcotest.(check (list string)) "vars" [ "i" ] (Affine.vars a);
  Alcotest.(check int) "const" 5 (Affine.constant a);
  Alcotest.(check bool) "not const" false (Affine.is_const a);
  Alcotest.(check bool) "const detect" true (Affine.is_const (Affine.const 7))

let test_affine_pp () =
  let a = Affine.of_terms [ ("i", 1); ("j", -2) ] 3 in
  Alcotest.(check string) "pp" "i - 2*j + 3" (Affine.to_string a);
  Alcotest.(check string) "pp const" "-4" (Affine.to_string (Affine.const (-4)))

(* --------------------------- Program ------------------------------- *)

let simple_program () =
  let open Builder in
  program "t"
    ~arrays:[ array_decl "a" 64; array_decl "b" 64 ]
    ~regions:[ region_decl ~node_size:32 "r" 8 ]
    [
      loop "j" (cst 0) (cst 8)
        [
          loop "i" (cst 0) (cst 8)
            [ store (aref "a" (idx2 ~cols:8 (ix "j") (ix "i"))) (arr "b" (ix "i")) ];
        ];
      chase "p" ~init:(ld (aref "a" (cst 0))) ~region:"r" ~next:0
        [ use (ld (fref "r" (sc "p") 1)) ];
    ]

let test_renumber_unique () =
  let p = simple_program () in
  let ids = List.map (fun (r : Program.ref_info) -> r.ref_.ref_id) (Program.refs p) in
  let chase_ids = List.map (fun (c : chase) -> c.next_ref_id) (Program.chases p) in
  let all = ids @ chase_ids in
  Alcotest.(check bool) "all positive" true (List.for_all (fun i -> i > 0) all);
  Alcotest.(check int) "unique ids" (List.length all)
    (List.length (List.sort_uniq compare all));
  Alcotest.(check int) "max id" (List.fold_left max 0 all) (Program.max_ref_id p)

let test_refs_context () =
  let p = simple_program () in
  let refs = Program.refs p in
  (* the store to a is nested in loops j then i *)
  let store_info =
    List.find (fun (r : Program.ref_info) -> r.is_store) refs
  in
  Alcotest.(check (list string)) "loop path" [ "j"; "i" ]
    (List.map (fun (l : loop) -> l.var) store_info.loop_path);
  (* the field ref is inside the chase *)
  let field_info =
    List.find
      (fun (r : Program.ref_info) ->
        match r.ref_.target with Field _ -> true | _ -> false)
      refs
  in
  Alcotest.(check int) "chase path" 1 (List.length field_info.chase_path)

let test_validate_ok () =
  match Program.validate (simple_program ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let expect_invalid p =
  match Program.validate p with
  | Ok () -> Alcotest.fail "expected validation error"
  | Error _ -> ()

let test_validate_undeclared_array () =
  let open Builder in
  expect_invalid
    (program "bad" ~arrays:[] [ use (arr "nope" (cst 0)) ])

let test_validate_dup_loop_var () =
  let open Builder in
  expect_invalid
    (program "bad"
       ~arrays:[ array_decl "a" 8 ]
       [ loop "i" (cst 0) (cst 2) [ loop "i" (cst 0) (cst 2) [ use (arr "a" (ix "i")) ] ] ])

let test_validate_bad_field () =
  let open Builder in
  expect_invalid
    (program "bad"
       ~regions:[ region_decl ~node_size:16 "r" 4 ]
       [ use (ld (fref "r" (Const (Vptr 0)) 5)) ])

let test_validate_bad_step () =
  let open Builder in
  expect_invalid
    (program "bad"
       ~arrays:[ array_decl "a" 8 ]
       [ loop ~step:0 "i" (cst 0) (cst 2) [ use (arr "a" (ix "i")) ] ])

let test_scalars_written () =
  let open Builder in
  let stmts =
    [
      assign "x" (flt 1.0);
      if_ (sc "x" < flt 2.0) [ assign "y" (flt 0.0) ] [ assign "x" (flt 3.0) ];
    ]
  in
  Alcotest.(check (list string)) "written" [ "x"; "y" ] (Program.scalars_written stmts)

(* ----------------------------- Measure ----------------------------- *)

let test_measure () =
  let open Builder in
  (* store (addr-gen + store) + load (addr + load) + add = 5, +2 loop overhead *)
  let body = [ store (aref "a" (ix "i")) (arr "a" (ix "i") + flt 1.0) ] in
  Alcotest.(check int) "body ops" 7 (Measure.body_ops body);
  Alcotest.(check int) "expr ops" 3 (Measure.expr_ops (arr "a" (ix "i") + flt 1.0))

(* ------------------------------- Data ------------------------------ *)

let test_data_layout () =
  let p = simple_program () in
  let d = Data.create p in
  Alcotest.(check int) "aligned a" 0 (Data.array_base d "a" mod 64);
  Alcotest.(check int) "aligned b" 0 (Data.array_base d "b" mod 64);
  Alcotest.(check bool) "disjoint" true
    (Data.array_base d "b" >= Data.array_base d "a" + Data.array_bytes d "a");
  Alcotest.(check int) "addr_of" (Data.array_base d "a" + 24) (Data.addr_of d "a" 3)

let test_data_values () =
  let p = simple_program () in
  let d = Data.create p in
  Data.set d "a" 5 (Vfloat 2.5);
  (match Data.get d "a" 5 with
  | Vfloat v -> Alcotest.(check (float 0.0)) "roundtrip" 2.5 v
  | _ -> Alcotest.fail "wrong kind");
  (* clamping *)
  Data.set d "a" 1000 (Vfloat 9.0);
  (match Data.get d "a" 63 with
  | Vfloat v -> Alcotest.(check (float 0.0)) "clamped write" 9.0 v
  | _ -> Alcotest.fail "wrong kind")

let test_data_region () =
  let p = simple_program () in
  let d = Data.create p in
  let a2 = Data.node_addr d "r" 2 in
  Data.field_set d "r" ~ptr:a2 ~field:1 (Vint 77);
  (match Data.field_get d "r" ~ptr:a2 ~field:1 with
  | Vint 77 -> ()
  | _ -> Alcotest.fail "field roundtrip");
  Alcotest.(check int) "field addr" (a2 + 8) (Data.field_addr d "r" ~ptr:a2 ~field:1);
  Alcotest.check_raises "null deref" (Invalid_argument "Data: null pointer dereference")
    (fun () -> ignore (Data.field_get d "r" ~ptr:0 ~field:0))

let test_data_copy_equal () =
  let p = simple_program () in
  let d = Data.create p in
  Data.set d "a" 0 (Vfloat 1.0);
  let d2 = Data.copy d in
  Alcotest.(check bool) "copy equal" true (Data.equal d d2);
  Data.set d2 "a" 0 (Vfloat 2.0);
  Alcotest.(check bool) "diverged" false (Data.equal d d2)

let test_data_home () =
  let p = simple_program () in
  let d = Data.create p in
  (* array a: 64 elems x 8B = 512B over 4 procs -> 128B chunks *)
  Alcotest.(check int) "first chunk" 0
    (Data.home_of_addr d ~nprocs:4 (Data.addr_of d "a" 0));
  Alcotest.(check int) "last chunk" 3
    (Data.home_of_addr d ~nprocs:4 (Data.addr_of d "a" 63));
  Alcotest.(check int) "uniproc" 0
    (Data.home_of_addr d ~nprocs:1 (Data.addr_of d "a" 63))

(* ------------------------------- Exec ------------------------------ *)

let run_and_get p init name idx =
  let d = Data.create p in
  init d;
  Exec.run p d;
  Data.get d name idx

let test_exec_sum_loop () =
  let p =
    let open Builder in
    program "sum"
      ~arrays:[ array_decl "a" 10; array_decl "out" 1 ]
      [
        assign "s" (flt 0.0);
        loop "i" (cst 0) (cst 10) [ assign "s" (sc "s" + arr "a" (ix "i")) ];
        store (aref "out" (cst 0)) (sc "s");
      ]
  in
  let init d = for i = 0 to 9 do Data.set d "a" i (Vfloat (float_of_int i)) done in
  match run_and_get p init "out" 0 with
  | Vfloat v -> Alcotest.(check (float 1e-9)) "sum 0..9" 45.0 v
  | _ -> Alcotest.fail "wrong kind"

let test_exec_if () =
  let p =
    let open Builder in
    program "iftest"
      ~arrays:[ array_decl "out" 2 ]
      [
        loop "i" (cst 0) (cst 2)
          [
            if_ (iv "i" < num 1)
              [ store (aref "out" (ix "i")) (flt 1.0) ]
              [ store (aref "out" (ix "i")) (flt 2.0) ];
          ];
      ]
  in
  let d = Data.create p in
  Exec.run p d;
  (match (Data.get d "out" 0, Data.get d "out" 1) with
  | Vfloat a, Vfloat b ->
      Alcotest.(check (float 0.0)) "then" 1.0 a;
      Alcotest.(check (float 0.0)) "else" 2.0 b
  | _ -> Alcotest.fail "wrong kinds")

let test_exec_chase () =
  let p =
    let open Builder in
    program "chase"
      ~arrays:[ array_decl "out" 1; array_decl "start" 1 ]
      ~regions:[ region_decl ~node_size:16 "n" 4 ]
      [
        assign "s" (flt 0.0);
        chase "p" ~init:(ld (aref "start" (cst 0))) ~region:"n" ~next:0
          [ assign "s" (sc "s" + ld (fref "n" (sc "p") 1)) ];
        store (aref "out" (cst 0)) (sc "s");
      ]
  in
  let d = Data.create p in
  (* chain 0 -> 1 -> 2 -> null with data 10, 20, 30 *)
  Data.set d "start" 0 (Data.node_ptr d "n" 0);
  for k = 0 to 2 do
    let addr = Data.node_addr d "n" k in
    Data.field_set d "n" ~ptr:addr ~field:1 (Vfloat (float_of_int ((k + 1) * 10)));
    Data.field_set d "n" ~ptr:addr ~field:0
      (if k = 2 then Vptr 0 else Data.node_ptr d "n" (k + 1))
  done;
  Exec.run p d;
  match Data.get d "out" 0 with
  | Vfloat v -> Alcotest.(check (float 1e-9)) "chain sum" 60.0 v
  | _ -> Alcotest.fail "wrong kind"

let test_exec_chase_count () =
  let p =
    let open Builder in
    program "chase_count"
      ~arrays:[ array_decl "out" 1; array_decl "start" 1 ]
      ~regions:[ region_decl ~node_size:16 "n" 8 ]
      [
        assign "s" (flt 0.0);
        chase "p" ~init:(ld (aref "start" (cst 0))) ~region:"n" ~next:0
          ~count:(Builder.cst 3)
          [ assign "s" (sc "s" + flt 1.0) ];
        store (aref "out" (cst 0)) (sc "s");
      ]
  in
  let d = Data.create p in
  Data.set d "start" 0 (Data.node_ptr d "n" 0);
  for k = 0 to 7 do
    Data.field_set d "n" ~ptr:(Data.node_addr d "n" k) ~field:0
      (Data.node_ptr d "n" ((k + 1) mod 8))
  done;
  Exec.run p d;
  match Data.get d "out" 0 with
  | Vfloat v -> Alcotest.(check (float 1e-9)) "exactly count iterations" 3.0 v
  | _ -> Alcotest.fail "wrong kind"

let test_exec_div_mod_zero () =
  let p =
    let open Builder in
    program "divzero"
      ~arrays:[ array_decl "out" 2 ]
      [
        store (aref "out" (cst 0)) (flt 1.0 / flt 0.0);
        store (aref "out" (cst 1)) (flt 1.0 %% flt 0.0);
      ]
  in
  let d = Data.create p in
  Exec.run p d;
  (match (Data.get d "out" 0, Data.get d "out" 1) with
  | Vfloat a, Vfloat b ->
      Alcotest.(check (float 0.0)) "div by zero is 0" 0.0 a;
      Alcotest.(check (float 0.0)) "mod by zero is 0" 0.0 b
  | _ -> Alcotest.fail "wrong kinds")

let test_exec_limit () =
  let p =
    let open Builder in
    program "forever"
      ~arrays:[ array_decl "a" 4 ]
      [ loop "i" (cst 0) (cst 1000000) [ use (arr "a" (cst 0)) ] ]
  in
  let d = Data.create p in
  Alcotest.check_raises "limit" Exec.Limit_exceeded (fun () ->
      Exec.run ~max_ops:100 p d)

let test_exec_parallel_distribution () =
  let p =
    let open Builder in
    program "par"
      ~arrays:[ array_decl "a" 16 ]
      [ loop ~parallel:true "i" (cst 0) (cst 16) [ store (aref "a" (ix "i")) (flt 1.0) ] ]
  in
  let d = Data.create p in
  let procs_seen = ref [] in
  let barriers = ref 0 in
  let emit =
    {
      Exec.null_emitter with
      e_set_proc = (fun p -> if not (List.mem p !procs_seen) then procs_seen := p :: !procs_seen);
      e_barrier = (fun () -> incr barriers);
    }
  in
  Exec.run ~emit ~nprocs:4 p d;
  Alcotest.(check int) "all 4 procs used" 4 (List.length !procs_seen);
  Alcotest.(check int) "barrier after parallel loop" 1 !barriers

(* ------------------------------ Pretty ----------------------------- *)


let test_subst_var_affine () =
  let stmt =
    let open Builder in
    store (aref "a" ((2 *: ix "j") +: ix "i")) (flt 1.0)
  in
  (* j := 3*k + 1 *)
  let repl = Affine.add (Affine.scale 3 (Affine.var "k")) (Affine.const 1) in
  match Memclust_transform.Subst.subst_var_affine "j" repl stmt with
  | Ast.Assign (Ast.Lmem { target = Ast.Direct { index; _ }; _ }, _) ->
      let env v = match v with "k" -> 5 | "i" -> 7 | _ -> 0 in
      Alcotest.(check int) "substituted" ((2 * ((3 * 5) + 1)) + 7)
        (Affine.eval env index)
  | _ -> Alcotest.fail "unexpected shape"

let test_measure_nested () =
  let inner =
    let open Builder in
    loop "i" (cst 0) (cst 10) [ store (aref "a" (ix "i")) (flt 1.0) ]
  in
  (* store = addr + store + const-expr 0 ops = 2; +2 loop overhead = 4/iter *)
  Alcotest.(check int) "nested loop counted by trip" 40 (Measure.stmt_ops inner);
  let ch =
    let open Builder in
    chase "p" ~init:(ld (aref "st" (cst 0))) ~region:"r" ~next:0
      [ use (ld (fref "r" (sc "p") 1)) ]
  in
  Alcotest.(check bool) "chase uses nominal trip" true (Measure.stmt_ops ch > 8)

let test_exec_barrier_statement () =
  let p =
    let open Builder in
    program "bar" ~arrays:[ array_decl "a" 4 ]
      [ store (aref "a" (cst 0)) (flt 1.0); Ast.Barrier; store (aref "a" (cst 1)) (flt 2.0) ]
  in
  let barriers = ref 0 in
  let emit = { Exec.null_emitter with e_barrier = (fun () -> incr barriers) } in
  let d = Data.create p in
  Exec.run ~emit p d;
  Alcotest.(check int) "explicit barrier emitted" 1 !barriers

let test_exec_prefetch_hint () =
  let p =
    let open Builder in
    program "pf" ~arrays:[ array_decl "a" 16 ]
      [ prefetch (aref "a" (cst 3)); store (aref "a" (cst 3)) (flt 1.0) ]
  in
  let hints = ref [] in
  let emit =
    { Exec.null_emitter with
      e_prefetch = (fun ~ref_id:_ ~addr _ _ -> hints := addr :: !hints) }
  in
  let d = Data.create p in
  Exec.run ~emit p d;
  Alcotest.(check int) "hint emitted with the element address" 1 (List.length !hints);
  Alcotest.(check int) "address" (Data.addr_of d "a" 3) (List.hd !hints)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0


let test_exec_numeric_ops () =
  let p =
    let open Builder in
    program "ops"
      ~arrays:[ array_decl "out" 8 ]
      [
        store (aref "out" (cst 0)) (Ast.Unop (Ast.Sqrt, flt 9.0));
        store (aref "out" (cst 1)) (Ast.Unop (Ast.Abs, flt (-4.5)));
        store (aref "out" (cst 2)) (Ast.Binop (Ast.Min, flt 3.0, flt 7.0));
        store (aref "out" (cst 3)) (Ast.Binop (Ast.Max, flt 3.0, flt 7.0));
        store (aref "out" (cst 4)) (Ast.Unop (Ast.Neg, flt 2.0));
        store (aref "out" (cst 5)) (flt 7.0 %% flt 4.0);
        store (aref "out" (cst 6)) (Ast.Unop (Ast.Trunc, flt 3.9));
      ]
  in
  let d = Data.create p in
  Exec.run p d;
  let get i = match Data.get d "out" i with
    | Ast.Vfloat v -> v
    | Ast.Vint v -> float_of_int v
    | Ast.Vptr v -> float_of_int v
  in
  Alcotest.(check (float 1e-9)) "sqrt" 3.0 (get 0);
  Alcotest.(check (float 1e-9)) "abs" 4.5 (get 1);
  Alcotest.(check (float 1e-9)) "min" 3.0 (get 2);
  Alcotest.(check (float 1e-9)) "max" 7.0 (get 3);
  Alcotest.(check (float 1e-9)) "neg" (-2.0) (get 4);
  Alcotest.(check (float 1e-9)) "fmod" 3.0 (get 5);
  Alcotest.(check (float 1e-9)) "trunc" 3.0 (get 6)

let test_exec_pointer_arithmetic () =
  let p =
    let open Builder in
    program "ptr"
      ~arrays:[ array_decl "out" 2 ]
      ~regions:[ region_decl ~node_size:16 "r" 4 ]
      [
        assign "p" (Ast.Const (Ast.Vptr 0x2000));
        store (aref "out" (cst 0)) (sc "p" + num 16);
      ]
  in
  let d = Data.create p in
  Exec.run p d;
  match Data.get d "out" 0 with
  | Ast.Vptr a -> Alcotest.(check int) "ptr + int stays ptr" 0x2010 a
  | _ -> Alcotest.fail "pointer arithmetic lost the pointer"

let test_data_elem_size_four () =
  let p =
    let open Builder in
    program "small_elems"
      ~arrays:[ array_decl ~elem_size:4 "idx" 32 ]
      [ use (arr "idx" (cst 0)) ]
  in
  let d = Data.create p in
  Alcotest.(check int) "4-byte stride" (Data.array_base d "idx" + 12)
    (Data.addr_of d "idx" 3);
  Alcotest.(check int) "bytes" 128 (Data.array_bytes d "idx")

let test_pretty_more () =
  let s1 =
    let open Builder in
    Pretty.stmt_to_string
      (chase "p" ~init:(ld (aref "st" (cst 0))) ~region:"r" ~next:0
         ~count:(cst 5) [])
  in
  Alcotest.(check bool) "chase shows count" true (contains ~sub:"5 times" s1);
  let s2 =
    let open Builder in
    Pretty.stmt_to_string (prefetch (aref "a" (ix "i")))
  in
  Alcotest.(check bool) "prefetch rendered" true (contains ~sub:"prefetch(a[i])" s2)

let prop_affine_compare_consistent =
  QCheck.Test.make ~name:"compare consistent with equal" ~count:200
    QCheck.(pair affine_arb affine_arb)
    (fun (a, b) -> Affine.equal a b = (Affine.compare a b = 0))


let test_pretty () =
  let stmt =
    let open Builder in
    loop "i" (cst 0) (cst 4)
      [ store (aref "a" (ix "i")) (arr "a" (ix "i") + flt 1.0) ]
  in
  let s = Pretty.stmt_to_string stmt in
  Alcotest.(check bool) "loop header" true (contains ~sub:"for (i = 0; i < 4" s);
  Alcotest.(check bool) "subscript" true (contains ~sub:"a[i]" s);
  let stmt2 =
    let open Builder in
    if_ (sc "x" < flt 1.0) [ Ast.Barrier ] []
  in
  let s2 = Pretty.stmt_to_string stmt2 in
  Alcotest.(check bool) "barrier" true (contains ~sub:"barrier" s2)

let () =
  Alcotest.run "ir"
    [
      ( "affine",
        [
          qtest prop_affine_add;
          qtest prop_affine_scale;
          qtest prop_affine_sub_self;
          qtest prop_affine_shift;
          qtest prop_affine_subst;
          Alcotest.test_case "basics" `Quick test_affine_basics;
          Alcotest.test_case "pp" `Quick test_affine_pp;
        ] );
      ( "program",
        [
          Alcotest.test_case "renumber unique" `Quick test_renumber_unique;
          Alcotest.test_case "refs context" `Quick test_refs_context;
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "undeclared array" `Quick test_validate_undeclared_array;
          Alcotest.test_case "dup loop var" `Quick test_validate_dup_loop_var;
          Alcotest.test_case "bad field" `Quick test_validate_bad_field;
          Alcotest.test_case "bad step" `Quick test_validate_bad_step;
          Alcotest.test_case "scalars written" `Quick test_scalars_written;
          Alcotest.test_case "measure" `Quick test_measure;
        ] );
      ( "data",
        [
          Alcotest.test_case "layout" `Quick test_data_layout;
          Alcotest.test_case "values" `Quick test_data_values;
          Alcotest.test_case "region" `Quick test_data_region;
          Alcotest.test_case "copy/equal" `Quick test_data_copy_equal;
          Alcotest.test_case "home" `Quick test_data_home;
        ] );
      ( "exec",
        [
          Alcotest.test_case "sum loop" `Quick test_exec_sum_loop;
          Alcotest.test_case "if" `Quick test_exec_if;
          Alcotest.test_case "chase" `Quick test_exec_chase;
          Alcotest.test_case "chase count" `Quick test_exec_chase_count;
          Alcotest.test_case "div/mod zero" `Quick test_exec_div_mod_zero;
          Alcotest.test_case "op limit" `Quick test_exec_limit;
          Alcotest.test_case "parallel distribution" `Quick test_exec_parallel_distribution;
          Alcotest.test_case "barrier statement" `Quick test_exec_barrier_statement;
          Alcotest.test_case "prefetch hint" `Quick test_exec_prefetch_hint;
          Alcotest.test_case "measure nested" `Quick test_measure_nested;
          Alcotest.test_case "subst var affine" `Quick test_subst_var_affine;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "render" `Quick test_pretty;
          Alcotest.test_case "chase/prefetch render" `Quick test_pretty_more;
        ] );
      ( "more exec",
        [
          Alcotest.test_case "numeric ops" `Quick test_exec_numeric_ops;
          Alcotest.test_case "pointer arithmetic" `Quick test_exec_pointer_arithmetic;
          Alcotest.test_case "4-byte elements" `Quick test_data_elem_size_four;
          qtest prop_affine_compare_consistent;
        ] );
    ]
